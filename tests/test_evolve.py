"""Tests for repro.evolve: drift watching, background refresh with
zero-downtime index swap, and schema-driven corpus growth.

The watcher tests mutate a file-backed SQLite database through a
*separate* writer connection — exactly how drift arrives in production —
and assert the verdict taxonomy: no-op polls, row inserts,
count-preserving UPDATEs (invisible to the registry's cheap
fingerprint), and DDL each classify correctly.

The refresher tests run the real serving stack (DatabaseRuntime +
TranslationService) and prove the swap contract end to end: version
bump, per-database cache invalidation, and a post-drift value query
resolving against content that did not exist at index-build time.
"""

from __future__ import annotations

import json
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.evolve import (
    CorpusWriter,
    DriftVerdict,
    KBRefresher,
    SchemaWatcher,
    deep_fingerprint,
    generate_examples,
)
from repro.index.registry import IndexRegistry, database_fingerprint
from repro.serving import (
    DatabaseRuntime,
    TranslationCache,
    TranslationService,
)
from repro.serving import routes


def _create_pets_file(path) -> None:
    """The conftest pets database, materialized as a SQLite file."""
    conn = sqlite3.connect(str(path))
    conn.executescript(
        """
        CREATE TABLE student (
            stuid INTEGER PRIMARY KEY, name TEXT, age INTEGER,
            home_country TEXT, sex TEXT);
        CREATE TABLE pet (
            petid INTEGER PRIMARY KEY, pet_type TEXT, pet_age INTEGER,
            weight REAL);
        CREATE TABLE has_pet (
            stuid INTEGER REFERENCES student(stuid),
            petid INTEGER REFERENCES pet(petid));
        INSERT INTO student VALUES
            (1,'Ann Miller',22,'France','F'),
            (2,'Bob Smith',19,'France','M'),
            (3,'Cid Rossi',25,'Italy','M'),
            (4,'Dana Levi',21,'Spain','F');
        INSERT INTO pet VALUES
            (10,'Dog',3,12.0),(11,'Cat',1,3.5),(12,'Dog',7,20.0);
        INSERT INTO has_pet VALUES (1,10),(3,11),(4,12);
        """
    )
    conn.commit()
    conn.close()


@pytest.fixture
def pets_file(tmp_path):
    path = tmp_path / "pets.sqlite"
    _create_pets_file(path)
    return path


def _writer(path) -> sqlite3.Connection:
    """A drift source: a second connection, like a real external writer."""
    return sqlite3.connect(str(path))


# ----------------------------------------------------------------- watcher


class TestSchemaWatcher:
    def test_noop_poll_is_unchanged(self, pets_file):
        watcher = SchemaWatcher(pets_file)
        assert watcher.poll().verdict is DriftVerdict.UNCHANGED
        # The deep path agrees with the counter fast path.
        assert watcher.poll(force_deep=True).verdict is DriftVerdict.UNCHANGED
        watcher.close()

    def test_row_insert_is_content_changed(self, pets_file):
        watcher = SchemaWatcher(pets_file)
        with _writer(pets_file) as conn:
            conn.execute(
                "INSERT INTO student VALUES (5,'Eve Okoro',23,'Nigeria','F')"
            )
        report = watcher.poll()
        assert report.verdict is DriftVerdict.CONTENT_CHANGED
        assert "student" in report.tables_changed
        assert "student" in report.touched_tables
        # Settled: the next poll is quiet again.
        assert watcher.poll().verdict is DriftVerdict.UNCHANGED
        watcher.close()

    def test_count_preserving_update_is_content_changed(self, pets_file):
        """The case the registry's cheap fingerprint cannot see."""
        database = Database.open(pets_file)
        cheap_before = database_fingerprint(database)
        deep_before = deep_fingerprint(database)
        watcher = SchemaWatcher(pets_file)
        with _writer(pets_file) as conn:
            conn.execute(
                "UPDATE student SET home_country='Japan' WHERE stuid=1"
            )
        report = watcher.poll()
        assert report.verdict is DriftVerdict.CONTENT_CHANGED
        assert report.tables_changed == ("student",)
        # Row counts are identical, so the cheap fingerprint is blind ...
        assert database_fingerprint(database) == cheap_before
        # ... while the sampled-content fingerprint moves.
        assert deep_fingerprint(database) != deep_before
        watcher.close()
        database.close()

    def test_new_table_is_schema_changed(self, pets_file):
        watcher = SchemaWatcher(pets_file)
        with _writer(pets_file) as conn:
            conn.execute("CREATE TABLE vet (vetid INTEGER, city TEXT)")
        report = watcher.poll()
        assert report.verdict is DriftVerdict.SCHEMA_CHANGED
        assert report.tables_added == ("vet",)
        assert "vet" in report.touched_tables
        watcher.close()

    def test_new_column_is_schema_changed(self, pets_file):
        watcher = SchemaWatcher(pets_file)
        with _writer(pets_file) as conn:
            conn.execute("ALTER TABLE student ADD COLUMN nickname TEXT")
        report = watcher.poll()
        assert report.verdict is DriftVerdict.SCHEMA_CHANGED
        assert ("student", "nickname") in report.columns_added
        watcher.close()

    def test_dropped_table_is_schema_changed(self, pets_file):
        watcher = SchemaWatcher(pets_file)
        with _writer(pets_file) as conn:
            conn.execute("DROP TABLE has_pet")
        report = watcher.poll()
        assert report.verdict is DriftVerdict.SCHEMA_CHANGED
        assert report.tables_removed == ("has_pet",)
        watcher.close()

    def test_report_as_dict_round_trips_to_json(self, pets_file):
        watcher = SchemaWatcher(pets_file)
        with _writer(pets_file) as conn:
            conn.execute("CREATE TABLE vet (vetid INTEGER)")
        payload = watcher.poll().as_dict()
        assert json.loads(json.dumps(payload)) == payload
        watcher.close()


# ----------------------------------------------------- registry stale-serve


class TestRegistryStaleServe:
    def test_stale_entry_served_while_refresher_owns_key(self, pets_file):
        registry = IndexRegistry()
        database = Database.open(pets_file)
        first = registry.get(database)
        assert registry.stats()["build_count"] == 1
        with _writer(pets_file) as conn:
            conn.execute(
                "INSERT INTO student VALUES (6,'Fay Burke',20,'Wales','F')"
            )
        registry.mark_background_refresh(database.schema.name)
        served = registry.get(database)
        # Stale fingerprint + armed refresher => the old entry, no rebuild.
        assert served is first
        stats = registry.stats()
        assert stats["build_count"] == 1
        assert stats["stale_hit_count"] >= 1
        # Disarmed, the lazy rebuild path is back.
        registry.mark_background_refresh(database.schema.name, False)
        rebuilt = registry.get(database)
        assert rebuilt is not first
        assert registry.stats()["build_count"] == 2
        database.close()

    def test_swap_bumps_version_atomically(self, pets_file):
        registry = IndexRegistry()
        database = Database.open(pets_file)
        entry = registry.get(database)
        v1 = registry.version(database.schema.name)
        assert v1 == 1
        assert registry.swap(entry) == v1 + 1
        assert registry.version(database.schema.name) == v1 + 1
        assert registry.stats()["swap_count"] == 1
        database.close()


# ------------------------------------------------------ refresher lifecycle


def _serving_stack(pets_file, *, registry=None, **refresher_kwargs):
    """A real single-database serving stack plus an (unstarted) refresher."""
    registry = registry if registry is not None else IndexRegistry()
    from repro.index import set_default_registry

    previous = set_default_registry(registry)
    database = Database.open(pets_file)
    runtime = DatabaseRuntime(database, database_id="pets")
    cache = TranslationCache(capacity=64, ttl_s=300.0)
    service = TranslationService(
        [runtime], workers=2, batch_window_ms=1.0, cache=cache
    ).start()
    refresher = KBRefresher(
        registry=registry, interval_s=60.0, **refresher_kwargs
    )
    refresher.watch(database, database_id="pets")
    refresher.attach_service(service)
    return previous, database, service, cache, refresher


def _teardown_stack(previous, database, service, refresher):
    from repro.index import set_default_registry

    refresher.stop()
    service.stop()
    database.close()
    set_default_registry(previous)


class TestKBRefresher:
    def test_in_memory_database_is_rejected(self, pets_db):
        refresher = KBRefresher(registry=IndexRegistry(), interval_s=60.0)
        with pytest.raises(ValueError):
            refresher.watch(pets_db)

    def test_no_drift_means_no_swap(self, pets_file):
        previous, database, service, cache, refresher = _serving_stack(pets_file)
        try:
            assert refresher.refresh_now(force=False) == []
            assert refresher.stats()["swaps"] == 0
        finally:
            _teardown_stack(previous, database, service, refresher)

    def test_drift_swaps_invalidates_and_resolves_new_value(self, pets_file):
        previous, database, service, cache, refresher = _serving_stack(pets_file)
        try:
            registry = refresher.registry
            question = "Which students are from Zambia?"
            before = service.translate(question)
            assert before.ok
            assert "Zambia" not in (before.sql or "")
            # Warm the cache so invalidation is observable.
            assert service.translate(question).cache_hit
            v_before = registry.version("pets")

            with _writer(pets_file) as conn:
                conn.execute(
                    "INSERT INTO student VALUES (7,'Gil Tembo',24,'Zambia','M')"
                )
            swapped = refresher.refresh_now()
            assert len(swapped) == 1
            info = swapped[0]
            assert info["database_id"] == "pets"
            assert info["verdict"] == DriftVerdict.CONTENT_CHANGED.value
            assert info["version"] > v_before
            assert registry.version("pets") == info["version"]
            assert cache.stats()["invalidations"] >= 1

            after = service.translate(question)
            assert after.ok
            assert not after.cache_hit  # the stale entry really is gone
            assert "Zambia" in after.sql
        finally:
            _teardown_stack(previous, database, service, refresher)

    def test_ddl_reintrospects_schema_into_runtime(self, pets_file):
        previous, database, service, cache, refresher = _serving_stack(pets_file)
        try:
            assert "clinic" not in {t.name for t in database.schema.tables}
            with _writer(pets_file) as conn:
                conn.execute(
                    "CREATE TABLE clinic (clinicid INTEGER PRIMARY KEY, "
                    "city TEXT)"
                )
                conn.execute("INSERT INTO clinic VALUES (1, 'Zurich')")
            swapped = refresher.refresh_now()
            assert swapped[0]["verdict"] == DriftVerdict.SCHEMA_CHANGED.value
            assert "clinic" in swapped[0]["tables_added"]
            # The serving runtime now sees the new table: the shared
            # Database's schema object was swapped in place.
            assert "clinic" in {t.name for t in database.schema.tables}
            response = service.translate("How many rows are in clinic?")
            assert response.ok
        finally:
            _teardown_stack(previous, database, service, refresher)

    def test_trigger_wakes_the_background_thread(self, pets_file):
        import time

        previous, database, service, cache, refresher = _serving_stack(pets_file)
        try:
            refresher.start()
            with _writer(pets_file) as conn:
                conn.execute(
                    "INSERT INTO student VALUES (8,'Hana Sato',22,'Japan','F')"
                )
            refresher.trigger()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if refresher.stats()["swaps"] >= 1:
                    break
                time.sleep(0.02)
            assert refresher.stats()["swaps"] >= 1
        finally:
            _teardown_stack(previous, database, service, refresher)

    def test_refresher_surfaces_in_health_and_admin_route(self, pets_file):
        previous, database, service, cache, refresher = _serving_stack(pets_file)
        try:
            assert service.health()["evolve"]["watched"] == ["pets"]
            response = routes.handle(
                service, "POST", "/admin/refresh", {}, b""
            )
            assert response.status == 200
            payload = json.loads(response.body)
            assert payload["status"] == "ok"
            # force=True: the admin contract refreshes even without drift.
            assert [i["database_id"] for i in payload["refreshed"]] == ["pets"]
            async_response = routes.handle(
                service, "POST", "/admin/refresh", {}, b'{"wait": false}'
            )
            assert async_response.status == 202
        finally:
            _teardown_stack(previous, database, service, refresher)

    def test_admin_route_409_without_refresher(self, pets_db):
        service = TranslationService(
            [DatabaseRuntime(pets_db, database_id="pets")], workers=1
        ).start()
        try:
            response = routes.handle(
                service, "POST", "/admin/refresh", {}, b""
            )
            assert response.status == 409
        finally:
            service.stop()

    def test_failure_backs_off_and_daemon_survives(self, pets_file, tmp_path):
        previous, database, service, cache, refresher = _serving_stack(pets_file)
        try:
            target = refresher._targets["pets"]
            # Simulate the watched file becoming unreadable mid-flight.
            target.path = str(tmp_path / "gone.sqlite")
            refresher.refresh_now()
            assert target.retry_at > 0.0  # backing off
            stats = refresher.metrics.snapshot()
            assert stats["evolve_refresh_failures_total"] >= 1
            # Recovery: point back at the real file, force past backoff.
            target.path = str(pets_file)
            assert len(refresher.refresh_now()) == 1
            assert target.retry_at == 0.0
        finally:
            _teardown_stack(previous, database, service, refresher)


# --------------------------------------------- hypothesis: swap invariance


_QUESTIONS = (
    "How many students are there?",
    "List the name of all students.",
    "Which students are from France?",
    "What is the average age of students?",
    "How many pets are there?",
    "pets heavier than 10",
    "students older than 20",
    "What are the different pet types?",
)


@pytest.fixture(scope="module")
def swap_rig(tmp_path_factory):
    """One long-lived serving stack the invariance property hammers."""
    from repro.index import set_default_registry

    path = tmp_path_factory.mktemp("evolve") / "pets.sqlite"
    _create_pets_file(path)
    registry = IndexRegistry()
    previous = set_default_registry(registry)
    database = Database.open(path)
    runtime = DatabaseRuntime(database, database_id="pets")
    service = TranslationService(
        [runtime], workers=2, batch_window_ms=1.0
    ).start()
    refresher = KBRefresher(registry=registry, interval_s=60.0)
    refresher.watch(database, database_id="pets")
    refresher.attach_service(service)
    yield service, refresher
    refresher.stop()
    service.stop()
    database.close()
    set_default_registry(previous)


@settings(max_examples=12)
@given(question=st.sampled_from(_QUESTIONS))
def test_forced_swap_never_changes_results_without_drift(swap_rig, question):
    """Zero-downtime invariant: for an unchanged database, a forced
    rebuild + swap is invisible — same SQL, same rows, before and after."""
    service, refresher = swap_rig
    before = service.translate(question, execute=True)
    assert before.ok, before.error
    swapped = refresher.refresh_now(force=True)
    assert [info["database_id"] for info in swapped] == ["pets"]
    after = service.translate(question, execute=True)
    assert after.ok, after.error
    assert after.sql == before.sql
    assert after.rows == before.rows
    assert after.engine == before.engine


# ------------------------------------------------------------------ corpus


class TestCorpusGrowth:
    def test_examples_are_ast_rendered_and_validated(self, pets_file):
        database = Database.open(pets_file)
        examples = generate_examples(database, database_id="pets")
        assert examples
        kinds = {example.kind for example in examples}
        assert {"row-count", "distinct", "distinct-count",
                "group-count"} <= kinds
        assert "value-filter" in kinds  # seeded from sampled base data
        assert all(example.validated for example in examples)
        assert all(example.database_id == "pets" for example in examples)
        by_kind = {example.kind: example for example in examples}
        assert by_kind["distinct"].sql.startswith("SELECT DISTINCT ")
        assert "COUNT(DISTINCT " in by_kind["distinct-count"].sql
        # Validated means runnable: spot-check by re-executing a few.
        from repro.db.executor import execute_with_budget

        for example in examples[:5]:
            execute_with_budget(database, example.sql, timeout_s=5.0)
        database.close()

    def test_tables_filter_restricts_generation(self, pets_file):
        database = Database.open(pets_file)
        examples = generate_examples(
            database, database_id="pets", tables=["pet"]
        )
        assert examples
        assert {example.table for example in examples} == {"pet"}
        database.close()

    def test_policy_blocks_are_dropped(self, pets_file):
        class DenyAll:
            def check_sql(self, sql, **kwargs):
                raise RuntimeError("blocked")

        database = Database.open(pets_file)
        assert generate_examples(database, policy=DenyAll()) == []
        database.close()

    def test_writer_dedups_within_and_across_instances(self, pets_file, tmp_path):
        database = Database.open(pets_file)
        examples = generate_examples(database, database_id="pets")
        path = tmp_path / "corpus.jsonl"
        writer = CorpusWriter(path)
        assert writer.append(examples) == len(examples)
        assert writer.append(examples) == 0  # same-instance dedup
        reopened = CorpusWriter(path)  # cross-run dedup via the file
        assert len(reopened) == len(examples)
        assert reopened.append(examples) == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(examples)
        assert all("sql" in line and "question" in line for line in lines)
        database.close()

    def test_refresher_grows_corpus_for_new_table_only(self, pets_file, tmp_path):
        corpus_path = tmp_path / "grown.jsonl"
        previous, database, service, cache, refresher = _serving_stack(
            pets_file, corpus_path=corpus_path
        )
        try:
            with _writer(pets_file) as conn:
                conn.execute(
                    "CREATE TABLE shelter (shelterid INTEGER PRIMARY KEY, "
                    "city TEXT, capacity INTEGER)"
                )
                conn.execute("INSERT INTO shelter VALUES (1,'Geneva',40)")
                conn.execute("INSERT INTO shelter VALUES (2,'Basel',25)")
            swapped = refresher.refresh_now()
            assert swapped[0]["corpus_examples"] > 0
            lines = [
                json.loads(line)
                for line in corpus_path.read_text().splitlines()
            ]
            # Incremental growth: only the drifted table's examples.
            assert {line["table"] for line in lines} == {"shelter"}
            assert all(line["validated"] for line in lines)
            snapshot = refresher.metrics.snapshot()
            assert snapshot["evolve_corpus_examples_total"] == len(lines)
        finally:
            _teardown_stack(previous, database, service, refresher)
