"""Differential lock: step-cached decoding vs the Tensor reference path.

The per-request :class:`StepCache` replays the decoder's hot-loop math in
raw numpy with memoized request constants; the contract is *bitwise*
equality of every op output and therefore prediction-identical decoding.
Three layers of evidence:

* op-level — a replayed action sequence where each step's hidden state,
  pointer scores and sketch log-probs are compared exactly,
* sequence-level — greedy and beam decoding over every dev example of a
  synthetic corpus, cached vs uncached,
* wiring-level — ``ValueNetModel._decode_steps(use_cache=...)`` parity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import ModelError
from repro.model import ValueNetModel, beam_decode, build_vocabulary
from repro.model.stepcache import RECURSIVE_ACTION, ReferenceOps, StepCache
from repro.preprocessing import Preprocessor
from repro.semql.actions import ActionType, GRAMMAR_ACTION_LIST
from repro.semql.tree import GrammarState
from repro.spider import CorpusConfig, generate_corpus

TINY = ModelConfig(
    dim=32, num_layers=1, num_heads=2, ff_dim=48, summary_hidden=16,
    decoder_hidden=32, pointer_hidden=24, dropout=0.0, word_dropout=0.0,
)


@pytest.fixture(scope="module")
def model():
    vocab = build_vocabulary(
        ["how many students are there", "list all students from france"] * 4,
        [], ["France"], vocab_size=200,
    )
    return ValueNetModel(vocab, TINY)


@pytest.fixture(scope="module")
def dev_setup():
    corpus = generate_corpus(CorpusConfig(train_per_domain=8, dev_per_domain=4))
    vocab = build_vocabulary(
        [e.question for e in corpus.train],
        [corpus.schema(d) for d in corpus.train_domains],
        [str(v) for e in corpus.train for v in e.values],
        vocab_size=600,
    )
    yield corpus, ValueNetModel(vocab, TINY)
    corpus.close()


def _outcome(decode):
    try:
        return decode()
    except ModelError:
        # Failure parity: both paths must fail on the same inputs; the
        # messages may legitimately differ.
        return "ModelError"


class TestOpLevelBitwise:
    def test_every_step_output_is_bitwise_identical(self, model, pets_db):
        """Replay a real greedy action sequence through both ops
        implementations and compare every intermediate exactly."""
        pre = Preprocessor(pets_db).run("How many dogs are there?")
        encoded = model.encode(pre, pets_db.schema)
        decoder = model.decoder
        decoder.eval()
        steps = decoder.decode(encoded)  # uncached: supplies the actions
        assert steps, "decode produced no steps"

        ref = ReferenceOps(decoder, encoded)
        cache = StepCache(decoder, encoded)
        state_r, state_c = ref.initial_state(), cache.initial_state()
        assert np.array_equal(state_r[0].data, state_c[0])
        assert np.array_equal(state_r[1].data, state_c[1])
        prev_r, prev_c = ref.start(), cache.start()
        grammar = GrammarState()
        pointer_kinds_seen = set()

        for step in steps:
            h_r, state_r = ref.step(prev_r, state_r)
            h_c, state_c = cache.step(prev_c, state_c, reuse=True)
            assert np.array_equal(h_r.data, h_c), "hidden state diverged"
            assert np.array_equal(state_r[1].data, state_c[1]), "cell diverged"
            expected = grammar.expected_type()
            if step.kind == "grammar":
                mask_r = ref.grammar_mask(expected)
                token_c = cache.grammar_mask(expected)
                assert np.array_equal(
                    ref.sketch_log_probs(h_r, mask_r),
                    cache.sketch_log_probs(h_c, token_c),
                ), "sketch log-probs diverged"
                grammar.advance_grammar(GRAMMAR_ACTION_LIST[step.target])
            else:
                pointer_kinds_seen.add(step.kind)
                assert np.array_equal(
                    ref.pointer_scores(step.kind, h_r),
                    cache.pointer_scores(step.kind, h_c),
                ), f"{step.kind} pointer scores diverged"
                assert np.array_equal(
                    ref.pointer_log_probs(step.kind, h_r),
                    cache.pointer_log_probs(step.kind, h_c),
                ), f"{step.kind} pointer log-probs diverged"
                grammar.advance_pointer(ActionType(step.kind))
            feed_r = ref.feed(step.kind, step.target)
            feed_c = cache.feed(step.kind, step.target)
            assert np.array_equal(feed_r.data, feed_c)
            prev_r, prev_c = feed_r, feed_c

        assert {"C", "T"} <= pointer_kinds_seen, "sequence never exercised pointers"

    def test_memoization_actually_caches(self, model, pets_db):
        pre = Preprocessor(pets_db).run("How many dogs are there?")
        encoded = model.encode(pre, pets_db.schema)
        cache = StepCache(model.decoder, encoded)
        model.decoder.decode(encoded, cache=cache)
        # Pointer memory projections: computed at most once per kind.
        assert 1 <= len(cache._pointer_memory) <= 3
        # Repeated lookups return the very same objects, not recomputes.
        (kind, memory), = list(cache._pointer_memory.items())[:1]
        assert cache._memory(kind) is memory
        key, feed = next(iter(cache._feeds.items()))
        assert cache.feed(*key) is feed
        assert cache._masks, "no grammar masks were memoized"
        sig, entry = next(iter(cache._masks.items()))
        expected, flags = sig
        assert cache.grammar_mask(expected, **dict(flags)) is entry

    def test_recursive_action_table_matches_budget_policy(self):
        reference = np.array([
            ActionType.FILTER in action.children or ActionType.R in action.children
            for action in GRAMMAR_ACTION_LIST
        ])
        assert np.array_equal(RECURSIVE_ACTION, reference)
        assert RECURSIVE_ACTION.any(), "no recursive productions found"


class TestSequenceIdentityOnDevSet:
    def _run(self, dev_setup, decode_pair):
        corpus, model = dev_setup
        model.eval()
        checked = 0
        for domain in corpus.dev_domains:
            db = corpus.database(domain)
            schema = db.schema
            preprocessor = Preprocessor(db)
            column_to_table = [
                None if column.is_star() else schema.table_index(column.table)
                for column in schema.all_columns()
            ]
            for example in corpus.dev:
                if example.db_id != domain:
                    continue
                pre = preprocessor.run(example.question)
                encoded = model.encode(pre, schema)
                uncached, cached = decode_pair(model, encoded, column_to_table)
                assert cached == uncached, (
                    f"cached decode diverged on {example.question!r} ({domain})"
                )
                checked += 1
        assert checked == len(corpus.dev)
        assert checked >= 10

    def test_greedy_cached_matches_reference(self, dev_setup):
        def pair(model, encoded, column_to_table):
            uncached = _outcome(lambda: model.decoder.decode(
                encoded, column_to_table=column_to_table
            ))
            cached = _outcome(lambda: model.decoder.decode(
                encoded, column_to_table=column_to_table,
                cache=StepCache(model.decoder, encoded),
            ))
            return uncached, cached

        self._run(dev_setup, pair)

    def test_beam_cached_matches_reference(self, dev_setup):
        def pair(model, encoded, column_to_table):
            uncached = _outcome(lambda: beam_decode(
                model.decoder, encoded, beam_size=3,
                column_to_table=column_to_table,
            ))
            cached = _outcome(lambda: beam_decode(
                model.decoder, encoded, beam_size=3,
                column_to_table=column_to_table,
                cache=StepCache(model.decoder, encoded),
            ))
            return uncached, cached

        self._run(dev_setup, pair)


class TestModelWiring:
    @pytest.mark.parametrize("beam_size", [1, 3])
    def test_decode_steps_use_cache_parity(self, model, pets_db, beam_size):
        pre = Preprocessor(pets_db).run("List the students from France")
        encoded = model.encode(pre, pets_db.schema)
        column_to_table = [
            None if column.is_star() else pets_db.schema.table_index(column.table)
            for column in pets_db.schema.all_columns()
        ]
        cached = _outcome(lambda: model._decode_steps(
            encoded, beam_size, column_to_table
        ))
        uncached = _outcome(lambda: model._decode_steps(
            encoded, beam_size, column_to_table, use_cache=False
        ))
        assert cached == uncached

    def test_predict_defaults_to_cached_path(self, model, pets_db):
        pre = Preprocessor(pets_db).run("How many students are there?")
        tree = model.predict(pre, pets_db.schema, beam_size=1)
        tree.validate()
