"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import sqlite3

import pytest

from repro.__main__ import main


@pytest.fixture()
def sqlite_file(tmp_path):
    path = tmp_path / "demo.sqlite"
    connection = sqlite3.connect(path)
    connection.executescript(
        """
        CREATE TABLE city (
            city_id INTEGER PRIMARY KEY,
            city_name VARCHAR(40),
            country VARCHAR(40),
            population INTEGER
        );
        INSERT INTO city VALUES (1, 'Paris', 'France', 21);
        INSERT INTO city VALUES (2, 'Lyon', 'France', 5);
        INSERT INTO city VALUES (3, 'Rome', 'Italy', 28);
        """
    )
    connection.commit()
    connection.close()
    return path


class TestCorpusCommand:
    def test_generates_and_reloads(self, tmp_path, capsys):
        directory = tmp_path / "corpus"
        code = main([
            "corpus", str(directory),
            "--train-per-domain", "5", "--dev-per-domain", "3",
        ])
        assert code == 0
        assert (directory / "train.json").exists()
        assert (directory / "tables.json").exists()
        out = capsys.readouterr().out
        assert "train=" in out


class TestInspectCommand:
    def test_shows_hints_and_candidates(self, sqlite_file, capsys):
        code = main([
            "inspect", "How many cities in France have a population above 10?",
            "--database", str(sqlite_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "France" in out
        assert "AGGREGATION" in out


class TestTranslateCommand:
    def test_missing_model_errors(self, sqlite_file, tmp_path):
        with pytest.raises(Exception):
            main([
                "translate", "How many cities are there?",
                "--database", str(sqlite_file),
                "--model", str(tmp_path / "nonexistent"),
            ])


class TestTrainCommand:
    def test_end_to_end_tiny(self, tmp_path, capsys):
        directory = tmp_path / "corpus"
        main([
            "corpus", str(directory),
            "--train-per-domain", "4", "--dev-per-domain", "2",
        ])
        output = tmp_path / "model"
        code = main([
            "train", str(directory),
            "--output", str(output),
            "--epochs", "1", "--dim", "32", "--mode", "light",
        ])
        assert code == 0
        assert (output / "weights.npz").exists()
        out = capsys.readouterr().out
        assert "final loss" in out
