"""HTTP contract of the multi-tenant front door.

Covers the status codes and headers the tenancy subsystem promises:
401 (missing/unknown key, WWW-Authenticate), 429 with Retry-After for
both rate and quota rejections (distinguished by ``reason``), the
``/tenants`` admin listing, per-tenant ``/tenants/<id>/usage``, and the
tenant-labeled series on ``/metrics``.  Also locks that a server
*without* a controller keeps serving anonymously, unchanged.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import (
    DatabaseRuntime,
    MetricsRegistry,
    ServingServer,
    TranslationService,
)
from repro.tenancy import QuotaLedger, TenancyController, TenantRegistry

ACME_KEY = "acme-secret-key-0001"
BURSTY_KEY = "bursty-secret-key-01"
CAPPED_KEY = "capped-secret-key-01"
ADMIN_KEY = "ops-admin-key-000001"

TENANTS = {
    "version": 7,
    "admin_keys": [ADMIN_KEY],
    "tenants": [
        # Effectively unlimited: the happy-path tenant.
        {"id": "acme", "api_key": ACME_KEY, "class": "gold",
         "rate": 10_000, "burst": 10_000},
        # One-request burst: the second immediate request is rate limited.
        {"id": "bursty", "api_key": BURSTY_KEY, "rate": 0.001, "burst": 1},
        # Two requests per day, generous rate: exercises the quota path.
        {"id": "capped", "api_key": CAPPED_KEY, "rate": 10_000,
         "burst": 10_000, "daily_quota": 2},
    ],
}


@pytest.fixture
def tenant_server(pets_db, tmp_path):
    config = tmp_path / "tenants.json"
    config.write_text(json.dumps(TENANTS))
    metrics = MetricsRegistry()
    tenancy = TenancyController(
        TenantRegistry.from_file(config),
        ledger=QuotaLedger(tmp_path / "quota.json"),
        metrics=metrics,
    )
    service = TranslationService(
        [DatabaseRuntime(pets_db, database_id="pets")],
        workers=2,
        per_tenant_depth=32,
        metrics=metrics,
        tenancy=tenancy,
    ).start()
    server = ServingServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.stop()
    tenancy.close()


def get(url: str, *, api_key: str | None = None):
    headers = {"Authorization": f"Bearer {api_key}"} if api_key else {}
    request = urllib.request.Request(url, headers=headers)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def post_translate(url: str, *, api_key: str | None = None,
                   key_header: str | None = None):
    headers = {"Content-Type": "application/json"}
    if api_key is not None:
        headers["Authorization"] = f"Bearer {api_key}"
    if key_header is not None:
        headers["X-API-Key"] = key_header
    request = urllib.request.Request(
        url + "/translate",
        data=json.dumps({"question": "How many students are there?"}).encode(),
        headers=headers,
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def http_error(excinfo) -> tuple[int, dict, dict]:
    """(status, body, headers) from a pytest.raises(HTTPError) context."""
    error = excinfo.value
    return error.code, json.loads(error.read()), dict(error.headers)


class TestTranslateAuth:
    def test_valid_key_serves_and_tags_tenant(self, tenant_server):
        status, payload = post_translate(tenant_server.url, api_key=ACME_KEY)
        assert status == 200
        assert payload["sql"]
        assert payload["tenant_id"] == "acme"

    def test_x_api_key_header_also_accepted(self, tenant_server):
        status, payload = post_translate(
            tenant_server.url, key_header=ACME_KEY
        )
        assert status == 200
        assert payload["tenant_id"] == "acme"

    def test_missing_key_is_401(self, tenant_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_translate(tenant_server.url)
        status, body, headers = http_error(excinfo)
        assert status == 401
        assert body["reason"] == "auth"
        assert headers.get("WWW-Authenticate") == "Bearer"

    def test_unknown_key_is_401(self, tenant_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_translate(tenant_server.url, api_key="who-is-this-key")
        status, body, _ = http_error(excinfo)
        assert status == 401
        assert body["reason"] == "auth"

    def test_rate_limit_is_429_with_retry_after(self, tenant_server):
        status, _ = post_translate(tenant_server.url, api_key=BURSTY_KEY)
        assert status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_translate(tenant_server.url, api_key=BURSTY_KEY)
        status, body, headers = http_error(excinfo)
        assert status == 429
        assert body["reason"] == "rate_limited"
        assert body["retriable"] is True
        assert int(headers["Retry-After"]) >= 1

    def test_quota_is_429_not_retriable_today(self, tenant_server):
        for _ in range(2):
            status, _ = post_translate(tenant_server.url, api_key=CAPPED_KEY)
            assert status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_translate(tenant_server.url, api_key=CAPPED_KEY)
        status, body, headers = http_error(excinfo)
        assert status == 429
        assert body["reason"] == "quota"
        assert body["retriable"] is False
        assert int(headers["Retry-After"]) >= 1


class TestTenantsEndpoints:
    def test_admin_lists_all_tenants(self, tenant_server):
        post_translate(tenant_server.url, api_key=ACME_KEY)
        status, body = get(tenant_server.url + "/tenants", api_key=ADMIN_KEY)
        assert status == 200
        assert body["config_version"] == 7
        by_id = {entry["id"]: entry for entry in body["tenants"]}
        assert set(by_id) == {"acme", "bursty", "capped"}
        assert by_id["acme"]["admitted"] == 1
        assert by_id["acme"]["latency"]["count"] >= 1
        assert "api_key" not in by_id["acme"]

    def test_tenants_listing_requires_admin(self, tenant_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(tenant_server.url + "/tenants")
        assert http_error(excinfo)[0] == 401
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(tenant_server.url + "/tenants", api_key=ACME_KEY)
        assert http_error(excinfo)[0] == 403

    def test_usage_with_own_key(self, tenant_server):
        post_translate(tenant_server.url, api_key=CAPPED_KEY)
        status, body = get(
            tenant_server.url + "/tenants/capped/usage", api_key=CAPPED_KEY
        )
        assert status == 200
        assert body["id"] == "capped"
        assert body["quota_used"] == 1
        assert body["quota_remaining"] == 1
        assert body["admitted"] == 1
        assert body["rejected"] == {"rate_limited": 0, "quota": 0}
        assert "latency" in body

    def test_usage_with_admin_key(self, tenant_server):
        status, body = get(
            tenant_server.url + "/tenants/acme/usage", api_key=ADMIN_KEY
        )
        assert status == 200
        assert body["id"] == "acme"

    def test_usage_with_someone_elses_key_is_403(self, tenant_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(tenant_server.url + "/tenants/acme/usage", api_key=CAPPED_KEY)
        assert http_error(excinfo)[0] == 403

    def test_usage_with_bad_key_is_401(self, tenant_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(tenant_server.url + "/tenants/acme/usage", api_key="nope-key")
        assert http_error(excinfo)[0] == 401

    def test_usage_unknown_tenant_is_404(self, tenant_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(tenant_server.url + "/tenants/ghost/usage", api_key=ADMIN_KEY)
        assert http_error(excinfo)[0] == 404


class TestTenantMetrics:
    def test_tenant_labeled_series_on_metrics(self, tenant_server):
        post_translate(tenant_server.url, api_key=ACME_KEY)
        with pytest.raises(urllib.error.HTTPError):
            post_translate(tenant_server.url, api_key="who-is-this-key")
        with urllib.request.urlopen(
            tenant_server.url + "/metrics", timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        assert 'tenant_requests_total{tenant="acme"} 1' in text
        assert 'tenant_admitted_total{tenant="acme"} 1' in text
        assert "tenancy_auth_failures_total 1" in text
        assert 'tenant_latency_seconds_count{tenant="acme"}' in text


class TestAnonymousModeUnchanged:
    """Without a controller the server keeps its pre-tenancy behavior."""

    @pytest.fixture
    def anon_server(self, pets_db):
        service = TranslationService(
            [DatabaseRuntime(pets_db, database_id="pets")], workers=2
        ).start()
        server = ServingServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        service.stop()

    def test_translate_needs_no_key(self, anon_server):
        status, payload = post_translate(anon_server.url)
        assert status == 200
        assert payload["sql"]
        assert payload["tenant_id"] is None

    def test_tenants_endpoints_404(self, anon_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(anon_server.url + "/tenants")
        assert http_error(excinfo)[0] == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(anon_server.url + "/tenants/acme/usage")
        assert http_error(excinfo)[0] == 404
