"""Unit tests for repro.schema: model, graph, joins, serialization."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, TranslationError
from repro.schema import (
    Column,
    ColumnType,
    ForeignKey,
    Schema,
    SchemaGraph,
    Table,
    load_schemas,
    plan_joins,
    save_schemas,
    schema_from_dict,
    schema_to_dict,
    shortest_join_path,
    steiner_join_tables,
)


class TestColumnType:
    @pytest.mark.parametrize(
        "sql_type,expected",
        [
            ("VARCHAR(40)", ColumnType.TEXT),
            ("int", ColumnType.NUMBER),
            ("INTEGER", ColumnType.NUMBER),
            ("double", ColumnType.NUMBER),
            ("bool", ColumnType.BOOLEAN),
            ("DATETIME", ColumnType.TIME),
            ("blob", ColumnType.OTHERS),
        ],
    )
    def test_from_sql_type(self, sql_type, expected):
        assert ColumnType.from_sql_type(sql_type) is expected


class TestModel:
    def test_column_natural_name_default(self):
        column = Column("home_country", "student")
        assert column.natural_name == "home country"
        assert column.words == ["home", "country"]

    def test_qualified_name(self):
        assert Column("age", "student").qualified_name == "student.age"

    def test_star_column(self, pets_schema):
        star = pets_schema.star_column
        assert star.is_star()
        assert pets_schema.all_columns()[0] is star

    def test_table_rejects_foreign_columns(self):
        with pytest.raises(SchemaError):
            Table("a", (Column("x", "b"),))

    def test_schema_rejects_duplicate_tables(self):
        table = Table("t", (Column("x", "t"),))
        with pytest.raises(SchemaError):
            Schema("s", [table, table])

    def test_schema_rejects_dangling_fk(self):
        table = Table("t", (Column("x", "t"),))
        with pytest.raises(SchemaError):
            Schema("s", [table], [ForeignKey("t", "x", "t", "missing")])

    def test_lookup_case_insensitive(self, pets_schema):
        assert pets_schema.table("STUDENT").name == "student"
        assert pets_schema.column("Student", "AGE").name == "age"

    def test_missing_lookups_raise(self, pets_schema):
        with pytest.raises(SchemaError):
            pets_schema.table("nope")
        with pytest.raises(SchemaError):
            pets_schema.column("student", "nope")

    def test_column_index_alignment(self, pets_schema):
        columns = pets_schema.all_columns()
        for i, column in enumerate(columns):
            assert pets_schema.column_index(column) == i

    def test_table_index(self, pets_schema):
        assert pets_schema.table_index("student") == 0
        assert pets_schema.table_index("HAS_PET") == 2

    def test_counts(self, pets_schema):
        assert pets_schema.num_tables == 3
        assert pets_schema.num_columns == 11

    def test_primary_key(self, pets_schema):
        pks = pets_schema.primary_key("student")
        assert [c.name for c in pks] == ["stuid"]
        assert pets_schema.primary_key("has_pet") == []

    def test_relationships_of(self, pets_schema):
        fks = pets_schema.relationships_of("student")
        assert len(fks) == 1
        assert fks[0].source_table == "has_pet"


class TestGraph:
    def test_neighbors(self, pets_graph):
        assert set(pets_graph.neighbors("has_pet")) == {"student", "pet"}

    def test_connected(self, pets_graph):
        assert pets_graph.are_connected("student", "pet")

    def test_edge_between_orientation(self, pets_graph):
        edge = pets_graph.edge_between("student", "has_pet")
        assert edge is not None
        assert edge.left_table == "student"
        assert edge.right_table == "has_pet"
        assert edge.left_column == "stuid"

    def test_no_direct_edge(self, pets_graph):
        assert pets_graph.edge_between("student", "pet") is None

    def test_condition_rendering(self, pets_graph):
        edge = pets_graph.edge_between("student", "has_pet")
        assert edge.condition("T1", "T2") == "T1.stuid = T2.stuid"


class TestJoins:
    def test_shortest_path_goes_through_bridge(self, pets_graph):
        path = shortest_join_path(pets_graph, "student", "pet")
        assert path == ["student", "has_pet", "pet"]

    def test_steiner_includes_bridge(self, pets_graph):
        tables = steiner_join_tables(pets_graph, ["student", "pet"])
        assert tables == {"student", "has_pet", "pet"}

    def test_plan_joins_single_table(self, pets_graph):
        plan = plan_joins(pets_graph, ["student"])
        assert plan.tables == ("student",)
        assert plan.edges == ()

    def test_plan_joins_adds_bridge_with_on_columns(self, pets_graph):
        plan = plan_joins(pets_graph, ["student", "pet"])
        assert set(plan.tables) == {"student", "has_pet", "pet"}
        assert len(plan.edges) == 2
        # every edge must carry its FK columns (Execution Accuracy needs
        # the ON clauses)
        for edge in plan.edges:
            assert edge.left_column and edge.right_column

    def test_plan_joins_dedupes(self, pets_graph):
        plan = plan_joins(pets_graph, ["student", "student"])
        assert plan.tables == ("student",)

    def test_plan_joins_disconnected_raises(self):
        a = Table("a", (Column("x", "a"),))
        b = Table("b", (Column("y", "b"),))
        graph = SchemaGraph(Schema("s", [a, b]))
        with pytest.raises(TranslationError):
            plan_joins(graph, ["a", "b"])

    def test_plan_joins_empty_raises(self, pets_graph):
        with pytest.raises(TranslationError):
            plan_joins(pets_graph, [])

    def test_plan_preserves_first_table_anchor(self, pets_graph):
        plan = plan_joins(pets_graph, ["pet", "student"])
        assert plan.tables[0] == "pet"


class TestSerialization:
    def test_roundtrip(self, pets_schema):
        record = schema_to_dict(pets_schema)
        rebuilt = schema_from_dict(record)
        assert rebuilt.name == pets_schema.name
        assert [t.name for t in rebuilt.tables] == [t.name for t in pets_schema.tables]
        assert rebuilt.num_columns == pets_schema.num_columns
        assert len(rebuilt.foreign_keys) == len(pets_schema.foreign_keys)
        # PK flags survive
        assert rebuilt.column("student", "stuid").is_primary_key

    def test_spider_shape(self, pets_schema):
        record = schema_to_dict(pets_schema)
        assert record["column_names_original"][0] == [-1, "*"]
        assert "db_id" in record and "foreign_keys" in record

    def test_file_roundtrip(self, pets_schema, tmp_path):
        path = tmp_path / "tables.json"
        save_schemas([pets_schema], path)
        [loaded] = load_schemas(path)
        assert loaded.name == "pets"
        assert loaded.table("pet").column("weight").column_type is ColumnType.NUMBER

    def test_missing_key_raises(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"db_id": "x"})
