"""Tests for the defense-in-depth SQL policy engine.

Every rule in the registry gets a *fire* case and a *quiet twin*: a
statement that trips the rule, and the closest legitimate statement that
must pass.  The twin is the real test — a policy layer that blocks the
legitimate traffic it sits in front of would never be deployed.

Also locked in here: the structured violation shape (machine-readable
rule ids), config override precedence (default < database < tenant),
the tenant-labeled blocked counter, eager config validation, and the
executor's unconditional multi-statement rejection.
"""

from __future__ import annotations

import json

import pytest

from repro.db.executor import (
    MultiStatementError,
    execute_with_budget,
    reject_multi_statement,
)
from repro.policy import (
    ANONYMOUS_TENANT,
    PolicyConfig,
    PolicyConfigError,
    PolicyConfigStore,
    PolicyEngine,
    PolicyViolationError,
    all_rules,
    mask_strings,
    rule_catalog,
)
from repro.schema import Column, ColumnType, ForeignKey, Schema, Table
from repro.serving.metrics import MetricsRegistry


def rule_ids(engine, sql, schema=None, **kwargs):
    """The set of rule ids that fire for ``sql``."""
    return {v.rule_id for v in engine.evaluate(sql, schema=schema, **kwargs)}


@pytest.fixture
def engine():
    """Engine with built-in defaults: read-only, no limit requirement."""
    return PolicyEngine()


@pytest.fixture
def orphan_schema(pets_schema) -> Schema:
    """Pets plus a table no foreign key reaches (join-sanity fodder)."""
    orphan = Table(
        "orphan",
        (Column("oid", "orphan", ColumnType.NUMBER, is_primary_key=True),),
    )
    return Schema(
        "pets",
        list(pets_schema.tables) + [orphan],
        list(pets_schema.foreign_keys),
    )


class TestRegistry:
    def test_catalog_lists_every_rule_once(self):
        ids = [rule_id for rule_id, _ in rule_catalog()]
        assert len(ids) == len(set(ids))
        assert set(ids) == {
            "multi-statement",
            "blocked-keyword",
            "read-only",
            "join-sanity",
            "limit-required",
            "subquery-depth",
            "max-tables",
        }

    def test_every_rule_has_a_description(self):
        for rule in all_rules():
            assert rule.rule_id
            assert rule.description


class TestMultiStatement:
    def test_fires_on_piggybacked_statement(self, engine, pets_schema):
        ids = rule_ids(
            engine, "SELECT name FROM student; DROP TABLE student", pets_schema
        )
        assert "multi-statement" in ids

    def test_quiet_on_trailing_semicolon(self, engine, pets_schema):
        ids = rule_ids(engine, "SELECT name FROM student;", pets_schema)
        assert "multi-statement" not in ids

    def test_quiet_on_semicolon_inside_literal(self, engine, pets_schema):
        ids = rule_ids(
            engine,
            "SELECT name FROM student WHERE home_country = 'a; DROP TABLE x'",
            pets_schema,
        )
        assert ids == set()


class TestBlockedKeyword:
    @pytest.mark.parametrize(
        "sql",
        [
            "DROP TABLE student",
            "DELETE FROM student",
            "INSERT INTO student VALUES (9, 'x', 1, 'y', 'F')",
            "UPDATE student SET age = 0",
            "PRAGMA table_info(student)",
            "ATTACH DATABASE '/tmp/x' AS x",
        ],
    )
    def test_fires_on_ddl_dml(self, engine, pets_schema, sql):
        assert "blocked-keyword" in rule_ids(engine, sql, pets_schema)

    def test_quiet_when_keyword_is_only_a_literal(self, engine, pets_schema):
        ids = rule_ids(
            engine,
            "SELECT name FROM student WHERE home_country = 'DROP TABLE'",
            pets_schema,
        )
        assert ids == set()

    def test_quiet_on_substring_identifiers(self, engine):
        # "updated_at" contains "update"; word boundaries must hold.
        assert "blocked-keyword" not in rule_ids(
            engine, "SELECT updated_at FROM t"
        )


class TestReadOnly:
    def test_fires_on_non_select(self, engine, pets_schema):
        assert "read-only" in rule_ids(
            engine, "VACUUM", pets_schema
        )

    def test_quiet_on_select(self, engine, pets_schema):
        assert "read-only" not in rule_ids(
            engine, "SELECT name FROM student", pets_schema
        )

    def test_disabled_by_config(self, pets_schema):
        store = PolicyConfigStore.from_dict(
            {"version": 1, "default": {"read_only": False,
                                       "blocked_keywords": []}}
        )
        engine = PolicyEngine(store)
        assert "read-only" not in rule_ids(engine, "VACUUM", pets_schema)


class TestJoinSanity:
    def test_fires_on_unreachable_join(self, engine, orphan_schema):
        ids = rule_ids(
            engine,
            "SELECT student.name FROM student JOIN orphan "
            "ON student.stuid = orphan.oid",
            orphan_schema,
        )
        assert "join-sanity" in ids

    def test_quiet_on_fk_connected_join(self, engine, orphan_schema):
        ids = rule_ids(
            engine,
            "SELECT student.name FROM student JOIN has_pet "
            "ON student.stuid = has_pet.stuid",
            orphan_schema,
        )
        assert ids == set()


class TestLimitRequired:
    @pytest.fixture
    def engine(self):
        store = PolicyConfigStore.from_dict(
            {"version": 1, "default": {"require_limit": 10}}
        )
        return PolicyEngine(store)

    def test_fires_without_limit(self, engine, pets_schema):
        assert "limit-required" in rule_ids(
            engine, "SELECT name FROM student", pets_schema
        )

    def test_fires_over_threshold(self, engine, pets_schema):
        assert "limit-required" in rule_ids(
            engine, "SELECT name FROM student LIMIT 100", pets_schema
        )

    def test_quiet_within_threshold(self, engine, pets_schema):
        assert rule_ids(
            engine, "SELECT name FROM student LIMIT 5", pets_schema
        ) == set()

    def test_quiet_on_aggregate_only_query(self, engine, pets_schema):
        # A scalar aggregate returns one row; demanding LIMIT is noise.
        assert rule_ids(
            engine, "SELECT count(*) FROM student", pets_schema
        ) == set()


class TestSubqueryDepth:
    @pytest.fixture
    def engine(self):
        store = PolicyConfigStore.from_dict(
            {"version": 1, "default": {"max_subquery_depth": 0}}
        )
        return PolicyEngine(store)

    def test_fires_on_nested_subquery(self, engine, pets_schema):
        assert "subquery-depth" in rule_ids(
            engine,
            "SELECT name FROM student WHERE stuid IN "
            "(SELECT stuid FROM has_pet)",
            pets_schema,
        )

    def test_quiet_on_flat_query(self, engine, pets_schema):
        assert rule_ids(
            engine, "SELECT name FROM student", pets_schema
        ) == set()


class TestMaxTables:
    @pytest.fixture
    def engine(self):
        store = PolicyConfigStore.from_dict(
            {"version": 1, "default": {"max_tables": 2}}
        )
        return PolicyEngine(store)

    def test_fires_on_three_table_join(self, engine, pets_schema):
        sql = (
            "SELECT student.name FROM student "
            "JOIN has_pet ON student.stuid = has_pet.stuid "
            "JOIN pet ON has_pet.petid = pet.petid"
        )
        assert "max-tables" in rule_ids(engine, sql, pets_schema)

    def test_quiet_on_two_table_join(self, engine, pets_schema):
        sql = (
            "SELECT student.name FROM student "
            "JOIN has_pet ON student.stuid = has_pet.stuid"
        )
        assert rule_ids(engine, sql, pets_schema) == set()


class TestUnparseableSql:
    def test_raw_rules_still_hold_without_an_ast(self, engine):
        # No schema at all: parse is skipped, but the raw-text defenses
        # (multi-statement, blocked keywords, read-only) still fire.
        ids = rule_ids(engine, "DELETE FROM x; PRAGMA writable_schema=1")
        assert {"multi-statement", "blocked-keyword", "read-only"} <= ids

    def test_ast_rules_skip_quietly_on_parse_failure(self, pets_schema):
        store = PolicyConfigStore.from_dict(
            {"version": 1, "default": {"require_limit": 1}}
        )
        engine = PolicyEngine(store)
        # Parses fine -> limit-required fires; unparseable -> it cannot.
        assert "limit-required" in rule_ids(
            engine, "SELECT name FROM student", pets_schema
        )
        ids = rule_ids(
            engine, "SELECT name FROM student WINDOW nonsense", pets_schema
        )
        assert "limit-required" not in ids


class TestViolationShape:
    def test_check_sql_raises_with_machine_readable_payload(
        self, engine, pets_schema
    ):
        with pytest.raises(PolicyViolationError) as info:
            engine.check_sql("DROP TABLE student", schema=pets_schema)
        err = info.value
        assert err.rule_id in str(err)
        payload = err.as_dict()
        assert payload["rule_id"] == err.rule_id
        assert payload["violations"]
        for violation in payload["violations"]:
            assert violation["rule_id"]
            assert violation["message"]
        json.dumps(payload)  # must be JSON-serializable end to end

    def test_check_sql_passes_legitimate_query(self, engine, pets_schema):
        engine.check_sql("SELECT name FROM student", schema=pets_schema)


class TestConfigPrecedence:
    @pytest.fixture
    def store(self):
        return PolicyConfigStore.from_dict(
            {
                "version": 1,
                "default": {"require_limit": 5},
                "databases": {"pets": {"require_limit": 50}},
                "tenants": {"acme": {"disabled_rules": ["limit-required"]}},
            }
        )

    def test_default_applies_without_overrides(self, store):
        assert store.resolve(None, None).require_limit == 5

    def test_database_overrides_default(self, store):
        assert store.resolve("pets", None).require_limit == 50
        assert store.resolve("other", None).require_limit == 5

    def test_tenant_overrides_win(self, store):
        config = store.resolve("pets", "acme")
        assert config.require_limit == 50  # database override survives
        assert config.rule_disabled("limit-required")
        assert not store.resolve("pets", "other").rule_disabled(
            "limit-required"
        )

    def test_override_is_field_level_merge(self):
        base = PolicyConfig()
        merged = base.override({"require_limit": 7})
        assert merged.require_limit == 7
        assert merged.read_only == base.read_only
        assert merged.blocked_keywords == base.blocked_keywords


class TestConfigValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(PolicyConfigError):
            PolicyConfig().override({"no_such_knob": 1})

    def test_read_only_must_be_bool(self):
        with pytest.raises(PolicyConfigError):
            PolicyConfig().override({"read_only": "yes"})

    def test_numeric_fields_reject_negatives_and_bools(self):
        with pytest.raises(PolicyConfigError):
            PolicyConfig().override({"require_limit": -1})
        with pytest.raises(PolicyConfigError):
            PolicyConfig().override({"max_subquery_depth": True})

    def test_bad_version_rejected(self):
        with pytest.raises(PolicyConfigError):
            PolicyConfigStore.from_dict({"version": 2})

    def test_bad_scope_rejected_eagerly(self):
        with pytest.raises(PolicyConfigError):
            PolicyConfigStore.from_dict(
                {"version": 1, "tenants": {"acme": {"bogus": 1}}}
            )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PolicyConfigError):
            PolicyConfigStore.load(tmp_path / "nope.json")

    def test_load_round_trips(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps(
            {"version": 1, "default": {"require_limit": 9}}
        ))
        store = PolicyConfigStore.load(path)
        assert store.resolve(None, None).require_limit == 9


class TestBlockedMetrics:
    def test_counter_is_tenant_labeled(self, pets_schema):
        metrics = MetricsRegistry()
        engine = PolicyEngine(metrics=metrics)
        with pytest.raises(PolicyViolationError):
            engine.check_sql(
                "DROP TABLE student", schema=pets_schema, tenant_id="acme"
            )
        with pytest.raises(PolicyViolationError):
            engine.check_sql("DROP TABLE student", schema=pets_schema)
        snapshot = metrics.snapshot()
        assert snapshot['policy_blocked_total{tenant="acme"}'] == 1
        key = f'policy_blocked_total{{tenant="{ANONYMOUS_TENANT}"}}'
        assert snapshot[key] == 1

    def test_passing_queries_do_not_increment(self, pets_schema):
        metrics = MetricsRegistry()
        engine = PolicyEngine(metrics=metrics)
        engine.check_sql("SELECT name FROM student", schema=pets_schema)
        assert not any(
            key.startswith("policy_blocked_total{")
            for key in metrics.snapshot()
        )


class TestMaskStrings:
    def test_masks_preserve_length_and_structure(self):
        sql = "SELECT a FROM t WHERE b = 'x; DROP' AND c = \"d''e\""
        masked = mask_strings(sql)
        assert len(masked) == len(sql)
        assert "DROP" not in masked
        assert masked.startswith("SELECT a FROM t WHERE b = ")

    def test_unterminated_string_masks_to_end(self):
        masked = mask_strings("SELECT a FROM t WHERE b = 'oops")
        assert "oops" not in masked


class TestExecutorMultiStatementGate:
    def test_rejects_piggybacked_statement(self, pets_db):
        with pytest.raises(MultiStatementError):
            execute_with_budget(
                pets_db, "SELECT name FROM student; DROP TABLE student"
            )
        # The table must still exist: nothing ran.
        assert pets_db.execute("SELECT count(*) FROM student")

    def test_trailing_semicolon_is_fine(self, pets_db):
        rows = execute_with_budget(pets_db, "SELECT name FROM student;")
        assert len(rows) == 4

    def test_semicolons_in_literals_and_brackets_are_fine(self):
        reject_multi_statement("SELECT 'a;b' FROM t")
        reject_multi_statement('SELECT "a;b" FROM t')
        reject_multi_statement("SELECT [a;b] FROM t")
        with pytest.raises(MultiStatementError):
            reject_multi_statement("SELECT 1 ; SELECT 2")

    def test_policy_gate_runs_inside_executor(self, pets_db):
        engine = PolicyEngine()
        with pytest.raises(PolicyViolationError):
            execute_with_budget(
                pets_db, "DELETE FROM student", policy=engine
            )
        assert len(pets_db.execute("SELECT name FROM student")) == 4

    def test_policy_gate_passes_selects(self, pets_db):
        engine = PolicyEngine()
        rows = execute_with_budget(
            pets_db, "SELECT name FROM student", policy=engine
        )
        assert len(rows) == 4


class TestForeignKeyLintCheck:
    def test_fk_reachability_uses_the_graph_argument(self, engine, pets_graph,
                                                     pets_schema):
        # Passing a prebuilt graph must behave identically to schema-only.
        sql = (
            "SELECT student.name FROM student "
            "JOIN has_pet ON student.stuid = has_pet.stuid"
        )
        assert engine.evaluate(sql, schema=pets_schema,
                               graph=pets_graph) == []
