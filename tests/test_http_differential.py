"""Differential lock: threaded vs async front door, byte-identical bodies.

Both servers delegate to :mod:`repro.serving.routes`; this suite proves
the delegation is airtight by running the full route matrix —
translate (200/400/403/404/503), healthz/livez/readyz, metrics,
tenants (incl. 401/403/429 admission paths) — against a *deterministic*
fake service mounted behind both implementations at once, and comparing
response bodies byte for byte.

The service is fake on purpose: a real ``translate`` stamps wall-clock
timings into the body, so two live calls never match bytewise.  The
lock is about the front door, not the model — the fake pins every
response so any divergence that shows up is transport-layer drift.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.serving import AsyncServingServer, MetricsRegistry, ServingServer
from repro.serving.service import (
    QueueFullError,
    ServeResponse,
    UnknownDatabaseError,
)
from repro.tenancy.controller import (
    AuthenticationError,
    QuotaExceededError,
    RateLimitedError,
)

GOOD_KEY = "tenant-key-good"
ADMIN_KEY = "tenant-key-admin"
LIMITED_KEY = "tenant-key-limited"
CAPPED_KEY = "tenant-key-capped"


class _Tenant:
    def __init__(self, tenant_id: str, weight: int = 1):
        self.tenant_id = tenant_id
        self.weight = weight


class FakeTenancy:
    """Deterministic admission control: outcomes keyed by API key."""

    def is_admin(self, key):
        return key == ADMIN_KEY

    def authenticate(self, key):
        if key == GOOD_KEY:
            return _Tenant("acme")
        raise AuthenticationError("unknown or disabled API key")

    def admit(self, key):
        if key == GOOD_KEY:
            return _Tenant("acme")
        if key == LIMITED_KEY:
            raise RateLimitedError("tenant 'limited' over rate", 2.5)
        if key == CAPPED_KEY:
            raise QuotaExceededError("tenant 'capped' quota spent", 600.0)
        raise AuthenticationError("unknown or disabled API key")

    def overview(self):
        return {"version": 1, "tenants": [{"id": "acme", "class": "gold"}]}

    def usage(self, tenant_id):
        if tenant_id == "acme":
            return {"id": "acme", "requests_today": 3}
        return None


def _fixed_response(**overrides) -> ServeResponse:
    response = ServeResponse(question="How many pets?", database_id="pets")
    response.sql = "SELECT count(*) FROM pets"
    response.engine = "heuristic"
    response.timings = {"decode": 0.001}
    response.queue_ms = 0.5
    response.service_ms = 1.5
    for key, value in overrides.items():
        setattr(response, key, value)
    return response


class FakeService:
    """Pinned-response stand-in with the duck-typed service surface."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.tenancy = FakeTenancy()

    def is_ready(self):
        return True

    def health(self):
        return {"status": "ok", "ready": True, "databases": ["pets"]}

    def translate(self, question, database_id=None, **kwargs):
        if database_id == "missing":
            raise UnknownDatabaseError("unknown database 'missing'")
        if question == "overload":
            raise QueueFullError("queue full (64 deep)")
        if question == "badparam":
            raise ValueError("beam_size must be positive")
        if question == "blocked":
            return _fixed_response(
                sql=None,
                policy={"rule_id": "blocked-keyword", "violations": ["x"]},
            )
        return _fixed_response()


@pytest.fixture(scope="module")
def pair():
    service = FakeService()
    threaded = ServingServer(("127.0.0.1", 0), service)
    asynced = AsyncServingServer(("127.0.0.1", 0), service)
    threads = [
        threading.Thread(target=threaded.serve_forever, daemon=True),
        threading.Thread(target=asynced.serve_forever, daemon=True),
    ]
    for thread in threads:
        thread.start()
    yield threaded, asynced
    for server in (threaded, asynced):
        server.shutdown()
        server.server_close()


def _request(server, method, path, *, body=None, headers=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def both(pair, method, path, *, body=None, headers=None):
    """Issue the same request to both servers; assert status+body match."""
    threaded, asynced = pair
    status_a, body_a = _request(threaded, method, path, body=body, headers=headers)
    status_b, body_b = _request(asynced, method, path, body=body, headers=headers)
    assert status_a == status_b, (path, status_a, status_b, body_a, body_b)
    assert body_a == body_b, (path, body_a, body_b)
    return status_a, body_a


def _post(pair, payload, *, key=None, raw=None):
    headers = {"Content-Type": "application/json"}
    if key:
        headers["Authorization"] = f"Bearer {key}"
    body = raw if raw is not None else json.dumps(payload).encode("utf-8")
    return both(pair, "POST", "/translate", body=body, headers=headers)


class TestGetMatrix:
    def test_livez(self, pair):
        status, body = both(pair, "GET", "/livez")
        assert status == 200
        assert json.loads(body) == {"live": True}

    def test_readyz(self, pair):
        status, _ = both(pair, "GET", "/readyz")
        assert status == 200

    def test_healthz(self, pair):
        status, body = both(pair, "GET", "/healthz")
        assert status == 200
        assert json.loads(body)["databases"] == ["pets"]

    def test_metrics_text(self, pair):
        status, _ = both(pair, "GET", "/metrics")
        assert status == 200

    def test_metrics_json(self, pair):
        status, _ = both(pair, "GET", "/metrics?format=json")
        assert status == 200

    def test_unknown_path(self, pair):
        status, _ = both(pair, "GET", "/nope")
        assert status == 404

    def test_tenants_requires_key(self, pair):
        status, _ = both(pair, "GET", "/tenants")
        assert status == 401

    def test_tenants_non_admin_forbidden(self, pair):
        status, _ = both(
            pair, "GET", "/tenants",
            headers={"Authorization": f"Bearer {GOOD_KEY}"},
        )
        assert status == 403

    def test_tenants_admin(self, pair):
        status, body = both(
            pair, "GET", "/tenants",
            headers={"Authorization": f"Bearer {ADMIN_KEY}"},
        )
        assert status == 200
        assert json.loads(body)["tenants"][0]["id"] == "acme"

    def test_tenant_usage(self, pair):
        status, _ = both(
            pair, "GET", "/tenants/acme/usage",
            headers={"Authorization": f"Bearer {GOOD_KEY}"},
        )
        assert status == 200

    def test_tenant_usage_unknown(self, pair):
        status, _ = both(
            pair, "GET", "/tenants/ghost/usage",
            headers={"Authorization": f"Bearer {ADMIN_KEY}"},
        )
        assert status == 404


class TestTranslateMatrix:
    def test_success(self, pair):
        status, body = _post(
            pair, {"question": "How many pets?", "database_id": "pets"},
            key=GOOD_KEY,
        )
        assert status == 200
        assert json.loads(body)["sql"] == "SELECT count(*) FROM pets"

    def test_policy_block_403(self, pair):
        status, body = _post(
            pair, {"question": "blocked", "database_id": "pets"}, key=GOOD_KEY
        )
        assert status == 403
        payload = json.loads(body)
        assert payload["reason"] == "policy"
        assert payload["rule_id"] == "blocked-keyword"

    def test_unknown_database_404(self, pair):
        status, _ = _post(
            pair, {"question": "q", "database_id": "missing"}, key=GOOD_KEY
        )
        assert status == 404

    def test_queue_full_503(self, pair):
        status, body = _post(pair, {"question": "overload"}, key=GOOD_KEY)
        assert status == 503
        assert json.loads(body)["retriable"] is True

    def test_bad_params_400(self, pair):
        status, _ = _post(pair, {"question": "badparam"}, key=GOOD_KEY)
        assert status == 400

    def test_missing_question_400(self, pair):
        status, _ = _post(pair, {"database_id": "pets"}, key=GOOD_KEY)
        assert status == 400

    def test_invalid_json_400(self, pair):
        status, _ = _post(pair, None, key=GOOD_KEY, raw=b"{not json")
        assert status == 400

    def test_empty_body_400(self, pair):
        status, _ = _post(pair, None, key=GOOD_KEY, raw=b"")
        assert status == 400

    def test_missing_key_401(self, pair):
        status, body = _post(pair, {"question": "q"})
        assert status == 401
        assert json.loads(body)["reason"] == "auth"

    def test_rate_limited_429(self, pair):
        status, body = _post(pair, {"question": "q"}, key=LIMITED_KEY)
        assert status == 429
        assert json.loads(body)["reason"] == "rate_limited"

    def test_quota_429(self, pair):
        status, body = _post(pair, {"question": "q"}, key=CAPPED_KEY)
        assert status == 429
        assert json.loads(body)["reason"] == "quota"

    def test_oversized_body_413(self, pair):
        # Threaded closes without draining the body; async refuses from
        # the Content-Length alone.  Both must answer 413, same body.
        raw = json.dumps({"question": "x" * (70 * 1024)}).encode("utf-8")
        status, body = _post(pair, None, key=GOOD_KEY, raw=raw)
        assert status == 413
        assert b"64 KiB" in body

    def test_post_unknown_path_404(self, pair):
        status, _ = both(
            pair, "POST", "/nope",
            body=b"{}", headers={"Content-Type": "application/json"},
        )
        assert status == 404
