"""Differential tests: the batched inference path must be indistinguishable
from the sequential one.

Covers the three layers of the fast path: ``inference_mode`` (no autograd
graph, identical numerics), ``ValueNetEncoder.encode_batch`` (padded +
masked fused forward == per-example forwards), and the pipeline's
``translate_batch`` (identical final SQL and errors).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import ModelError
from repro.model import SchemaFeatureCache, ValueNetModel, build_vocabulary, featurize
from repro.nn import Tensor, inference_mode, is_grad_enabled
from repro.pipeline import ValueNetPipeline
from repro.preprocessing import Preprocessor
from repro.spider import CorpusConfig, generate_corpus

TINY = ModelConfig(
    dim=32, num_layers=1, num_heads=2, ff_dim=48, summary_hidden=16,
    decoder_hidden=32, pointer_hidden=24, dropout=0.0, word_dropout=0.0,
)

ENCODED_FIELDS = ("question", "columns", "tables", "values", "summary")


@pytest.fixture(scope="module")
def corpus():
    corpus = generate_corpus(CorpusConfig(train_per_domain=8, dev_per_domain=4))
    yield corpus
    corpus.close()


@pytest.fixture(scope="module")
def model(corpus):
    vocab = build_vocabulary(
        [e.question for e in corpus.train],
        [corpus.schema(d) for d in corpus.train_domains],
        [str(v) for e in corpus.train for v in e.values],
        vocab_size=600,
    )
    return ValueNetModel(vocab, TINY)


@pytest.fixture(scope="module")
def domain_examples(corpus):
    """(database, preprocessed questions) for the first training domain."""
    domain = corpus.train_domains[0]
    db = corpus.database(domain)
    questions = [e.question for e in corpus.train if e.db_id == domain]
    preprocessor = Preprocessor(db)
    return db, [preprocessor.run(q) for q in questions]


def max_abs_diff(a, b) -> float:
    if a is None and b is None:
        return 0.0
    assert (a is None) == (b is None)
    assert a.shape == b.shape
    return float(np.max(np.abs(a.data - b.data)))


class TestBatchedEncoderEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 2, 8])
    def test_encode_batch_matches_sequential(
        self, model, domain_examples, batch_size
    ):
        db, pres = domain_examples
        pres = pres[:batch_size]
        assert len(pres) == batch_size
        model.eval()
        sequential = [model.encode(pre, db.schema) for pre in pres]
        batched = model.encode_batch(pres, db.schema)
        assert len(batched) == batch_size
        for seq, bat in zip(sequential, batched):
            for name in ENCODED_FIELDS:
                diff = max_abs_diff(getattr(seq, name), getattr(bat, name))
                assert diff < 1e-6, f"{name} differs by {diff}"

    def test_mixed_lengths_pad_correctly(self, model, domain_examples):
        # Sort by length so the batch mixes the shortest and longest
        # sequences — padding is maximally exercised.
        db, pres = domain_examples
        inputs = [featurize(p, db.schema, model.vocab) for p in pres]
        order = np.argsort([inp.length for inp in inputs])
        mixed = [pres[order[0]], pres[order[-1]], pres[order[len(order) // 2]]]
        lengths = {featurize(p, db.schema, model.vocab).length for p in mixed}
        assert len(lengths) > 1, "corpus questions are all the same length"
        model.eval()
        sequential = [model.encode(pre, db.schema) for pre in mixed]
        batched = model.encode_batch(mixed, db.schema)
        for seq, bat in zip(sequential, batched):
            for name in ENCODED_FIELDS:
                assert max_abs_diff(getattr(seq, name), getattr(bat, name)) < 1e-6

    def test_decode_parity_including_errors(self, model, domain_examples):
        db, pres = domain_examples

        def outcome(pre, encoded):
            try:
                return repr(model.decode_encoded(encoded, pre, db.schema))
            except ModelError as exc:
                return f"ModelError: {exc}"

        model.eval()
        sequential = [model.encode(pre, db.schema) for pre in pres]
        batched = model.encode_batch(pres, db.schema)
        for pre, seq, bat in zip(pres, sequential, batched):
            assert outcome(pre, seq) == outcome(pre, bat)

    def test_pipeline_translate_batch_matches_translate(self, model, corpus):
        domain = corpus.train_domains[0]
        db = corpus.database(domain)
        questions = [e.question for e in corpus.train if e.db_id == domain]
        pipeline = ValueNetPipeline(model, db)
        sequential = [pipeline.translate(q) for q in questions]
        batched = pipeline.translate_batch(questions)
        assert len(batched) == len(sequential)
        for seq, bat in zip(sequential, batched):
            assert bat.sql == seq.sql
            assert bat.error == seq.error

    def test_empty_and_singleton_batches(self, model, domain_examples):
        db, pres = domain_examples
        assert model.encode_batch([], db.schema) == []
        pipeline = ValueNetPipeline(model, db)
        assert pipeline.translate_batch([]) == []
        [only] = pipeline.translate_batch([pres[0].question])
        assert only.sql == pipeline.translate(pres[0].question).sql

    def test_batch_outputs_carry_no_graph(self, model, domain_examples):
        db, pres = domain_examples
        for encoded in model.encode_batch(pres[:3], db.schema):
            assert not encoded.summary.requires_grad
            assert encoded.summary._parents == ()


class TestInferenceMode:
    def test_forward_matches_grad_mode(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(5, 7)), requires_grad=True)
        w = Tensor(rng.normal(size=(7, 3)), requires_grad=True)

        def forward():
            return ((a @ w).tanh() * 0.5 + 1.0).relu().sum(axis=0)

        with_grad = forward()
        with inference_mode():
            without_grad = forward()
        np.testing.assert_array_equal(with_grad.data, without_grad.data)
        assert with_grad.requires_grad
        assert not without_grad.requires_grad

    def test_no_backward_graph_allocated(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with inference_mode():
            out = (a @ a).relu()
            assert out._parents == ()
            assert out._backward is None
        assert is_grad_enabled()

    def test_nested_and_exception_safe(self):
        assert is_grad_enabled()
        try:
            with inference_mode():
                assert not is_grad_enabled()
                with inference_mode():
                    assert not is_grad_enabled()
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_constant_inputs_skip_graph_in_grad_mode(self):
        # The op-level fast path: when no input requires grad, ops must
        # not allocate closures even outside inference_mode.
        a = Tensor(np.ones((3, 3)))
        b = Tensor(np.ones((3, 3)))
        out = (a @ b + a).tanh()
        assert not out.requires_grad
        assert out._parents == ()
        assert out._backward is None

    def test_backward_through_inference_output_fails(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with inference_mode():
            out = (a * 2.0).sum()
        # The output is detached: backward is a no-op that reaches no
        # parameters (it has no graph to traverse).
        assert out._parents == ()
        assert a.grad is None


class TestSchemaFeatureCache:
    def test_cached_featurize_is_identical(self, model, domain_examples):
        db, pres = domain_examples
        cache = SchemaFeatureCache()
        for pre in pres[:4]:
            plain = featurize(pre, db.schema, model.vocab)
            cached = featurize(pre, db.schema, model.vocab, cache=cache)
            assert cached.piece_ids == plain.piece_ids
            assert cached.segment_ids == plain.segment_ids
            assert cached.hint_ids == plain.hint_ids
            assert cached.type_ids == plain.type_ids
            assert cached.column_hints == plain.column_hints
            assert cached.table_hints == plain.table_hints
        assert len(cache) == 1

    def test_cache_reuses_entry_per_schema(self, model, domain_examples):
        db, pres = domain_examples
        cache = SchemaFeatureCache()
        first = cache.get(db.schema, model.vocab)
        second = cache.get(db.schema, model.vocab)
        assert first is second

    def test_model_encode_populates_cache(self, corpus):
        vocab = build_vocabulary(
            [e.question for e in corpus.train],
            [corpus.schema(d) for d in corpus.train_domains],
            [str(v) for e in corpus.train for v in e.values],
            vocab_size=600,
        )
        model = ValueNetModel(vocab, TINY)
        domain = corpus.train_domains[0]
        db = corpus.database(domain)
        pre = Preprocessor(db).run(
            next(e.question for e in corpus.train if e.db_id == domain)
        )
        assert len(model.schema_cache) == 0
        model.encode(pre, db.schema)
        assert len(model.schema_cache) == 1
        model.encode(pre, db.schema)
        assert len(model.schema_cache) == 1
