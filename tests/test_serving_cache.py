"""Unit tests for the serving result cache (LRU + TTL + accounting)."""

from __future__ import annotations

from repro.serving import CacheKey, TranslationCache, normalize_question


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestNormalization:
    def test_case_whitespace_punctuation_collapse(self):
        assert normalize_question("  How many  Students?\n") == "how many students"
        assert normalize_question("how many students") == "how many students"

    def test_key_equivalence(self):
        a = CacheKey.make("pets", "How many students?", 1)
        b = CacheKey.make("pets", "how many   students", 1)
        assert a == b

    def test_key_discriminates_database_and_beam(self):
        base = CacheKey.make("pets", "q", 1)
        assert base != CacheKey.make("other", "q", 1)
        assert base != CacheKey.make("pets", "q", 4)


class TestLru:
    def test_get_put_roundtrip(self):
        cache = TranslationCache(capacity=4, ttl_s=None)
        key = CacheKey.make("db", "q", 1)
        assert cache.get(key) is None
        cache.put(key, {"sql": "SELECT 1"})
        assert cache.get(key) == {"sql": "SELECT 1"}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache = TranslationCache(capacity=2, ttl_s=None)
        k1, k2, k3 = (CacheKey.make("db", f"q{i}", 1) for i in range(3))
        cache.put(k1, 1)
        cache.put(k2, 2)
        assert cache.get(k1) == 1  # refresh k1; k2 becomes LRU
        cache.put(k3, 3)
        assert cache.get(k2) is None
        assert cache.get(k1) == 1
        assert cache.get(k3) == 3
        assert cache.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = TranslationCache(capacity=2, ttl_s=None)
        k1, k2 = CacheKey.make("db", "a", 1), CacheKey.make("db", "b", 1)
        cache.put(k1, 1)
        cache.put(k2, 2)
        cache.put(k1, 10)
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get(k1) == 10


class TestTtl:
    def test_entry_expires(self):
        clock = FakeClock()
        cache = TranslationCache(capacity=4, ttl_s=10.0, clock=clock)
        key = CacheKey.make("db", "q", 1)
        cache.put(key, "v")
        clock.advance(9.9)
        assert cache.get(key) == "v"
        clock.advance(0.2)
        assert cache.get(key) is None
        assert cache.expirations == 1
        assert cache.misses == 1

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = TranslationCache(capacity=4, ttl_s=10.0, clock=clock)
        key = CacheKey.make("db", "q", 1)
        cache.put(key, "v1")
        clock.advance(8.0)
        cache.put(key, "v2")
        clock.advance(8.0)
        assert cache.get(key) == "v2"

    def test_stats_shape(self):
        cache = TranslationCache(capacity=4, ttl_s=None)
        cache.get(CacheKey.make("db", "q", 1))
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.0
        assert stats["capacity"] == 4


class TestInvalidateDatabase:
    """Per-database invalidation (called on a KB index swap)."""

    def test_drops_only_the_named_database(self):
        cache = TranslationCache(capacity=8, ttl_s=None)
        pets = [CacheKey.make("pets", f"q{i}", 1) for i in range(3)]
        city = CacheKey.make("city", "q0", 1)
        for key in (*pets, city):
            cache.put(key, "v")
        assert cache.invalidate_database("pets") == 3
        assert all(cache.get(key) is None for key in pets)
        assert cache.get(city) == "v"  # other databases stay hot
        assert cache.stats()["invalidations"] == 3

    def test_unknown_database_is_a_noop(self):
        cache = TranslationCache(capacity=4, ttl_s=None)
        cache.put(CacheKey.make("pets", "q", 1), "v")
        assert cache.invalidate_database("nope") == 0
        assert len(cache) == 1
