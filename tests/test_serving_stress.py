"""Concurrency stress tests for the TranslationService (``-m stress``).

Many client threads submit against a small worker pool and bounded queue
while the fake pipeline misbehaves on schedule (exceptions, latency
spikes) and clients mix injected failures with near-zero deadlines.  The
invariants under test:

* no deadlock: every accepted request's ``done`` event fires;
* every future resolves exactly once (monkeypatched ``resolve`` counts);
* the books balance: accepted + rejected == submitted, and the service
  counters agree with the client-side tallies.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

import pytest

from repro.errors import ModelError
from repro.pipeline.timing import StageTimings
from repro.pipeline.valuenet import TranslationResult
from repro.serving import (
    DatabaseRuntime,
    QueueFullError,
    ServeRequest,
    TranslationService,
)

pytestmark = pytest.mark.stress


class ChaosPipeline:
    """Scripted misbehavior: every 3rd call raises, every 4th is slow."""

    def __init__(self):
        self.beam_size = 1
        self.calls = 0
        self._lock = threading.Lock()

    def _tick(self) -> int:
        with self._lock:
            self.calls += 1
            return self.calls

    def translate(self, question, *, execute=False, **kwargs):
        call = self._tick()
        if call % 4 == 0:
            time.sleep(0.002)
        if call % 3 == 0:
            raise ModelError("scripted chaos")
        result = TranslationResult(question=question, timings=StageTimings())
        result.sql = "SELECT count(*) FROM student"
        return result

    def translate_batch(self, questions, *, execute=False, encode_observer=None):
        # One shared failure schedule for both entry points.
        return [self._translate_safe(q) for q in questions]

    def _translate_safe(self, question):
        try:
            return self.translate(question)
        except ModelError as exc:
            result = TranslationResult(question=question, timings=StageTimings())
            result.error = f"decoding failed: {exc}"
            return result


def test_stress_every_future_resolves_exactly_once(pets_db, monkeypatch):
    resolve_counts: Counter = Counter()
    count_lock = threading.Lock()
    original_resolve = ServeRequest.resolve

    def counting_resolve(self, response):
        with count_lock:
            resolve_counts[id(self)] += 1
        original_resolve(self, response)

    monkeypatch.setattr(ServeRequest, "resolve", counting_resolve)

    pipeline = ChaosPipeline()
    runtime = DatabaseRuntime(pets_db, pipeline=pipeline)
    service = TranslationService(
        [runtime],
        workers=4,
        queue_size=16,
        max_batch=4,
        batch_window_ms=1.0,
        allow_failure_injection=True,
    ).start()

    threads = 12
    per_thread = 25
    accepted: list[ServeRequest] = []
    accepted_lock = threading.Lock()
    rejected = Counter()
    client_errors: list[BaseException] = []

    def client(worker: int) -> None:
        for i in range(per_thread):
            kwargs = {}
            if (worker + i) % 5 == 0:
                kwargs["inject_failure"] = True
            if (worker + i) % 7 == 0:
                kwargs["timeout_ms"] = 0.0  # already expired at pickup
            try:
                request = service.submit(
                    f"how many students {worker}-{i}", **kwargs
                )
            except QueueFullError:
                with accepted_lock:
                    rejected[worker] += 1
                continue
            except BaseException as exc:  # pragma: no cover - bug detector
                client_errors.append(exc)
                continue
            with accepted_lock:
                accepted.append(request)

    try:
        workers = [
            threading.Thread(target=client, args=(w,)) for w in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in workers), "client threads hung"
        assert not client_errors, client_errors

        # No deadlock: every accepted future fires.
        for request in accepted:
            assert request.done.wait(timeout=60.0), "request never resolved"
    finally:
        service.stop(timeout=60.0)

    submitted = threads * per_thread
    total_rejected = sum(rejected.values())
    assert len(accepted) + total_rejected == submitted

    # Exactly-once resolution for every accepted request; nothing else
    # was resolved (no phantom requests).
    assert len(resolve_counts) == len(accepted)
    for request in accepted:
        assert resolve_counts[id(request)] == 1, "future resolved twice"
    assert all(request.response is not None for request in accepted)

    # The service's books agree with the client's.
    snap = service.metrics.snapshot()
    assert snap["serving_requests_total"] == len(accepted)
    assert snap["serving_rejected_total"] == total_rejected
    responded = (
        snap["serving_responses_ok_total"] + snap["serving_responses_error_total"]
    )
    assert responded == len(accepted)
    assert responded + snap["serving_rejected_total"] == submitted

    # Degraded responses exist (chaos + injection + deadlines guarantee
    # them) and every degraded response carries a reason.
    degraded = [r.response for r in accepted if r.response.degraded]
    assert degraded
    assert all(r.degraded_reason for r in degraded)
    reasons = {r.degraded_reason for r in degraded}
    assert "injected" in reasons
    assert "deadline" in reasons


def test_stress_deadline_storm_all_resolve_degraded(pets_db):
    pipeline = ChaosPipeline()
    runtime = DatabaseRuntime(pets_db, pipeline=pipeline)
    with TranslationService(
        [runtime], workers=2, queue_size=64, max_batch=8
    ) as service:
        requests = [
            service.submit(f"count students {i}", timeout_ms=0.0)
            for i in range(40)
        ]
        for request in requests:
            assert request.done.wait(timeout=60.0)
            response = request.response
            assert response is not None
            assert response.degraded
            assert response.degraded_reason == "deadline"
            assert response.engine == "heuristic"
        # Deadline-skipped requests must never have touched the model.
        assert pipeline.calls == 0


def test_stress_mixed_databases_no_cross_talk(pets_db):
    # Two runtimes, one flaky and one healthy, hammered concurrently:
    # responses must route to the right database and the healthy runtime
    # must stay healthy.
    healthy = DatabaseRuntime(pets_db, database_id="healthy")
    flaky = DatabaseRuntime(
        pets_db, database_id="flaky", pipeline=ChaosPipeline()
    )
    with TranslationService(
        [healthy, flaky], workers=4, queue_size=128, max_batch=4
    ) as service:
        requests = []
        for i in range(60):
            database_id = "healthy" if i % 2 == 0 else "flaky"
            requests.append(
                (database_id, service.submit("how many students", database_id))
            )
        for database_id, request in requests:
            assert request.done.wait(timeout=60.0)
            response = request.response
            assert response is not None
            assert response.database_id == database_id
            if database_id == "healthy":
                # Heuristic-primary runtime: never degraded by chaos.
                assert not response.degraded
                assert response.ok, response.error
