"""Property-based round-trip tests for the SQL layer.

Two invariants are locked in:

* parse -> render -> parse is the identity on the AST, both over every
  gold query of a synthetic corpus and under adversarial string literals
  (embedded quotes, unbalanced parens, SQL keywords like ``order by``).
* the quote-aware :func:`gold_orders_rows` heuristic is driven by the
  *structure* of the query, never by literal contents.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.db.executor import gold_orders_rows
from repro.errors import TranslationError
from repro.policy import mask_strings
from repro.schema import Column, ColumnType, ForeignKey, Schema, SchemaGraph, Table
from repro.spider import CorpusConfig, generate_corpus
from repro.sql import (
    SqlRenderer,
    dialect_names,
    iter_literals,
    parse_sql,
    quote_string,
)

# Literal contents chosen to attack the tokenizer and the quote-aware
# scanners: quotes (plain and doubled), parens, brackets, keywords.
ADVERSARIAL_ALPHABET = (
    "abcORDER BY'\"`()[]_-.,0123456789"
)
literals = st.text(alphabet=ADVERSARIAL_ALPHABET, min_size=0, max_size=30)

# Hypothesis forbids function-scoped fixtures inside @given (they are not
# reset per generated input), so the read-only schema is built once here.
SCHEMA = Schema(
    "pets",
    [
        Table("student", (
            Column("stuid", "student", ColumnType.NUMBER, is_primary_key=True),
            Column("name", "student", ColumnType.TEXT),
            Column("age", "student", ColumnType.NUMBER),
        )),
        Table("has_pet", (
            Column("stuid", "has_pet", ColumnType.NUMBER),
            Column("petid", "has_pet", ColumnType.NUMBER),
        )),
    ],
    [ForeignKey("has_pet", "stuid", "student", "stuid")],
)
GRAPH = SchemaGraph(SCHEMA)


@pytest.fixture(scope="module")
def corpus():
    corpus = generate_corpus(CorpusConfig(train_per_domain=10, dev_per_domain=5))
    yield corpus
    corpus.close()


class TestCorpusRoundTrip:
    def test_parse_render_parse_is_identity(self, corpus):
        checked = 0
        for split in (corpus.train, corpus.dev):
            for example in split:
                schema = corpus.schema(example.db_id)
                parsed = parse_sql(example.gold_sql, schema)
                rendered = SqlRenderer(SchemaGraph(schema)).render(parsed)
                reparsed = parse_sql(rendered, schema)
                assert parsed == reparsed, (
                    f"round trip changed the AST of {example.gold_sql!r} "
                    f"(rendered: {rendered!r})"
                )
                checked += 1
        assert checked > 50  # the corpus really covered something

    def test_rendered_corpus_queries_execute(self, corpus):
        domain = corpus.train_domains[0]
        db = corpus.database(domain)
        graph = SchemaGraph(db.schema)
        for example in corpus.train:
            if example.db_id != domain:
                continue
            rendered = SqlRenderer(graph).render(
                parse_sql(example.gold_sql, db.schema)
            )
            db.execute(rendered)  # must not raise


class TestAdversarialLiterals:
    @given(value=literals)
    def test_literal_survives_parse(self, value):
        sql = f"SELECT name FROM student WHERE name = {quote_string(value)}"
        query = parse_sql(sql, SCHEMA)
        assert [lit.value for lit in iter_literals(query)] == [value]

    @given(value=literals)
    def test_parse_render_parse_with_literal(self, value):
        sql = f"SELECT name FROM student WHERE name = {quote_string(value)}"
        parsed = parse_sql(sql, SCHEMA)
        rendered = SqlRenderer(GRAPH).render(parsed)
        assert parse_sql(rendered, SCHEMA) == parsed

    @given(value=literals, age=st.integers(min_value=0, max_value=99))
    def test_two_literal_round_trip(self, value, age):
        sql = (
            "SELECT name FROM student WHERE name = "
            f"{quote_string(value)} AND age > {age}"
        )
        parsed = parse_sql(sql, SCHEMA)
        rendered = SqlRenderer(GRAPH).render(parsed)
        reparsed = parse_sql(rendered, SCHEMA)
        assert reparsed == parsed
        assert {lit.value for lit in iter_literals(reparsed)} == {value, age}


class TestDialectRoundTrip:
    """parse -> render(dialect) -> parse stays the identity for SQLite.

    Only the SQLite dialect round-trips through our parser (the parser
    reads the training dialect); Postgres/MySQL renderings are checked
    for containment safety instead (see TestInjectionLiterals).
    """

    def test_corpus_round_trips_through_sqlite_dialect(self, corpus):
        checked = 0
        for split in (corpus.train, corpus.dev):
            for example in split:
                schema = corpus.schema(example.db_id)
                parsed = parse_sql(example.gold_sql, schema)
                rendered = SqlRenderer(
                    SchemaGraph(schema), dialect="sqlite"
                ).render(parsed)
                assert parse_sql(rendered, schema) == parsed
                checked += 1
        assert checked > 50

    @given(value=literals)
    def test_literal_round_trips_through_sqlite_dialect(self, value):
        sql = (
            "SELECT name FROM student WHERE name = "
            f"{quote_string(value, 'sqlite')}"
        )
        parsed = parse_sql(sql, SCHEMA)
        rendered = SqlRenderer(GRAPH, dialect="sqlite").render(parsed)
        assert parse_sql(rendered, SCHEMA) == parsed


# Classic breakout payloads: quote closers, comment markers, statement
# separators, backslash tricks, and a NUL byte.
INJECTION_PAYLOADS = [
    "'",
    "''",
    "\\",
    "\\'",
    "';--",
    "x'; DROP TABLE student;--",
    'x"; PRAGMA writable_schema=1;--',
    "a\x00b",
]


class TestInjectionLiterals:
    @pytest.mark.parametrize("dialect", ["sqlite", "postgres", "mysql"])
    @pytest.mark.parametrize("payload", INJECTION_PAYLOADS)
    def test_payload_stays_contained(self, dialect, payload):
        if dialect == "postgres" and "\x00" in payload:
            # Postgres text cannot hold NUL; the dialect refuses loudly.
            with pytest.raises(TranslationError):
                quote_string(payload, dialect)
            return
        rendered = quote_string(payload, dialect)
        sql = f"SELECT name FROM student WHERE name = {rendered}"
        masked = mask_strings(sql)
        # Quote-aware masking must see ONE contained literal: no DROP /
        # PRAGMA / comment marker / statement separator escapes it.
        assert "DROP" not in masked
        assert "PRAGMA" not in masked
        assert ";" not in masked
        assert "--" not in masked

    @pytest.mark.parametrize("payload", INJECTION_PAYLOADS)
    def test_sqlite_payload_round_trips_exactly(self, payload):
        sql = (
            "SELECT name FROM student WHERE name = "
            f"{quote_string(payload, 'sqlite')}"
        )
        if "\x00" in payload:
            # Rendered as CAST(X'..' AS TEXT): safe, but a function call
            # is outside the parser's literal grammar — containment (see
            # above) is the property that matters here.
            assert "\x00" not in quote_string(payload, "sqlite")
            return
        query = parse_sql(sql, SCHEMA)
        assert [lit.value for lit in iter_literals(query)] == [payload]

    @given(value=literals)
    def test_every_dialect_contains_adversarial_literals(self, value):
        for dialect in dialect_names():
            sql = (
                "SELECT name FROM student WHERE name = "
                f"{quote_string(value, dialect)}"
            )
            masked = mask_strings(sql)
            assert ";" not in masked
            assert "ORDER BY" not in masked.replace(
                "SELECT name FROM student WHERE name = ", ""
            )


class TestGoldOrdersRows:
    @given(value=literals)
    def test_literal_contents_never_fake_an_order_by(self, value):
        sql = f"SELECT name FROM student WHERE name = {quote_string(value)}"
        assert not gold_orders_rows(sql)

    @given(value=literals)
    def test_top_level_order_by_detected_despite_literal(self, value):
        sql = (
            f"SELECT name FROM student WHERE name = {quote_string(value)} "
            "ORDER BY name"
        )
        assert gold_orders_rows(sql)

    @given(value=literals)
    def test_subquery_order_by_is_not_top_level(self, value):
        sql = (
            "SELECT name FROM student WHERE stuid IN "
            f"(SELECT stuid FROM has_pet WHERE note = {quote_string(value)} "
            "ORDER BY stuid)"
        )
        assert not gold_orders_rows(sql)

    def test_doubled_quote_escape_is_one_literal(self):
        # 'it''s (order by' is ONE literal: the doubled quote must not
        # close it early and expose the keyword / the paren.
        sql = "SELECT name FROM student WHERE name = 'it''s (order by'"
        assert not gold_orders_rows(sql)
        assert not gold_orders_rows(sql + " AND age > 1")
        assert gold_orders_rows(sql + " ORDER BY name")

    def test_identifier_quoting_styles_are_skipped(self):
        assert not gold_orders_rows(
            'SELECT "order by" FROM student'
        )
        assert not gold_orders_rows(
            "SELECT `order by` FROM student"
        )
        assert not gold_orders_rows(
            "SELECT [order by] FROM student"
        )
        assert gold_orders_rows(
            'SELECT "order by" FROM student ORDER BY name'
        )

    def test_order_by_requires_word_boundary(self):
        assert not gold_orders_rows("SELECT reorder_by FROM t")
        assert gold_orders_rows("SELECT a FROM t ORDER BY a")
