"""Differential tests locking the dialect-parameterized SQL renderer.

The refactor contract: ``render(ast, dialect=sqlite)`` is **byte-equal**
to the legacy single-dialect renderer.  Two locks enforce it:

* fifteen golden strings captured from the legacy renderer *before* the
  refactor (pets schema, one per construct: joins, GROUP BY/HAVING,
  subqueries, BETWEEN, LIKE, UNION, quote doubling, ...);
* a corpus-wide sweep: every gold query of the synthetic dev/train
  fixture renders identically through the default renderer and through
  an explicit SQLite dialect.

Postgres and MySQL get golden edge cases for what actually differs:
identifier quoting of reserved words, string escaping (backslashes,
doubled quotes, NUL), LIMIT, and LIKE case semantics.
"""

from __future__ import annotations

import pytest

from repro.errors import TranslationError
from repro.schema import SchemaGraph
from repro.spider import CorpusConfig, generate_corpus
from repro.sql import (
    SqlRenderer,
    dialect_names,
    get_dialect,
    parse_sql,
    quote_string,
    render_sql,
)

# (input, legacy output) pairs captured from the pre-refactor renderer.
LEGACY_GOLDENS = [
    ("SELECT name FROM student",
     "SELECT student.name FROM student"),
    ("SELECT DISTINCT pet_type FROM pet",
     "SELECT DISTINCT pet.pet_type FROM pet"),
    ("SELECT count(*) FROM student WHERE age > 20",
     "SELECT COUNT(*) FROM student WHERE student.age > 20"),
    ("SELECT name FROM student WHERE home_country = 'France' AND age < 25",
     "SELECT student.name FROM student WHERE student.home_country = 'France' "
     "AND student.age < 25"),
    ("SELECT T1.name FROM student AS T1 JOIN has_pet AS T2 "
     "ON T1.stuid = T2.stuid JOIN pet AS T3 ON T2.petid = T3.petid "
     "WHERE T3.pet_type = 'Dog'",
     "SELECT T1.name FROM student AS T1 JOIN has_pet AS T2 "
     "ON T1.stuid = T2.stuid JOIN pet AS T3 ON T2.petid = T3.petid "
     "WHERE T3.pet_type = 'Dog'"),
    ("SELECT home_country, count(*) FROM student GROUP BY home_country "
     "HAVING count(*) >= 2",
     "SELECT student.home_country, COUNT(*) FROM student "
     "GROUP BY student.home_country HAVING COUNT(*) >= 2"),
    ("SELECT name FROM student ORDER BY age DESC LIMIT 3",
     "SELECT student.name FROM student ORDER BY student.age DESC LIMIT 3"),
    ("SELECT name FROM student WHERE stuid IN (SELECT stuid FROM has_pet)",
     "SELECT student.name FROM student WHERE student.stuid IN "
     "(SELECT has_pet.stuid FROM has_pet)"),
    ("SELECT name FROM student WHERE age BETWEEN 18 AND 25",
     "SELECT student.name FROM student WHERE student.age BETWEEN 18 AND 25"),
    ("SELECT name FROM student WHERE name LIKE 'A%'",
     "SELECT student.name FROM student WHERE student.name LIKE 'A%'"),
    ("SELECT name FROM student WHERE home_country = 'It''aly'",
     "SELECT student.name FROM student WHERE student.home_country = "
     "'It''aly'"),
    ("SELECT name FROM student UNION SELECT pet_type FROM pet",
     "SELECT student.name FROM student UNION SELECT pet.pet_type FROM pet"),
    ("SELECT avg(weight) FROM pet WHERE pet_age != 3",
     "SELECT AVG(pet.weight) FROM pet WHERE pet.pet_age != 3"),
    ("SELECT name FROM student WHERE age > (SELECT avg(age) FROM student)",
     "SELECT student.name FROM student WHERE student.age > "
     "(SELECT AVG(student.age) FROM student)"),
    ("SELECT count(DISTINCT home_country) FROM student",
     "SELECT COUNT(DISTINCT student.home_country) FROM student"),
]


@pytest.fixture(scope="module")
def corpus():
    corpus = generate_corpus(CorpusConfig(train_per_domain=10, dev_per_domain=5))
    yield corpus
    corpus.close()


class TestSqliteByteEquality:
    @pytest.mark.parametrize("sql,golden", LEGACY_GOLDENS,
                             ids=range(len(LEGACY_GOLDENS)))
    def test_golden_matches_legacy_renderer(self, pets_schema, pets_graph,
                                            sql, golden):
        query = parse_sql(sql, pets_schema)
        assert render_sql(query, pets_graph, "sqlite") == golden

    @pytest.mark.parametrize("sql,golden", LEGACY_GOLDENS,
                             ids=range(len(LEGACY_GOLDENS)))
    def test_default_dialect_is_sqlite(self, pets_schema, pets_graph,
                                       sql, golden):
        query = parse_sql(sql, pets_schema)
        assert SqlRenderer(pets_graph).render(query) == golden

    def test_corpus_differential(self, corpus):
        """Default renderer == explicit sqlite dialect, corpus-wide."""
        checked = 0
        for split in (corpus.train, corpus.dev):
            for example in split:
                schema = corpus.schema(example.db_id)
                graph = SchemaGraph(schema)
                query = parse_sql(example.gold_sql, schema)
                default = SqlRenderer(graph).render(query)
                explicit = render_sql(query, graph, "sqlite")
                assert default == explicit, example.gold_sql
                checked += 1
        assert checked > 50

    def test_sqlite_identifiers_stay_bare(self):
        # Byte-equality with the legacy renderer depends on this: the
        # parser only produces word identifiers, so SQLite never quotes.
        sqlite = get_dialect("sqlite")
        assert sqlite.quote_identifier("order") == "order"
        assert sqlite.quote_identifier("name") == "name"


class TestDialectRegistry:
    def test_known_dialects(self):
        assert dialect_names() == ("mysql", "postgres", "sqlite")

    def test_none_means_sqlite(self):
        assert get_dialect(None).name == "sqlite"

    def test_dialect_instance_passes_through(self):
        d = get_dialect("postgres")
        assert get_dialect(d) is d

    def test_unknown_dialect_raises(self):
        with pytest.raises(TranslationError, match="unknown SQL dialect"):
            get_dialect("oracle")


class TestPostgres:
    def test_reserved_identifier_quoted(self):
        pg = get_dialect("postgres")
        assert pg.quote_identifier("order") == '"order"'
        assert pg.quote_identifier("home_country") == "home_country"

    def test_like_becomes_ilike(self, pets_schema, pets_graph):
        # SQLite LIKE is case-insensitive; Postgres LIKE is not.  ILIKE
        # preserves the semantics the model was trained against.
        query = parse_sql(
            "SELECT name FROM student WHERE name LIKE 'A%' LIMIT 5",
            pets_schema,
        )
        rendered = render_sql(query, pets_graph, "postgres")
        assert rendered == (
            "SELECT student.name FROM student "
            "WHERE student.name ILIKE 'A%' LIMIT 5"
        )

    def test_not_like_becomes_not_ilike(self, pets_schema, pets_graph):
        query = parse_sql(
            "SELECT name FROM student WHERE name NOT LIKE 'A%'",
            pets_schema,
        )
        assert "NOT ILIKE 'A%'" in render_sql(query, pets_graph, "postgres")

    def test_quote_doubling_no_backslash_escape(self):
        assert quote_string("It's", "postgres") == "'It''s'"
        assert quote_string("a\\b", "postgres") == "'a\\b'"

    def test_nul_byte_is_rejected(self):
        # Postgres text types cannot store NUL; refusing beats mangling.
        with pytest.raises(TranslationError):
            quote_string("a\x00b", "postgres")


class TestMysql:
    def test_reserved_identifier_backticked(self):
        my = get_dialect("mysql")
        assert my.quote_identifier("order") == "`order`"
        assert my.quote_identifier("home_country") == "home_country"

    def test_backslashes_are_doubled(self):
        # MySQL treats backslash as an escape inside strings, so raw
        # backslashes double BEFORE quote doubling.
        assert quote_string("a\\b'c", "mysql") == "'a\\\\b''c'"

    def test_nul_byte_escaped(self):
        assert quote_string("a\x00b", "mysql") == "'a\\0b'"

    def test_full_query_renders(self, pets_schema, pets_graph):
        query = parse_sql(
            "SELECT name FROM student WHERE home_country = 'It''aly' LIMIT 2",
            pets_schema,
        )
        rendered = render_sql(query, pets_graph, "mysql")
        assert rendered == (
            "SELECT student.name FROM student "
            "WHERE student.home_country = 'It''aly' LIMIT 2"
        )


class TestSqliteNulHandling:
    def test_nul_renders_as_blob_cast(self):
        rendered = quote_string("a\x00b", "sqlite")
        assert rendered == "CAST(X'610062' AS TEXT)"

    def test_plain_strings_stay_quoted(self):
        assert quote_string("plain", "sqlite") == "'plain'"


class TestCrossDialectSemantics:
    @pytest.mark.parametrize("dialect", ["sqlite", "postgres", "mysql"])
    def test_rendered_sql_single_line(self, pets_schema, pets_graph, dialect):
        for sql, _ in LEGACY_GOLDENS:
            query = parse_sql(sql, pets_schema)
            rendered = render_sql(query, pets_graph, dialect)
            assert "\n" not in rendered
            assert rendered.startswith("SELECT ")

    def test_boolean_and_null_forms(self):
        for name in dialect_names():
            d = get_dialect(name)
            assert d.render_boolean(True) == "TRUE"
            assert d.render_boolean(False) == "FALSE"
            assert d.render_null() == "NULL"

    def test_limit_form_is_shared(self):
        for name in dialect_names():
            assert get_dialect(name).render_limit(7) == "LIMIT 7"
