"""Tests for the result-table rendering."""

from __future__ import annotations

import pytest

from repro.evaluation import ExperimentReport, ResultTable


class TestResultTable:
    def test_add_and_render_text(self):
        table = ResultTable("Numbers", ("name", "value"))
        table.add("a", 1)
        table.add("bbbb", 22.5)
        text = table.render_text()
        assert "Numbers" in text
        assert "bbbb" in text
        lines = text.splitlines()
        assert len(lines) == 1 + 2 + 2  # title + header+rule + two rows

    def test_wrong_arity_raises(self):
        table = ResultTable("x", ("a", "b"))
        with pytest.raises(ValueError):
            table.add(1)

    def test_markdown_shape(self):
        table = ResultTable("T", ("a", "b"))
        table.add("x", "y")
        table.note("a note")
        markdown = table.render_markdown()
        assert markdown.startswith("### T")
        assert "| a | b |" in markdown
        assert "| x | y |" in markdown
        assert "*a note*" in markdown

    def test_alignment(self):
        table = ResultTable("T", ("col", "v"))
        table.add("long-name-here", "1")
        table.add("s", "2")
        lines = table.render_text().splitlines()
        # all data lines have equal length (aligned columns)
        assert len(lines[3].rstrip()) <= len(lines[2])


class TestExperimentReport:
    def test_collects_tables_in_order(self):
        report = ExperimentReport("Title", preamble="intro")
        first = report.table("One", ("a",))
        first.add("1")
        second = report.table("Two", ("b",))
        second.add("2")
        markdown = report.render_markdown()
        assert markdown.index("### One") < markdown.index("### Two")
        assert markdown.startswith("# Title")
        assert "intro" in markdown

    def test_text_render(self):
        report = ExperimentReport("R")
        report.table("T", ("h",)).add("v")
        text = report.render_text()
        assert "=== T ===" in text
