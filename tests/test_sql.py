"""Unit tests for repro.sql: tokenizer, parser, renderer, AST."""

from __future__ import annotations

import pytest

from repro.errors import SqlParseError
from repro.sql import (
    AggregateFunction,
    BooleanExpr,
    ColumnRef,
    Condition,
    Literal,
    Operator,
    Query,
    SelectItem,
    SelectQuery,
    SqlRenderer,
    TokenType,
    iter_conditions,
    iter_literals,
    parse_sql,
    quote_string,
    render_literal,
    tokenize_sql,
)


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_sql("SELECT name FROM t")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")

    def test_string_literal_quotes_stripped(self):
        [token, _end] = tokenize_sql("'France'")
        assert token.type is TokenType.STRING
        assert token.value == "France"

    def test_escaped_quote(self):
        [token, _end] = tokenize_sql("'O''Hare'")
        assert token.value == "O'Hare"

    def test_operators(self):
        values = [t.value for t in tokenize_sql("<= >= != <> = < >")[:-1]]
        assert values == ["<=", ">=", "!=", "!=", "=", "<", ">"]

    def test_numbers(self):
        tokens = tokenize_sql("12 3.5")
        assert tokens[0].value == "12" and tokens[1].value == "3.5"

    def test_unknown_char_raises(self):
        with pytest.raises(SqlParseError):
            tokenize_sql("SELECT @")

    def test_end_token(self):
        assert tokenize_sql("x")[-1].type is TokenType.END


class TestParser:
    def test_simple_select(self, pets_schema):
        query = parse_sql("SELECT name FROM student", pets_schema)
        assert query.body.tables == ["student"]
        assert query.body.select[0].column == ColumnRef("student", "name")

    def test_alias_resolution(self, pets_schema):
        query = parse_sql(
            "SELECT T1.name FROM student AS T1 JOIN has_pet AS T2 "
            "ON T1.stuid = T2.stuid",
            pets_schema,
        )
        assert query.body.select[0].column.table == "student"
        assert query.body.tables == ["student", "has_pet"]

    def test_unqualified_column_binding(self, pets_schema):
        query = parse_sql(
            "SELECT weight FROM student JOIN has_pet ON student.stuid = has_pet.stuid "
            "JOIN pet ON has_pet.petid = pet.petid",
            pets_schema,
        )
        assert query.body.select[0].column == ColumnRef("pet", "weight")

    def test_where_conditions(self, pets_schema):
        query = parse_sql(
            "SELECT name FROM student WHERE home_country = 'France' AND age > 20",
            pets_schema,
        )
        conditions = list(iter_conditions(query.body.where))
        assert len(conditions) == 2
        assert conditions[0].operator is Operator.EQ
        assert conditions[0].rhs == Literal("France")
        assert conditions[1].rhs == Literal(20)

    def test_mixed_and_or_precedence(self, pets_schema):
        query = parse_sql(
            "SELECT name FROM student WHERE age > 20 AND sex = 'F' OR age < 18",
            pets_schema,
        )
        where = query.body.where
        assert isinstance(where, BooleanExpr) and where.connector == "or"
        left = where.operands[0]
        assert isinstance(left, BooleanExpr) and left.connector == "and"

    def test_between(self, pets_schema):
        query = parse_sql(
            "SELECT name FROM student WHERE age BETWEEN 18 AND 25", pets_schema
        )
        condition = query.body.where
        assert condition.operator is Operator.BETWEEN
        assert condition.rhs == (Literal(18), Literal(25))

    def test_not_variants(self, pets_schema):
        query = parse_sql(
            "SELECT name FROM student WHERE name NOT LIKE '%a%'", pets_schema
        )
        assert query.body.where.operator is Operator.NOT_LIKE

    def test_in_subquery(self, pets_schema):
        query = parse_sql(
            "SELECT name FROM student WHERE stuid IN (SELECT stuid FROM has_pet)",
            pets_schema,
        )
        condition = query.body.where
        assert condition.operator is Operator.IN
        assert isinstance(condition.rhs, Query)
        assert condition.rhs.body.tables == ["has_pet"]

    def test_group_having_order_limit(self, pets_schema):
        query = parse_sql(
            "SELECT home_country, count(*) FROM student GROUP BY home_country "
            "HAVING count(*) >= 2 ORDER BY count(*) DESC LIMIT 3",
            pets_schema,
        )
        body = query.body
        assert body.group_by == [ColumnRef("student", "home_country")]
        assert body.having.aggregate is AggregateFunction.COUNT
        assert body.order_by.items[0].aggregate is AggregateFunction.COUNT
        assert body.limit == 3

    def test_distinct_and_agg_distinct(self, pets_schema):
        query = parse_sql(
            "SELECT DISTINCT home_country FROM student", pets_schema
        )
        assert query.body.distinct
        query2 = parse_sql(
            "SELECT count(DISTINCT home_country) FROM student", pets_schema
        )
        assert query2.body.select[0].distinct

    def test_compound(self, pets_schema):
        query = parse_sql(
            "SELECT name FROM student UNION SELECT name FROM student", pets_schema
        )
        assert query.is_compound()
        assert len(query.all_select_queries()) == 2

    def test_qualified_star(self, pets_schema):
        query = parse_sql(
            "SELECT count(T2.*) FROM student AS T1 JOIN has_pet AS T2 "
            "ON T1.stuid = T2.stuid",
            pets_schema,
        )
        item = query.body.select[0]
        assert item.column == ColumnRef("has_pet", "*")
        assert item.aggregate is AggregateFunction.COUNT

    def test_unknown_table_raises(self, pets_schema):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT x FROM nope", pets_schema)

    def test_unknown_column_raises(self, pets_schema):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT nope FROM student", pets_schema)

    def test_trailing_tokens_raise(self, pets_schema):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT name FROM student extra", pets_schema)

    def test_unknown_alias_raises(self, pets_schema):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT T9.name FROM student AS T1", pets_schema)


class TestRenderer:
    def test_single_table_no_alias(self, pets_schema, pets_graph):
        query = parse_sql("SELECT name FROM student", pets_schema)
        sql = SqlRenderer(pets_graph).render(query)
        assert sql == "SELECT student.name FROM student"

    def test_join_gets_on_clause(self, pets_schema, pets_graph):
        query = Query(
            body=SelectQuery(
                select=[SelectItem(ColumnRef("student", "name"))],
                tables=["student", "pet"],
            )
        )
        sql = SqlRenderer(pets_graph).render(query)
        assert "JOIN has_pet" in sql
        assert sql.count(" ON ") == 2  # never a bare cross join

    def test_rendered_sql_executes(self, pets_db, pets_graph):
        query = Query(
            body=SelectQuery(
                select=[SelectItem(ColumnRef(None, "*"), AggregateFunction.COUNT)],
                tables=["student", "pet"],
                where=Condition(
                    ColumnRef("student", "home_country"), Operator.EQ, Literal("France")
                ),
            )
        )
        sql = SqlRenderer(pets_graph).render(query)
        rows = pets_db.execute(sql)
        assert rows == [(1,)]  # only Ann (France) owns a pet

    def test_count_qualified_star_renders_bare(self, pets_schema, pets_graph):
        query = Query(
            body=SelectQuery(
                select=[SelectItem(ColumnRef("has_pet", "*"), AggregateFunction.COUNT)],
                tables=["has_pet", "student"],
            )
        )
        sql = SqlRenderer(pets_graph).render(query)
        assert "COUNT(*)" in sql
        assert ".* " not in sql

    def test_between_rendering(self, pets_schema, pets_graph):
        query = parse_sql(
            "SELECT name FROM student WHERE age BETWEEN 18 AND 25", pets_schema
        )
        sql = SqlRenderer(pets_graph).render(query)
        assert "BETWEEN 18 AND 25" in sql

    def test_parse_render_roundtrip_executes(self, pets_db, pets_graph):
        original = (
            "SELECT count(*) FROM student AS T1 JOIN has_pet AS T2 ON "
            "T1.stuid = T2.stuid WHERE T1.home_country = 'France' AND T1.age > 20"
        )
        query = parse_sql(original, pets_db.schema)
        sql = SqlRenderer(pets_graph).render(query)
        assert pets_db.execute(sql) == pets_db.execute(original)

    def test_quote_string_escapes(self):
        assert quote_string("O'Hare") == "'O''Hare'"

    def test_render_literal_int_float(self):
        assert render_literal(Literal(3)) == "3"
        assert render_literal(Literal(3.0)) == "3"
        assert render_literal(Literal(3.5)) == "3.5"
        assert render_literal(Literal("x")) == "'x'"


class TestAstHelpers:
    def test_iter_literals_includes_limit_and_subqueries(self, pets_schema):
        query = parse_sql(
            "SELECT name FROM student WHERE stuid IN "
            "(SELECT stuid FROM has_pet) AND age > 20 ORDER BY age DESC LIMIT 3",
            pets_schema,
        )
        values = [literal.value for literal in iter_literals(query)]
        assert 20 in values and 3 in values

    def test_operator_negation(self):
        assert Operator.EQ.negated() is Operator.NE
        assert Operator.LIKE.negated() is Operator.NOT_LIKE
        with pytest.raises(ValueError):
            Operator.BETWEEN.negated()

    def test_boolean_expr_validation(self):
        condition = Condition(ColumnRef("t", "c"), Operator.EQ, Literal(1))
        with pytest.raises(ValueError):
            BooleanExpr("xor", (condition, condition))
        with pytest.raises(ValueError):
            BooleanExpr("and", (condition,))

    def test_query_compound_validation(self):
        body = SelectQuery(select=[SelectItem(ColumnRef("t", "c"))], tables=["t"])
        with pytest.raises(ValueError):
            Query(body=body, set_operator=None, compound=Query(body=body))
