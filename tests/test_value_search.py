"""Sub-linear value search: differential properties, persistence, registry.

The q-gram count filter and the banded distance kernel are *filters* in
front of the reference Damerau-Levenshtein scan — correctness means they
never drop a true match.  Every test here checks against the full DP or
the naive all-pairs scan, so a regression in the fast path cannot hide.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.index import (
    BlockedValuePool,
    IndexRegistry,
    InvertedIndex,
    SimilaritySearcher,
    ValueLocation,
    database_fingerprint,
    get_default_registry,
    load_bundle,
    save_bundle,
    set_default_registry,
)
from repro.index.persistence import FORMAT_VERSION
from repro.preprocessing import Preprocessor
from repro.serving import DatabaseRuntime, TranslationService
from repro.spider import CorpusConfig, generate_corpus
from repro.text.distance import damerau_levenshtein, damerau_levenshtein_banded


def naive_search(index: InvertedIndex, query: str, max_distance: int):
    """Reference: full DP against every indexed text value, no blocking."""
    lowered = query.lower()
    matches = []
    for value, location in index.iter_text_values():
        distance = damerau_levenshtein(lowered, value.lower())
        if distance <= max_distance:
            matches.append((value, location, distance))
    matches.sort(key=lambda m: (m[2], m[0].lower(), str(m[1])))
    return matches


def typo_queries(values: list[str]) -> list[str]:
    """Deterministic near-miss queries derived from real values."""
    queries = []
    for value in values:
        v = value.lower()
        if len(v) >= 2:
            queries.append(v[1:] + v[0])          # rotate
            queries.append(v[:-1])                # deletion
            queries.append(v[0] + "x" + v[1:])    # insertion
            mid = len(v) // 2
            queries.append(v[:mid] + v[mid + 1:mid] + v[mid:])  # no-op guard
            queries.append(v[:mid] + "z" + v[mid + 1:])         # substitution
        queries.append(v)
    return queries


# --------------------------------------------------------------- kernels


class TestBandedDistance:
    @given(
        st.text(alphabet="abcde", max_size=12),
        st.text(alphabet="abcde", max_size=12),
        st.integers(0, 4),
    )
    @settings(max_examples=300)
    def test_matches_full_dp(self, a, b, k):
        full = damerau_levenshtein(a, b)
        expected = full if full <= k else k + 1
        assert damerau_levenshtein_banded(a, b, max_distance=k) == expected

    def test_transposition(self):
        assert damerau_levenshtein_banded("jfk", "jkf", max_distance=2) == 1

    def test_band_prunes_far_pairs(self):
        assert damerau_levenshtein_banded("abcdefgh", "zyxwvuts", max_distance=2) == 3

    def test_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            damerau_levenshtein_banded("a", "b", max_distance=-1)


class TestQGramPool:
    @given(
        st.lists(st.text(alphabet="abcdef", max_size=9), max_size=30),
        st.text(alphabet="abcdef", max_size=9),
        st.integers(0, 4),
    )
    @settings(max_examples=200)
    def test_count_filter_never_drops_a_true_match(self, values, query, k):
        pool = BlockedValuePool(values)
        candidates = pool.candidates(query, max_distance=k)
        for value in values:
            if damerau_levenshtein(query.lower(), value.lower()) <= k:
                assert value in candidates

    def test_filter_actually_prunes(self):
        # Same-length values far in content must be dropped by the count
        # filter even though the length band admits all of them.
        values = ["abcdefgh", "ijklmnop", "qrstuvwx", "abcdefgx"]
        pool = BlockedValuePool(values)
        candidates = pool.candidates("abcdefgh", max_distance=1)
        assert "abcdefgh" in candidates and "abcdefgx" in candidates
        assert "ijklmnop" not in candidates and "qrstuvwx" not in candidates

    def test_short_strings_fall_back_to_length_band(self):
        pool = BlockedValuePool(["ab", "xy", "a", "abcdefgh"])
        candidates = pool.candidates("ab", max_distance=2)
        # max(|s|,|t|) <= 1 + q*k: zero shared grams required
        assert "xy" in candidates and "a" in candidates
        assert "abcdefgh" not in candidates  # outside the length band

    def test_large_bounds_drop_the_gram_filter(self):
        # k > q: the count threshold is no longer a safe necessary
        # condition.  True matches anywhere in the length band must come
        # back; the bag-of-characters bound may still prune short values.
        values = ["abcdefgh", "abcdefghijkl", "ijklmnop", "abcdefghijklmnop"]
        pool = BlockedValuePool(values)
        candidates = pool.candidates("abcdefgh", max_distance=4)
        assert "abcdefgh" in candidates
        assert "abcdefghijkl" in candidates  # distance 4: four insertions
        # distance 8, zero shared characters: bag bound prunes it
        assert "ijklmnop" not in candidates
        # outside the length band entirely
        assert "abcdefghijklmnop" not in candidates

    def test_state_round_trip(self):
        pool = BlockedValuePool(["France", "Francia", "Greece", "a"])
        restored = BlockedValuePool.from_state(
            pickle.loads(pickle.dumps(pool.state_dict()))
        )
        for k in (0, 1, 2):
            assert restored.candidates("france", max_distance=k) == pool.candidates(
                "france", max_distance=k
            )


# -------------------------------------------------- differential searcher


@pytest.fixture(scope="module")
def spider_corpus():
    return generate_corpus(CorpusConfig(train_per_domain=4, dev_per_domain=3))


def assert_search_matches_naive(database, *, max_distance):
    index = InvertedIndex.build(database)
    searcher = SimilaritySearcher(index)
    values = [value for value, _ in index.iter_text_values()]
    sample = values[:: max(1, len(values) // 25)]  # ~25 spread-out values
    for query in typo_queries(sample):
        expected = naive_search(index, query, max_distance)
        got = searcher.search(
            query, max_distance=max_distance, max_results=len(values) + len(expected) + 1
        )
        assert [(m.value, m.location, m.distance) for m in got] == expected, (
            f"mismatch for query {query!r} at k={max_distance}"
        )


class TestDifferentialAgainstNaive:
    def test_pets_database(self, pets_db):
        for k in (0, 1, 2):
            assert_search_matches_naive(pets_db, max_distance=k)

    def test_one_spider_database(self, spider_corpus):
        domain = sorted(spider_corpus.domains)[0]
        assert_search_matches_naive(
            spider_corpus.database(domain), max_distance=2
        )

    @pytest.mark.slow
    def test_all_spider_databases_exhaustive(self, spider_corpus):
        """Acceptance sweep: identical candidate sets on every synthetic
        Spider database for every k <= 2."""
        for domain in sorted(spider_corpus.domains):
            database = spider_corpus.database(domain)
            for k in (0, 1, 2):
                assert_search_matches_naive(database, max_distance=k)

    def test_cross_column_fanout(self):
        """A string in many columns is returned once per location."""
        index = InvertedIndex()
        locations = [ValueLocation(f"t{i}", "c") for i in range(5)]
        for location in locations:
            index.add_value("Paris", location)
        searcher = SimilaritySearcher(index)
        matches = searcher.search("paris", max_distance=1, max_results=50)
        assert sorted((m.location for m in matches), key=str) == sorted(
            locations, key=str
        )
        assert all(m.distance == 0 for m in matches)


# ----------------------------------------------------- searcher behavior


class TestSearcherCacheAndStaleness:
    def test_memo_hits_and_misses_counted(self, pets_db):
        searcher = SimilaritySearcher(InvertedIndex.build(pets_db))
        searcher.search("frnace")
        searcher.search("frnace")
        searcher.search("frnace", max_distance=1)  # different bound: miss
        info = searcher.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 2

    def test_memoized_results_identical(self, pets_db):
        searcher = SimilaritySearcher(InvertedIndex.build(pets_db))
        first = searcher.search("frnace")
        second = searcher.search("frnace")
        assert first == second

    def test_memo_respects_max_results(self, pets_db):
        searcher = SimilaritySearcher(InvertedIndex.build(pets_db))
        full = searcher.search("fran", max_distance=3, max_results=50)
        assert len(searcher.search("fran", max_distance=3, max_results=1)) == 1
        assert searcher.search("fran", max_distance=3, max_results=50) == full

    def test_values_added_after_construction_are_found(self, pets_db):
        """Regression: the searcher must see index mutations (it used to
        snapshot per-column pools at construction and go stale)."""
        index = InvertedIndex.build(pets_db)
        searcher = SimilaritySearcher(index)
        assert searcher.best_match("Xanadu", max_distance=1) is None
        index.add_value("Xanadu", ValueLocation("student", "home_country"))
        match = searcher.best_match("Xanadu", max_distance=1)
        assert match is not None and match.value == "Xanadu"
        assert searcher.stats.pool_rebuilds == 1

    def test_mutation_invalidates_memo(self, pets_db):
        index = InvertedIndex.build(pets_db)
        searcher = SimilaritySearcher(index)
        assert searcher.search("Xanadu", max_distance=0) == []
        index.add_value("xanadu", ValueLocation("student", "home_country"))
        assert searcher.search("Xanadu", max_distance=0) != []

    def test_dp_call_accounting(self, pets_db):
        searcher = SimilaritySearcher(InvertedIndex.build(pets_db))
        searcher.search("frnace")
        assert searcher.stats.dp_calls >= 1
        calls = searcher.stats.dp_calls
        searcher.search("frnace")  # memo hit: no new DP work
        assert searcher.stats.dp_calls == calls

    def test_observer_notified(self, pets_db):
        searcher = SimilaritySearcher(InvertedIndex.build(pets_db))
        events = []
        searcher.add_observer(lambda seconds, hit: events.append((seconds, hit)))
        searcher.search("frnace")
        searcher.search("frnace")
        assert [hit for _, hit in events] == [False, True]
        searcher.remove_observer(searcher._observers[0])
        searcher.search("italy")
        assert len(events) == 2


class TestAddValueFix:
    def test_add_value_dedupes_column_pool(self):
        index = InvertedIndex()
        location = ValueLocation("t", "c")
        index.add_value("Paris", location)
        index.add_value("paris", location)  # same normalized key
        index.add_value(" Paris ", location)
        assert index.values_in_column(location) == ["Paris"]
        assert index.lookup("PARIS") == {location}

    def test_add_value_respects_cap(self):
        index = InvertedIndex(max_values_per_column=3)
        location = ValueLocation("t", "c")
        for i in range(10):
            index.add_value(f"value{i}", location)
        assert len(index.values_in_column(location)) == 3
        # exact lookup still knows every value (validation path)
        assert index.lookup("value9") == {location}

    def test_add_value_ignores_empty(self):
        index = InvertedIndex()
        index.add_value("   ", ValueLocation("t", "c"))
        assert index.num_distinct_values == 0

    def test_build_then_add_consistent_with_index_column(self, pets_db):
        index = InvertedIndex.build(pets_db)
        location = ValueLocation("pet", "pet_type")
        before = index.values_in_column(location)
        index.add_value("Dog", location)  # duplicate of an indexed value
        assert index.values_in_column(location) == before


# ------------------------------------------------------------ persistence


class TestPersistence:
    def test_round_trip_equality(self, pets_db, tmp_path):
        index = InvertedIndex.build(pets_db)
        searcher = SimilaritySearcher(index)
        path = tmp_path / "pets.index"
        save_bundle(path, fingerprint="fp", index=index, searcher=searcher)
        loaded = load_bundle(path, fingerprint="fp")
        assert loaded is not None
        loaded_index, loaded_searcher = loaded
        assert loaded_index.lookup("France") == index.lookup("France")
        assert loaded_index.num_distinct_values == index.num_distinct_values
        assert sorted(map(str, loaded_index.text_locations())) == sorted(
            map(str, index.text_locations())
        )
        for query in ("frnace", "dog", "itly", "ann miller"):
            assert loaded_searcher.search(query) == searcher.search(query)

    def test_fingerprint_mismatch_returns_none(self, pets_db, tmp_path):
        index = InvertedIndex.build(pets_db)
        path = tmp_path / "pets.index"
        save_bundle(
            path, fingerprint="fp", index=index, searcher=SimilaritySearcher(index)
        )
        assert load_bundle(path, fingerprint="other") is None

    def test_format_version_mismatch_returns_none(self, pets_db, tmp_path):
        index = InvertedIndex.build(pets_db)
        path = tmp_path / "pets.index"
        save_bundle(
            path, fingerprint="fp", index=index, searcher=SimilaritySearcher(index)
        )
        payload = pickle.loads(path.read_bytes())
        assert payload["format_version"] == FORMAT_VERSION
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert load_bundle(path, fingerprint="fp") is None

    def test_corrupt_file_returns_none(self, tmp_path):
        path = tmp_path / "junk.index"
        path.write_bytes(b"not a pickle")
        assert load_bundle(path, fingerprint="fp") is None

    def test_missing_file_returns_none(self, tmp_path):
        assert load_bundle(tmp_path / "absent.index", fingerprint="fp") is None

    def test_loaded_searcher_tracks_new_mutations(self, pets_db, tmp_path):
        index = InvertedIndex.build(pets_db)
        path = tmp_path / "pets.index"
        save_bundle(
            path, fingerprint="fp", index=index, searcher=SimilaritySearcher(index)
        )
        loaded_index, loaded_searcher = load_bundle(path, fingerprint="fp")
        loaded_index.add_value("Xanadu", ValueLocation("student", "home_country"))
        assert loaded_searcher.best_match("Xanadu") is not None


# --------------------------------------------------------------- registry


@pytest.fixture
def fresh_registry():
    registry = IndexRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)


class TestRegistry:
    def test_preprocessors_share_one_index(self, pets_db, fresh_registry):
        first = Preprocessor(pets_db)
        second = Preprocessor(pets_db)
        assert first.index is second.index
        assert first.searcher is second.searcher
        assert fresh_registry.build_count == 1
        assert fresh_registry.hit_count >= 1

    def test_fingerprint_change_triggers_rebuild(self, pets_db, fresh_registry):
        first = Preprocessor(pets_db)
        pets_db.insert_rows("student", [(99, "Zed Quirk", 30, "Xanadu", "M")])
        second = Preprocessor(pets_db)
        assert second.index is not first.index
        assert fresh_registry.build_count == 2
        assert second.index.contains("Xanadu")

    def test_fingerprint_is_content_sensitive(self, pets_db):
        before = database_fingerprint(pets_db)
        pets_db.insert_rows("student", [(98, "New Person", 20, "France", "M")])
        assert database_fingerprint(pets_db) != before

    def test_serving_builds_exactly_one_index_per_database(
        self, pets_db, fresh_registry
    ):
        """Acceptance: the runtime, its pipeline, and its fallback share
        one InvertedIndex; a second runtime over the same content shares
        it too."""
        runtime = DatabaseRuntime(pets_db, database_id="pets")
        assert fresh_registry.build_count == 1
        assert runtime.fallback.preprocessor is runtime.preprocessor
        service = TranslationService([runtime], workers=1)
        with service:
            response = service.translate("How many students are from France?")
        assert response.sql is not None
        assert fresh_registry.build_count == 1

        second = DatabaseRuntime(pets_db, database_id="pets_replica")
        assert second.preprocessor.index is runtime.preprocessor.index
        assert fresh_registry.build_count == 1

    def test_registry_disk_cache_roundtrip(self, pets_db, tmp_path):
        cold = IndexRegistry(cache_dir=tmp_path)
        entry = cold.get(pets_db)
        assert entry.source == "built"
        assert cold.build_count == 1

        warm = IndexRegistry(cache_dir=tmp_path)
        warm_entry = warm.get(pets_db)
        assert warm_entry.source == "disk"
        assert warm.build_count == 0 and warm.load_count == 1
        assert warm_entry.index.lookup("France") == entry.index.lookup("France")
        assert warm_entry.searcher.search("frnace") == entry.searcher.search("frnace")

    def test_stale_disk_cache_rebuilds(self, pets_db, tmp_path):
        cold = IndexRegistry(cache_dir=tmp_path)
        cold.get(pets_db)
        pets_db.insert_rows("student", [(97, "Ada Byron", 36, "England", "F")])
        warm = IndexRegistry(cache_dir=tmp_path)
        entry = warm.get(pets_db)
        assert entry.source == "built"  # fingerprint mismatch on disk
        assert entry.index.contains("England")

    def test_invalidate_forces_rebuild(self, pets_db, fresh_registry):
        Preprocessor(pets_db)
        fresh_registry.invalidate("pets")
        Preprocessor(pets_db)
        assert fresh_registry.build_count == 2

    def test_warm_parallel_builds(self, spider_corpus):
        registry = IndexRegistry()
        databases = {
            domain: spider_corpus.database(domain)
            for domain in sorted(spider_corpus.domains)[:4]
        }
        entries = registry.warm(databases, max_workers=4)
        assert len(entries) == 4
        assert registry.build_count == 4
        # warm again: every entry is shared, nothing rebuilds
        registry.warm(databases, max_workers=4)
        assert registry.build_count == 4

    def test_default_registry_swap_restores(self):
        original = get_default_registry()
        replacement = IndexRegistry()
        assert set_default_registry(replacement) is original
        assert get_default_registry() is replacement
        set_default_registry(original)
        assert get_default_registry() is original


# ------------------------------------------------------- serving metrics


class TestServingValueSearchMetrics:
    def test_histogram_and_cache_counters_recorded(self, pets_db, fresh_registry):
        runtime = DatabaseRuntime(pets_db, database_id="pets")
        service = TranslationService([runtime], workers=1)
        with service:
            service.translate("How many students are from France?")
            service.translate("students from Frnace")
        snapshot = service.metrics.snapshot()
        assert snapshot["preprocess_value_search_seconds"]["count"] > 0
        traffic = (
            snapshot["value_search_cache_hits_total"]
            + snapshot["value_search_cache_misses_total"]
        )
        assert traffic == snapshot["preprocess_value_search_seconds"]["count"]

    def test_observers_detached_on_stop(self, pets_db, fresh_registry):
        runtime = DatabaseRuntime(pets_db, database_id="pets")
        service = TranslationService([runtime], workers=1)
        with service:
            service.translate("students from France")
        count_after_stop = service.metrics.snapshot()[
            "preprocess_value_search_seconds"
        ]["count"]
        runtime.searcher.search("direct search after stop")
        assert (
            service.metrics.snapshot()["preprocess_value_search_seconds"]["count"]
            == count_after_stop
        )
