"""Unit tests for the serving metrics registry and histogram math."""

from __future__ import annotations

import threading

import pytest

from repro.serving import MetricsRegistry
from repro.serving.metrics import Counter, Gauge, Histogram


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc(1)
        assert gauge.value == pytest.approx(7)

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_count_sum_max(self):
        hist = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == pytest.approx(5.555)
        snap = hist.snapshot()
        assert snap["max"] == pytest.approx(5.0)

    def test_bucket_placement_le_semantics(self):
        hist = Histogram("h", buckets=(0.01, 0.1))
        hist.observe(0.01)  # == bound -> that bucket (Prometheus `le`)
        hist.observe(0.011)
        snap = hist.snapshot()
        assert snap["buckets"][0] == {"le": 0.01, "count": 1}
        assert snap["buckets"][1] == {"le": 0.1, "count": 2}

    def test_quantiles_on_uniform_data(self):
        hist = Histogram("h", buckets=(0.025, 0.05, 0.075, 0.1, 0.25))
        # 100 observations spread uniformly over (0, 0.1].
        for i in range(1, 101):
            hist.observe(i / 1000.0)
        assert hist.quantile(0.50) == pytest.approx(0.05, abs=0.005)
        assert hist.quantile(0.95) == pytest.approx(0.095, abs=0.01)
        assert hist.quantile(1.00) == pytest.approx(0.1, abs=0.005)

    def test_quantile_empty_and_overflow(self):
        hist = Histogram("h", buckets=(0.01,))
        assert hist.quantile(0.5) == 0.0
        hist.observe(3.0)  # lands in +Inf bucket
        assert hist.quantile(0.99) == pytest.approx(3.0)

    def test_quantile_identical_observations_capped_at_max(self):
        hist = Histogram("h", buckets=(0.0025, 0.005))
        for _ in range(10):
            hist.observe(0.003)
        assert hist.quantile(0.5) == pytest.approx(0.003)

    def test_rejects_bad_buckets_and_quantile(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.1, 0.01))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.1,)).quantile(0.0)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_includes_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        snap = registry.snapshot()
        assert snap["reqs"] == 3
        assert snap["lat"]["count"] == 1
        assert "p50" in snap["lat"] and "p99" in snap["lat"]

    def test_render_text_prometheus_shape(self):
        registry = MetricsRegistry()
        registry.counter("reqs", "total requests").inc()
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(0.1,)).observe(0.05)
        text = registry.render_text()
        assert "# TYPE reqs counter" in text
        assert "reqs 1" in text
        assert "depth 2" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert text.endswith("\n")
