"""Unit tests for the serving metrics registry and histogram math."""

from __future__ import annotations

import threading

import pytest

from repro.serving import MetricsRegistry
from repro.serving.metrics import (
    Counter,
    Gauge,
    Histogram,
    merge_snapshots,
    quantile_from_snapshot,
    render_snapshot_text,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc(1)
        assert gauge.value == pytest.approx(7)

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_count_sum_max(self):
        hist = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == pytest.approx(5.555)
        snap = hist.snapshot()
        assert snap["max"] == pytest.approx(5.0)

    def test_bucket_placement_le_semantics(self):
        hist = Histogram("h", buckets=(0.01, 0.1))
        hist.observe(0.01)  # == bound -> that bucket (Prometheus `le`)
        hist.observe(0.011)
        snap = hist.snapshot()
        assert snap["buckets"][0] == {"le": 0.01, "count": 1}
        assert snap["buckets"][1] == {"le": 0.1, "count": 2}

    def test_quantiles_on_uniform_data(self):
        hist = Histogram("h", buckets=(0.025, 0.05, 0.075, 0.1, 0.25))
        # 100 observations spread uniformly over (0, 0.1].
        for i in range(1, 101):
            hist.observe(i / 1000.0)
        assert hist.quantile(0.50) == pytest.approx(0.05, abs=0.005)
        assert hist.quantile(0.95) == pytest.approx(0.095, abs=0.01)
        assert hist.quantile(1.00) == pytest.approx(0.1, abs=0.005)

    def test_quantile_empty_and_overflow(self):
        hist = Histogram("h", buckets=(0.01,))
        assert hist.quantile(0.5) == 0.0
        hist.observe(3.0)  # lands in +Inf bucket
        assert hist.quantile(0.99) == pytest.approx(3.0)

    def test_quantile_identical_observations_capped_at_max(self):
        hist = Histogram("h", buckets=(0.0025, 0.005))
        for _ in range(10):
            hist.observe(0.003)
        assert hist.quantile(0.5) == pytest.approx(0.003)

    def test_rejects_bad_buckets_and_quantile(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.1, 0.01))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.1,)).quantile(0.0)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_includes_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        snap = registry.snapshot()
        assert snap["reqs"] == 3
        assert snap["lat"]["count"] == 1
        assert "p50" in snap["lat"] and "p99" in snap["lat"]

    def test_render_text_prometheus_shape(self):
        registry = MetricsRegistry()
        registry.counter("reqs", "total requests").inc()
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(0.1,)).observe(0.05)
        text = registry.render_text()
        assert "# TYPE reqs counter" in text
        assert "reqs 1" in text
        assert "depth 2" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert text.endswith("\n")


class TestHistogramQuantileEdges:
    """Edge cases the cluster aggregation path leans on."""

    def test_empty_histogram_quantiles_are_zero(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(1.0) == 0.0

    def test_single_sample_stays_inside_its_bucket(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.07)
        # Interpolation is bucket-resolution: every quantile of a single
        # sample lands inside the sample's bucket, capped at the max.
        assert 0.0 < hist.quantile(0.01) <= 0.1
        assert hist.quantile(1.0) == pytest.approx(0.07)
        # Estimates never exceed the observed maximum.
        assert hist.quantile(1.0) <= 0.07

    def test_q_zero_and_out_of_range_rejected(self):
        hist = Histogram("h", buckets=(0.1,))
        hist.observe(0.05)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                hist.quantile(bad)

    def test_q_one_is_allowed(self):
        hist = Histogram("h", buckets=(0.1,))
        hist.observe(0.05)
        assert hist.quantile(1.0) == pytest.approx(0.05, abs=0.05)


class TestRegistryKindCollision:
    def test_every_kind_pair_collides(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.histogram("h")
        with pytest.raises(TypeError):
            registry.histogram("c")
        with pytest.raises(TypeError):
            registry.counter("g")
        with pytest.raises(TypeError):
            registry.gauge("h")


class TestSnapshotAggregation:
    """merge_snapshots / quantile_from_snapshot / render_snapshot_text:
    the cross-process aggregation used by the cluster supervisor."""

    def _registry(self, counts: int, latencies: list[float]) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("serving_requests_total").inc(counts)
        registry.gauge("serving_queue_depth").set(counts)
        hist = registry.histogram("serving_latency_seconds", buckets=(0.1, 1.0))
        for value in latencies:
            hist.observe(value)
        return registry

    def test_counters_and_gauges_sum(self):
        merged = merge_snapshots([
            self._registry(3, []).snapshot(),
            self._registry(5, []).snapshot(),
        ])
        assert merged["serving_requests_total"] == 8
        assert merged["serving_queue_depth"] == 8

    def test_histograms_merge_exactly(self):
        merged = merge_snapshots([
            self._registry(0, [0.05, 0.5]).snapshot(),
            self._registry(0, [0.05, 2.0]).snapshot(),
        ])
        hist = merged["serving_latency_seconds"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(2.6)
        assert hist["max"] == pytest.approx(2.0)
        by_le = {b["le"]: b["count"] for b in hist["buckets"]}
        assert by_le[0.1] == 2   # cumulative counts add per bound
        assert by_le[1.0] == 3

    def test_merged_quantiles_re_estimated(self):
        merged = merge_snapshots([
            self._registry(0, [0.05] * 9).snapshot(),
            self._registry(0, [0.5]).snapshot(),
        ])
        hist = merged["serving_latency_seconds"]
        assert hist["p50"] <= 0.1
        assert hist["p99"] > 0.1

    def test_quantile_from_snapshot_matches_live_histogram(self):
        registry = self._registry(0, [0.01, 0.05, 0.2, 0.7, 3.0])
        live = registry.histogram("serving_latency_seconds", buckets=(0.1, 1.0))
        snap = live.snapshot()
        for q in (0.5, 0.95, 1.0):
            assert quantile_from_snapshot(snap, q) == pytest.approx(
                live.quantile(q)
            )

    def test_quantile_from_snapshot_edges(self):
        assert quantile_from_snapshot({"count": 0, "buckets": []}, 0.5) == 0.0
        with pytest.raises(ValueError):
            quantile_from_snapshot({"count": 1, "buckets": []}, 0.0)

    def test_kind_mismatch_across_workers_raises(self):
        with pytest.raises(TypeError):
            merge_snapshots([
                {"m": 1.0},
                {"m": {"count": 1, "sum": 0.1, "max": 0.1, "buckets": []}},
            ])

    def test_render_snapshot_text_exposition(self):
        merged = merge_snapshots([
            self._registry(2, [0.05]).snapshot(),
            self._registry(1, [0.5]).snapshot(),
        ])
        text = render_snapshot_text(
            merged, help_texts={"serving_requests_total": "total requests"}
        )
        assert "# HELP serving_requests_total total requests" in text
        assert "# TYPE serving_requests_total counter" in text
        assert "serving_requests_total 3" in text
        assert "# TYPE serving_queue_depth gauge" in text
        assert "# TYPE serving_latency_seconds histogram" in text
        assert 'serving_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'serving_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "serving_latency_seconds_count 2" in text
        assert text.endswith("\n")
