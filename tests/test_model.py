"""Tests for the neural model: featurization, supervision, encode/decode,
training mechanics, and checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.candidates import ValueCandidate
from repro.config import ModelConfig, TrainingConfig
from repro.errors import ModelError
from repro.index import ValueLocation
from repro.model import (
    DecoderStep,
    Trainer,
    ValueNetModel,
    build_preprocessors,
    build_vocabulary,
    featurize,
    match_candidate,
    prepare_samples,
    steps_to_tree,
    tree_to_steps,
)
from repro.model.featurize import SEG_COLUMN, SEG_QUESTION, SEG_TABLE, SEG_VALUE
from repro.preprocessing import Preprocessor
from repro.semql import query_to_semql
from repro.spider import CorpusConfig, generate_corpus
from repro.sql import parse_sql

TINY = ModelConfig(
    dim=32, num_layers=1, num_heads=2, ff_dim=48, summary_hidden=16,
    decoder_hidden=32, pointer_hidden=24, dropout=0.0, word_dropout=0.0,
)


@pytest.fixture(scope="module")
def tiny_corpus():
    corpus = generate_corpus(CorpusConfig(train_per_domain=8, dev_per_domain=4))
    yield corpus
    corpus.close()


@pytest.fixture(scope="module")
def vocab(tiny_corpus):
    return build_vocabulary(
        [e.question for e in tiny_corpus.train],
        [tiny_corpus.schema(d) for d in tiny_corpus.train_domains],
        [str(v) for e in tiny_corpus.train for v in e.values],
        vocab_size=600,
    )


@pytest.fixture(scope="module")
def model(vocab):
    return ValueNetModel(vocab, TINY)


class TestFeaturize:
    def test_structure(self, pets_db, vocab):
        pre = Preprocessor(pets_db).run("How many French students are there?")
        encoder_input = featurize(pre, pets_db.schema, vocab)
        assert encoder_input.length > 0
        assert len(encoder_input.question_spans) == len(pre.tokens)
        assert len(encoder_input.column_spans) == len(pets_db.schema.all_columns())
        assert len(encoder_input.table_spans) == pets_db.schema.num_tables
        assert len(encoder_input.value_spans) == len(pre.candidates)
        assert len(encoder_input.column_hints) == len(encoder_input.column_spans)
        assert len(encoder_input.value_located) == len(encoder_input.value_spans)

    def test_segments_ordered(self, pets_db, vocab):
        pre = Preprocessor(pets_db).run("students from France")
        encoder_input = featurize(pre, pets_db.schema, vocab)
        segments = encoder_input.segment_ids
        # question pieces come first, then columns, tables, values
        first_column = segments.index(SEG_COLUMN)
        first_table = segments.index(SEG_TABLE)
        assert all(s == SEG_QUESTION for s in segments[:first_column])
        assert first_column < first_table
        if SEG_VALUE in segments:
            assert first_table < segments.index(SEG_VALUE)

    def test_spans_nonempty_and_within_bounds(self, pets_db, vocab):
        pre = Preprocessor(pets_db).run("oldest pets by weight")
        encoder_input = featurize(pre, pets_db.schema, vocab)
        for span in (
            encoder_input.question_spans
            + encoder_input.column_spans
            + encoder_input.table_spans
            + encoder_input.value_spans
        ):
            assert 0 <= span.start < span.end <= encoder_input.length


class TestSupervision:
    def test_match_candidate_normalized(self):
        candidates = [ValueCandidate("France", "gold"), ValueCandidate(3, "gold")]
        assert match_candidate("france", candidates) == 0
        assert match_candidate(3.0, candidates) == 1
        assert match_candidate("nope", candidates) is None

    def test_tree_to_steps_and_back(self, pets_db):
        schema = pets_db.schema
        sql = "SELECT name FROM student WHERE home_country = 'France' AND age > 20"
        tree = query_to_semql(parse_sql(sql, schema), schema)
        candidates = [ValueCandidate("France", "gold"), ValueCandidate(20, "gold")]
        steps = tree_to_steps(tree, schema, candidates)
        assert steps is not None
        rebuilt = steps_to_tree(steps, schema, candidates)
        assert rebuilt.to_sexpr() == tree.to_sexpr()

    def test_missing_value_returns_none(self, pets_db):
        schema = pets_db.schema
        sql = "SELECT name FROM student WHERE age > 20"
        tree = query_to_semql(parse_sql(sql, schema), schema)
        assert tree_to_steps(tree, schema, []) is None

    def test_steps_to_tree_range_checks(self, pets_db):
        schema = pets_db.schema
        with pytest.raises(ModelError):
            steps_to_tree([DecoderStep("C", 999)], schema, [])

    def test_pointer_indices_are_schema_aligned(self, pets_db):
        schema = pets_db.schema
        sql = "SELECT count(*) FROM student"
        tree = query_to_semql(parse_sql(sql, schema), schema)
        steps = tree_to_steps(tree, schema, [])
        column_steps = [s for s in steps if s.kind == "C"]
        assert column_steps[0].target == 0  # '*' is column index 0


class TestModelForward:
    def test_encode_shapes(self, model, pets_db):
        pre = Preprocessor(pets_db).run("How many French students are there?")
        encoded = model.encode(pre, pets_db.schema)
        assert encoded.question.shape == (len(pre.tokens), TINY.dim)
        assert encoded.columns.shape == (len(pets_db.schema.all_columns()), TINY.dim)
        assert encoded.tables.shape == (3, TINY.dim)
        assert encoded.summary.shape == (TINY.dim,)

    def test_loss_none_when_value_unmatched(self, model, pets_db):
        schema = pets_db.schema
        pre = Preprocessor(pets_db).run_light("q", [])
        sql = "SELECT name FROM student WHERE age > 20"
        tree = query_to_semql(parse_sql(sql, schema), schema)
        assert model.loss(pre, schema, tree) is None

    def test_loss_positive(self, model, pets_db):
        schema = pets_db.schema
        pre = Preprocessor(pets_db).run_light(
            "students older than 20", [20]
        )
        sql = "SELECT name FROM student WHERE age > 20"
        tree = query_to_semql(parse_sql(sql, schema), schema)
        loss = model.loss(pre, schema, tree)
        assert loss is not None and loss.item() > 0

    def test_predict_valid_tree(self, model, pets_db):
        pre = Preprocessor(pets_db).run("How many students are there?")
        tree = model.predict(pre, pets_db.schema)
        tree.validate()

    def test_predict_restores_training_mode(self, model, pets_db):
        model.train()
        pre = Preprocessor(pets_db).run("How many students are there?")
        model.predict(pre, pets_db.schema)
        assert model.training
        model.eval()

    def test_decode_is_deterministic(self, model, pets_db):
        pre = Preprocessor(pets_db).run("names of all students")
        model.eval()
        a = model.predict(pre, pets_db.schema).to_sexpr()
        b = model.predict(pre, pets_db.schema).to_sexpr()
        assert a == b

    def test_predicted_tree_is_executable(self, model, pets_db):
        from repro.postprocessing import SqlBuilder

        pre = Preprocessor(pets_db).run("How many students are there?")
        tree = model.predict(pre, pets_db.schema)
        sql = SqlBuilder(pets_db.schema).build(tree)
        pets_db.execute(sql)  # grammar-constrained output is always valid SQL


class TestTraining:
    def test_single_example_overfits(self, vocab, pets_db):
        model = ValueNetModel(vocab, TINY)
        schema = pets_db.schema
        pre = Preprocessor(pets_db).run_light(
            "How many students are there?", []
        )
        sql = "SELECT count(*) FROM student"
        tree = query_to_semql(parse_sql(sql, schema), schema)
        steps = tree_to_steps(tree, schema, pre.candidates)
        optimizer = model.build_optimizer(
            encoder_lr=1e-3, decoder_lr=2e-3, connection_lr=1e-3
        )
        model.train()
        first = None
        for _ in range(25):
            optimizer.zero_grad()
            loss = model.decoder.loss(model.encode(pre, schema), steps)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        model.eval()
        assert loss.item() < first * 0.2
        predicted = model.predict(pre, schema)
        assert predicted.to_sexpr() == tree.to_sexpr()

    def test_trainer_loop_decreases_loss(self, tiny_corpus, vocab):
        model = ValueNetModel(vocab, TINY)
        preprocessors = build_preprocessors(tiny_corpus)
        samples, _dropped = prepare_samples(
            tiny_corpus.train[:12], preprocessors, model, mode="light"
        )
        trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=4))
        history = trainer.train(samples)
        assert len(history.epochs) == 3
        assert history.epochs[-1].mean_loss < history.epochs[0].mean_loss

    def test_prepare_samples_modes(self, tiny_corpus, vocab):
        model = ValueNetModel(vocab, TINY)
        preprocessors = build_preprocessors(tiny_corpus)
        light, light_dropped = prepare_samples(
            tiny_corpus.train[:30], preprocessors, model, mode="light"
        )
        assert light_dropped == 0  # gold values always present in light mode
        full, full_dropped = prepare_samples(
            tiny_corpus.train[:30], preprocessors, model, mode="valuenet"
        )
        assert len(full) + full_dropped == 30

    def test_prepare_rejects_unknown_mode(self, tiny_corpus, vocab):
        model = ValueNetModel(vocab, TINY)
        with pytest.raises(ValueError):
            prepare_samples(
                tiny_corpus.train[:1], build_preprocessors(tiny_corpus), model,
                mode="bogus",
            )


class TestCheckpointing:
    def test_save_load_same_predictions(self, model, pets_db, tmp_path):
        pre = Preprocessor(pets_db).run("names of students from France")
        model.eval()
        before = model.predict(pre, pets_db.schema).to_sexpr()
        model.save(tmp_path / "ckpt")
        loaded = ValueNetModel.load(tmp_path / "ckpt")
        after = loaded.predict(pre, pets_db.schema).to_sexpr()
        assert before == after

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ModelError):
            ValueNetModel.load(tmp_path / "nothing")

    def test_optimizer_groups(self, model):
        optimizer = model.build_optimizer(
            encoder_lr=1e-3, decoder_lr=2e-3, connection_lr=5e-4
        )
        groups = optimizer._groups
        assert [g.name for g in groups] == ["encoder", "decoder", "connection"]
        total = sum(len(g.params) for g in groups)
        assert total == len(model.parameters())
        # no parameter appears in two groups
        ids = [id(p) for g in groups for p in g.params]
        assert len(ids) == len(set(ids))
