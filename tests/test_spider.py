"""Tests for the synthetic Spider-like corpus generator."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.errors import DatasetError
from repro.evaluation.difficulty import Hardness, ValueDifficulty
from repro.schema import SchemaGraph
from repro.semql import query_to_semql, semql_to_query
from repro.spider import (
    CorpusConfig,
    DEFAULT_DEV_DOMAINS,
    DEFAULT_TRAIN_DOMAINS,
    DOMAIN_SPECS,
    build_domain,
    generate_corpus,
    hardness_distribution,
    load_corpus,
    value_difficulty_distribution,
    value_distribution,
)
from repro.sql import SqlRenderer, parse_sql


@pytest.fixture(scope="module")
def small_corpus():
    corpus = generate_corpus(CorpusConfig(train_per_domain=25, dev_per_domain=15))
    yield corpus
    corpus.close()


class TestDomains:
    def test_all_domains_materialize(self):
        for name in DOMAIN_SPECS:
            instance = build_domain(name)
            with instance.build_database() as db:
                for table in instance.schema.tables:
                    assert db.row_count(table.name) > 0

    def test_deterministic_per_seed(self):
        a = build_domain("pets", seed=3)
        b = build_domain("pets", seed=3)
        assert a.rows == b.rows
        c = build_domain("pets", seed=4)
        assert a.rows != c.rows

    def test_unknown_domain_raises(self):
        with pytest.raises(DatasetError):
            build_domain("narnia")

    def test_fk_integrity(self):
        instance = build_domain("pets")
        with instance.build_database() as db:
            orphans = db.execute(
                "SELECT COUNT(*) FROM has_pet WHERE stuid NOT IN "
                "(SELECT stuid FROM student)"
            )
            assert orphans == [(0,)]

    def test_primary_keys_unique(self):
        instance = build_domain("college")
        ids = instance.column_values("student", "stu_id")
        assert len(ids) == len(set(ids))

    def test_split_is_disjoint(self):
        assert not set(DEFAULT_TRAIN_DOMAINS) & set(DEFAULT_DEV_DOMAINS)
        assert set(DEFAULT_TRAIN_DOMAINS) | set(DEFAULT_DEV_DOMAINS) == set(DOMAIN_SPECS)


class TestGeneratedExamples:
    def test_sizes(self, small_corpus):
        assert small_corpus.num_train == 25 * len(DEFAULT_TRAIN_DOMAINS)
        assert small_corpus.num_dev == 15 * len(DEFAULT_DEV_DOMAINS)

    def test_gold_sql_executes(self, small_corpus):
        for example in small_corpus.train[:80] + small_corpus.dev[:40]:
            database = small_corpus.database(example.db_id)
            database.execute(example.gold_sql)  # must not raise

    def test_gold_sql_parses_back(self, small_corpus):
        for example in small_corpus.dev[:40]:
            schema = small_corpus.schema(example.db_id)
            query = parse_sql(example.gold_sql, schema)
            assert query.body.tables

    def test_gold_semql_valid_and_executable(self, small_corpus):
        for example in small_corpus.dev[:40]:
            schema = small_corpus.schema(example.db_id)
            example.gold_semql.validate()
            rebuilt = semql_to_query(example.gold_semql, schema)
            renderer = SqlRenderer(SchemaGraph(schema))
            database = small_corpus.database(example.db_id)
            database.execute(renderer.render(rebuilt))

    def test_semql_roundtrip_preserves_results(self, small_corpus):
        mismatches = 0
        for example in small_corpus.dev[:60]:
            schema = small_corpus.schema(example.db_id)
            database = small_corpus.database(example.db_id)
            renderer = SqlRenderer(SchemaGraph(schema))
            rebuilt_sql = renderer.render(semql_to_query(example.gold_semql, schema))
            gold_rows = sorted(map(tuple, database.execute(example.gold_sql)))
            rebuilt_rows = sorted(map(tuple, database.execute(rebuilt_sql)))
            if gold_rows != rebuilt_rows:
                mismatches += 1
        assert mismatches == 0

    def test_values_annotated(self, small_corpus):
        for example in small_corpus.train:
            assert len(example.values) == len(example.value_difficulties)

    def test_questions_unique_per_domain(self, small_corpus):
        seen = set()
        for example in small_corpus.train:
            key = (example.db_id, example.question)
            assert key not in seen
            seen.add(key)

    def test_determinism(self):
        config = CorpusConfig(train_per_domain=10, dev_per_domain=5, seed=7)
        a = generate_corpus(config)
        b = generate_corpus(config)
        assert [e.question for e in a.train] == [e.question for e in b.train]
        assert [e.gold_sql for e in a.dev] == [e.gold_sql for e in b.dev]

    def test_overlapping_split_rejected(self):
        with pytest.raises(ValueError):
            generate_corpus(
                CorpusConfig(train_domains=("pets",), dev_domains=("pets",))
            )


class TestDistributions:
    def test_value_distribution_shape(self, small_corpus):
        distribution = value_distribution(small_corpus.train)
        # Fig. 9 shape: no-value and one-value dominate, long tail small
        assert distribution.fraction(0) > 0.25
        assert distribution.fraction(1) > 0.25
        assert distribution.fraction(2) < 0.30
        assert distribution.total_values > 0
        assert (
            distribution.samples_with_values
            == distribution.total_samples - distribution.counts.get(0, 0)
        )

    def test_hardness_all_classes_present(self, small_corpus):
        counts = hardness_distribution(small_corpus.train)
        for hardness in Hardness:
            assert counts[hardness] > 0, hardness

    def test_value_difficulty_classes_present(self, small_corpus):
        counts = value_difficulty_distribution(small_corpus.train)
        assert counts[ValueDifficulty.EASY] > 0
        assert counts[ValueDifficulty.MEDIUM] > 0
        assert counts[ValueDifficulty.EXTRA_HARD] > 0

    def test_example_value_difficulty_is_max(self, small_corpus):
        for example in small_corpus.train:
            if example.value_difficulties:
                order = list(ValueDifficulty)
                expected = max(example.value_difficulties, key=order.index)
                assert example.value_difficulty is expected


class TestPersistence:
    def test_save_load_roundtrip(self, small_corpus, tmp_path):
        small_corpus.save(tmp_path / "corpus")
        loaded = load_corpus(tmp_path / "corpus")
        assert loaded.num_train == small_corpus.num_train
        assert loaded.num_dev == small_corpus.num_dev
        assert loaded.train[0].question == small_corpus.train[0].question
        assert loaded.train[0].gold_sql == small_corpus.train[0].gold_sql
        # gold SemQL is re-derived from SQL and stays valid
        loaded.train[0].gold_semql.validate()
        loaded.close()

    def test_loaded_databases_executable(self, small_corpus, tmp_path):
        small_corpus.save(tmp_path / "corpus")
        loaded = load_corpus(tmp_path / "corpus")
        example = loaded.dev[0]
        loaded.database(example.db_id).execute(example.gold_sql)
        loaded.close()

    def test_unknown_db_raises(self, small_corpus):
        with pytest.raises(DatasetError):
            small_corpus.schema("nope")
        with pytest.raises(DatasetError):
            small_corpus.database("nope")


class TestDifficultyClassifier:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("SELECT name FROM student", Hardness.EASY),
            ("SELECT name FROM student WHERE age > 20", Hardness.EASY),
            (
                "SELECT home_country, count(*) FROM student GROUP BY home_country",
                Hardness.MEDIUM,
            ),
            ("SELECT name FROM student ORDER BY age DESC LIMIT 3", Hardness.MEDIUM),
            (
                "SELECT name FROM student WHERE stuid IN (SELECT stuid FROM has_pet)",
                Hardness.HARD,
            ),
            (
                "SELECT name FROM student WHERE sex = 'F' UNION "
                "SELECT name FROM student WHERE age > 20",
                Hardness.EXTRA_HARD,
            ),
        ],
    )
    def test_hardness_buckets(self, sql, expected, pets_schema):
        from repro.evaluation.difficulty import classify_hardness

        assert classify_hardness(parse_sql(sql, pets_schema)) is expected
