"""Unit tests for repro.ner: heuristics, tagger, gazetteer, combiner."""

from __future__ import annotations

import pytest

from repro.ner import (
    ExtractedValue,
    GazetteerRecognizer,
    PerceptronTagger,
    SpanKind,
    ValueExtractor,
    extract_capitalized,
    extract_heuristic_values,
    extract_months,
    extract_numbers,
    extract_ordinals,
    extract_quoted,
    extract_single_letters,
    merge_spans,
    ordinal_to_int,
)


class TestHeuristics:
    def test_quoted_extraction(self):
        # paper's example: "Whose head's name has the substring 'Ha'?"
        values = extract_quoted("Whose head's name has the substring 'Ha'?")
        assert [v.text for v in values] == ["Ha"]
        assert values[0].kind is SpanKind.QUOTED

    def test_double_quotes(self):
        values = extract_quoted('albums starting with "goodbye"')
        assert [v.text for v in values] == ["goodbye"]

    def test_capitalized_run(self):
        # paper's example: "Show all flight numbers with aircraft Airbus A340-300"
        values = extract_capitalized(
            "Show all flight numbers with aircraft Airbus A340"
        )
        texts = [v.text for v in values]
        assert "Airbus A340" in texts

    def test_sentence_initial_not_extracted(self):
        values = extract_capitalized("Show all flights.")
        assert values == []

    def test_sentence_initial_proper_noun_kept(self):
        values = extract_capitalized("John F Kennedy is an airport.")
        assert any("John" in v.text for v in values)

    def test_multiword_proper_noun(self):
        values = extract_capitalized(
            "Find routes to John F Kennedy International Airport now"
        )
        assert any(
            v.text == "John F Kennedy International Airport" for v in values
        )

    def test_single_letter(self):
        # paper's example about "the letter M"
        values = extract_single_letters(
            "employees whose first name does not contain the letter M"
        )
        assert [v.text for v in values] == ["M"]
        assert values[0].kind is SpanKind.LETTER

    def test_numbers_and_years(self):
        values = extract_numbers("3 pets older than 20 since 2010")
        kinds = {v.text: v.kind for v in values}
        assert kinds["3"] is SpanKind.NUMBER
        assert kinds["20"] is SpanKind.NUMBER
        assert kinds["2010"] is SpanKind.YEAR

    def test_ordinals(self):
        values = extract_ordinals("the fourth-grade classroom and the 9th row")
        texts = {v.text for v in values}
        assert "fourth" in texts and "9th" in texts

    def test_ordinal_to_int(self):
        assert ordinal_to_int("fourth") == 4
        assert ordinal_to_int("9th") == 9
        assert ordinal_to_int("banana") is None

    def test_months(self):
        values = extract_months("trips starting from the 9th of August 2010")
        assert [v.text for v in values] == ["August"]
        assert values[0].kind is SpanKind.MONTH

    def test_combined_sorted_by_position(self):
        values = extract_heuristic_values(
            "Which start station had the most trips starting from the "
            "9th of August 2010?"
        )
        starts = [v.start for v in values]
        assert starts == sorted(starts)

    def test_spans_match_question_text(self):
        question = "Find flights to Paris with a duration over 6 hours"
        for value in extract_heuristic_values(question):
            assert question[value.start:value.end] == value.text


class TestMergeSpans:
    def test_dedup_same_text(self):
        a = ExtractedValue("Paris", 0, 5, SpanKind.TEXT, "heuristic")
        b = ExtractedValue("paris", 10, 15, SpanKind.TEXT, "gazetteer")
        assert len(merge_spans([a, b])) == 1

    def test_same_source_containment_dropped(self):
        outer = ExtractedValue("John F Kennedy", 0, 14, SpanKind.TEXT, "heuristic")
        inner = ExtractedValue("Kennedy", 7, 14, SpanKind.TEXT, "heuristic")
        kept = merge_spans([outer, inner])
        assert [s.text for s in kept] == ["John F Kennedy"]

    def test_cross_source_containment_kept(self):
        outer = ExtractedValue("John F Kennedy", 0, 14, SpanKind.TEXT, "gazetteer")
        inner = ExtractedValue("Kennedy", 7, 14, SpanKind.TEXT, "tagger")
        assert len(merge_spans([outer, inner])) == 2


class TestGazetteer:
    def test_country_recognition(self):
        spans = GazetteerRecognizer().extract("students from France and Italy")
        assert {s.text for s in spans} == {"France", "Italy"}

    def test_multiword_longest_match(self):
        spans = GazetteerRecognizer().extract("flights to New York today")
        assert any(s.text == "New York" for s in spans)

    def test_months_typed(self):
        spans = GazetteerRecognizer().extract("bookings in august")
        assert spans and spans[0].kind is SpanKind.MONTH

    def test_extra_entries(self):
        recognizer = GazetteerRecognizer(extra_entries=["zorbium"])
        spans = recognizer.extract("give me zorbium records")
        assert [s.text for s in spans] == ["zorbium"]

    def test_case_insensitive(self):
        spans = GazetteerRecognizer().extract("who lives in PARIS")
        assert [s.text for s in spans] == ["PARIS"]


class TestPerceptronTagger:
    @pytest.fixture
    def trained(self):
        examples = []
        for country in ["France", "Italy", "Spain", "Greece", "Poland"]:
            question = f"List all students from {country} please"
            start = question.index(country)
            examples.append((question, [(start, start + len(country))]))
            question2 = f"How many people living in {country} are there?"
            start2 = question2.index(country)
            examples.append((question2, [(start2, start2 + len(country))]))
        examples.append(("How many students are there?", []))
        examples.append(("List the names of all pets.", []))
        tagger = PerceptronTagger()
        tagger.train(examples, epochs=6)
        return tagger

    def test_learns_pattern(self, trained):
        spans = trained.extract("List all students from Norway please")
        assert any(s.text == "Norway" for s in spans)

    def test_no_values_question(self, trained):
        # a question seen in training with no value spans stays empty or
        # at worst produces no span covering the country position
        spans = trained.extract("How many students are there?")
        assert all("France" not in s.text for s in spans)

    def test_save_load(self, trained, tmp_path):
        path = tmp_path / "tagger.json"
        trained.save(path)
        loaded = PerceptronTagger.load(path)
        q = "List all students from Norway please"
        assert [s.text for s in loaded.extract(q)] == [
            s.text for s in trained.extract(q)
        ]

    def test_numbers_typed(self):
        tagger = PerceptronTagger()
        tagger.train(
            [("pets older than 20", [(16, 18)])] * 3, epochs=4
        )
        spans = tagger.extract("pets older than 30")
        numeric = [s for s in spans if s.text == "30"]
        for s in numeric:
            assert s.kind is SpanKind.NUMBER


class TestValueExtractor:
    def test_heuristics_only(self):
        extractor = ValueExtractor()
        spans = extractor.extract("students older than 20 from 'France'")
        texts = {s.text for s in spans}
        assert "20" in texts and "France" in texts

    def test_with_gazetteer(self):
        extractor = ValueExtractor(gazetteer=GazetteerRecognizer())
        spans = extractor.extract("all female students from france")  # lower case!
        assert any(s.text == "france" for s in spans)

    def test_disable_heuristics(self):
        extractor = ValueExtractor(use_heuristics=False)
        assert extractor.extract("students older than 20") == []
