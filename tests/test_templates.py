"""Per-pattern unit tests for the question/SQL template generators."""

from __future__ import annotations

import random

import pytest

from repro.schema import SchemaGraph
from repro.spider.domains import build_domain
from repro.spider.templates import (
    GeneratedExample,
    PATTERN_WEIGHTS,
    TemplateContext,
    decorate_question,
    pattern_aggregate,
    pattern_between,
    pattern_compound,
    pattern_count_all,
    pattern_filter_category,
    pattern_group_count,
    pattern_having,
    pattern_like,
    pattern_nested_in,
    pattern_superlative,
    pattern_three_values,
    pattern_two_conditions,
)
from repro.sql.ast import Operator, SetOperator
from repro.sql.render import SqlRenderer


@pytest.fixture(scope="module")
def ctx():
    instance = build_domain("college", seed=1)
    return TemplateContext(instance, random.Random(5), noise=0.0)


@pytest.fixture(scope="module")
def executable(ctx):
    """A database + renderer to verify generated queries execute."""
    database = ctx.instance.build_database()
    renderer = SqlRenderer(SchemaGraph(ctx.instance.schema))
    yield database, renderer
    database.close()


def run_pattern(pattern, ctx, tries: int = 40) -> GeneratedExample:
    for _ in range(tries):
        example = pattern(ctx)
        if example is not None:
            return example
    pytest.fail(f"pattern {pattern.__name__} never produced an example")


class TestIndividualPatterns:
    def test_count_all(self, ctx, executable):
        database, renderer = executable
        example = run_pattern(pattern_count_all, ctx)
        assert "count" in renderer.render(example.query).lower()
        assert example.values == []
        rows = database.execute(renderer.render(example.query))
        assert rows[0][0] > 0

    def test_filter_category_value_in_sql(self, ctx, executable):
        database, renderer = executable
        example = run_pattern(pattern_filter_category, ctx)
        assert len(example.values) == 1
        sql = renderer.render(example.query)
        assert str(example.values[0]) in sql
        database.execute(sql)

    def test_aggregate_has_no_values(self, ctx):
        example = run_pattern(pattern_aggregate, ctx)
        assert example.values == []
        item = example.query.body.select[0]
        assert item.aggregate.value in ("avg", "max", "min", "sum")

    def test_group_count_shape(self, ctx):
        example = run_pattern(pattern_group_count, ctx)
        assert example.query.body.group_by

    def test_superlative_limit_is_value(self, ctx):
        example = run_pattern(pattern_superlative, ctx)
        assert example.query.body.limit == example.values[0]
        assert example.query.body.order_by is not None

    def test_between_two_values_ordered(self, ctx):
        example = run_pattern(pattern_between, ctx)
        low, high = example.values
        assert low < high
        condition = example.query.body.where
        assert condition.operator is Operator.BETWEEN

    def test_two_conditions_and(self, ctx):
        example = run_pattern(pattern_two_conditions, ctx)
        assert len(example.values) == 2
        where = example.query.body.where
        assert where.connector == "and"

    def test_having_query(self, ctx, executable):
        database, renderer = executable
        example = run_pattern(pattern_having, ctx)
        assert example.query.body.having is not None
        database.execute(renderer.render(example.query))

    def test_nested_in_subquery(self, ctx):
        example = run_pattern(pattern_nested_in, ctx)
        condition = example.query.body.where
        assert condition.operator in (Operator.IN, Operator.NOT_IN)

    def test_compound_same_projection(self, ctx, executable):
        database, renderer = executable
        example = run_pattern(pattern_compound, ctx)
        assert example.query.set_operator in set(SetOperator)
        left = example.query.body.select
        right = example.query.compound.body.select
        assert len(left) == len(right)
        database.execute(renderer.render(example.query))

    def test_three_values(self, ctx):
        example = run_pattern(pattern_three_values, ctx)
        assert len(example.values) == 3
        assert example.query.body.limit is not None
        assert example.query.body.where is not None

    def test_like_wildcards(self, ctx):
        example = run_pattern(pattern_like, ctx)
        assert str(example.values[0]).startswith("%")
        assert example.query.body.where.operator is Operator.LIKE


class TestTemplateMachinery:
    def test_weights_positive_and_named(self):
        for name, pattern, weight in PATTERN_WEIGHTS:
            assert weight > 0, name
            assert callable(pattern)
        names = [entry[0] for entry in PATTERN_WEIGHTS]
        assert len(names) == len(set(names))

    def test_decorations_preserve_meaning_markers(self):
        rng = random.Random(0)
        seen = set()
        for _ in range(50):
            decorated = decorate_question("How many students are there?", rng)
            seen.add(decorated)
            assert "students" in decorated
        assert len(seen) > 1  # decorations create variety

    def test_values_align_with_difficulties(self, ctx):
        for _ in range(50):
            from repro.spider.templates import generate_example

            example = generate_example(ctx)
            if example is not None:
                assert len(example.values) == len(example.value_difficulties)

    def test_noise_swaps_nouns(self):
        instance = build_domain("employees", seed=1)
        noisy = TemplateContext(instance, random.Random(3), noise=1.0)
        table = instance.spec.table("employee")
        nouns = {noisy.noun(table) for _ in range(30)}
        assert nouns & {"workers", "staff members"}

    def test_all_patterns_produce_valid_sql_somewhere(self, executable, ctx):
        """Every weighted pattern must yield an executable query on at
        least one domain (college covers most; bridge patterns use it
        too via the enrollment table)."""
        database, renderer = executable
        produced = 0
        for _name, pattern, _weight in PATTERN_WEIGHTS:
            example = None
            for _ in range(60):
                example = pattern(ctx)
                if example is not None:
                    break
            if example is None:
                continue  # pattern not applicable to this domain
            database.execute(renderer.render(example.query), max_rows=20000)
            produced += 1
        assert produced >= len(PATTERN_WEIGHTS) - 4
