"""Unit + gradient tests for layers, attention, transformer, RNN, optim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BiLSTMSummarizer,
    BilinearAttention,
    Dropout,
    Embedding,
    LSTM,
    LSTMCell,
    LayerNorm,
    Linear,
    MLP,
    Module,
    MultiHeadSelfAttention,
    ParamGroup,
    PointerNetwork,
    Tensor,
    TransformerEncoder,
    cross_entropy,
    load_module,
    save_module,
    sinusoidal_positions,
)
from repro.errors import ModelError

RNG = np.random.default_rng(11)


def gradcheck_params(fn, params, *, tol=2e-5, samples=10):
    """Spot-check analytic vs numeric gradients on random entries."""
    for parameter in params:
        parameter.zero_grad()
    fn().backward()
    rng = np.random.default_rng(3)
    for parameter in params:
        analytic = parameter.grad
        if analytic is None:
            analytic = np.zeros_like(parameter.data)
        flat = parameter.data.reshape(-1)
        indices = rng.choice(flat.size, size=min(flat.size, samples), replace=False)
        for i in indices:
            original = flat[i]
            eps = 1e-6
            flat[i] = original + eps
            upper = fn().item()
            flat[i] = original - eps
            lower = fn().item()
            flat[i] = original
            numeric = (upper - lower) / (2 * eps)
            assert abs(analytic.reshape(-1)[i] - numeric) < tol, (
                f"grad mismatch: {analytic.reshape(-1)[i]} vs {numeric}"
            )


class TestModuleSystem:
    def test_named_parameters_walks_tree(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(3, 4, RNG)
                self.layers = [Linear(4, 4, RNG), Linear(4, 2, RNG)]

        names = dict(Net().named_parameters())
        assert "layer.weight" in names
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_train_eval_propagates(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.dropout = Dropout(0.5, RNG)
                self.inner = [Dropout(0.5, RNG)]

        net = Net()
        net.eval()
        assert not net.dropout.training
        assert not net.inner[0].training
        net.train()
        assert net.dropout.training

    def test_num_parameters(self):
        layer = Linear(3, 4, RNG)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        layer = Linear(2, 2, RNG)
        (layer(Tensor(np.ones(2))).sum()).backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(5, 7, RNG)
        assert layer(Tensor(np.ones(5))).shape == (7,)
        assert layer(Tensor(np.ones((3, 5)))).shape == (3, 7)

    def test_linear_no_bias(self):
        layer = Linear(5, 7, RNG, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_gradcheck(self):
        layer = Linear(4, 3, RNG)
        x = Tensor(RNG.normal(size=4))
        gradcheck_params(lambda: cross_entropy(layer(x), 1), layer.parameters())

    def test_embedding_lookup(self):
        embedding = Embedding(10, 4, RNG)
        out = embedding([1, 5, 1])
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.data[0], out.data[2])

    def test_embedding_gradient_accumulates_repeats(self):
        embedding = Embedding(10, 4, RNG)
        embedding([2, 2, 2]).sum().backward()
        np.testing.assert_allclose(embedding.weight.grad[2], 3.0)

    def test_layernorm_statistics(self):
        norm = LayerNorm(8)
        out = norm(Tensor(RNG.normal(size=(5, 8)) * 10 + 3))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), 1, atol=1e-4)

    def test_layernorm_gradcheck(self):
        norm = LayerNorm(6)
        x = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        weights = Tensor(RNG.normal(size=(2, 6)))
        gradcheck_params(lambda: (norm(x) * weights).sum(), [x, *norm.parameters()])

    def test_mlp_forward(self):
        mlp = MLP(4, 8, 2, RNG)
        assert mlp(Tensor(np.ones(4))).shape == (2,)


class TestAttention:
    def test_self_attention_shape(self):
        attention = MultiHeadSelfAttention(8, 2, RNG, dropout_rate=0.0)
        out = attention(Tensor(RNG.normal(size=(5, 8))))
        assert out.shape == (5, 8)

    def test_dim_head_mismatch_raises(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, RNG)

    def test_self_attention_gradcheck(self):
        attention = MultiHeadSelfAttention(6, 2, RNG, dropout_rate=0.0)
        attention.eval()
        x = Tensor(RNG.normal(size=(4, 6)), requires_grad=True)
        gradcheck_params(
            lambda: cross_entropy(attention(x).sum(axis=0), 2),
            [x] + attention.parameters()[:2],
        )

    def test_pointer_network_scores(self):
        pointer = PointerNetwork(6, 8, 10, RNG)
        scores = pointer(Tensor(RNG.normal(size=6)), Tensor(RNG.normal(size=(5, 8))))
        assert scores.shape == (5,)

    def test_pointer_gradcheck(self):
        pointer = PointerNetwork(4, 5, 6, RNG)
        q = Tensor(RNG.normal(size=4), requires_grad=True)
        memory = Tensor(RNG.normal(size=(3, 5)), requires_grad=True)
        gradcheck_params(
            lambda: cross_entropy(pointer(q, memory), 1),
            [q, memory] + pointer.parameters(),
        )

    def test_bilinear_attention(self):
        attention = BilinearAttention(4, 6, RNG)
        scores = attention(Tensor(RNG.normal(size=4)), Tensor(RNG.normal(size=(5, 6))))
        assert scores.shape == (5,)


class TestTransformer:
    def test_encoder_shape_preserved(self):
        encoder = TransformerEncoder(8, 2, 2, 16, RNG, dropout_rate=0.0)
        out = encoder(Tensor(RNG.normal(size=(7, 8))))
        assert out.shape == (7, 8)

    def test_encoder_gradcheck(self):
        encoder = TransformerEncoder(8, 1, 2, 12, RNG, dropout_rate=0.0)
        encoder.eval()
        x = Tensor(RNG.normal(size=(4, 8)), requires_grad=True)
        gradcheck_params(
            lambda: cross_entropy(encoder(x).sum(axis=0), 1),
            [x] + encoder.parameters()[:3],
            tol=5e-5,
        )

    def test_sinusoidal_positions(self):
        positions = sinusoidal_positions(10, 8)
        assert positions.shape == (10, 8)
        assert np.abs(positions).max() <= 1.0
        # distinct positions get distinct encodings
        assert not np.allclose(positions[0], positions[5])


class TestRnn:
    def test_cell_shapes(self):
        cell = LSTMCell(4, 6, RNG)
        h, c = cell(Tensor(np.ones(4)), cell.initial_state())
        assert h.shape == (6,) and c.shape == (6,)

    def test_forget_bias_initialized(self):
        cell = LSTMCell(4, 6, RNG)
        np.testing.assert_array_equal(cell.bias.data[6:12], 1.0)

    def test_lstm_over_sequence(self):
        lstm = LSTM(4, 6, RNG)
        outputs, (h, c) = lstm(Tensor(RNG.normal(size=(5, 4))))
        assert outputs.shape == (5, 6)
        np.testing.assert_array_equal(outputs.data[-1], h.data)

    def test_lstm_gradcheck(self):
        cell = LSTMCell(3, 4, RNG)
        sequence = Tensor(RNG.normal(size=(3, 3)), requires_grad=True)

        def run():
            state = cell.initial_state()
            for t in range(3):
                state = cell(sequence[t], state)
            return (state[0] * state[0]).sum()

        gradcheck_params(run, [sequence] + cell.parameters(), tol=5e-5)

    def test_bilstm_summary_shape(self):
        summarizer = BiLSTMSummarizer(4, 5, 6, RNG)
        assert summarizer(Tensor(RNG.normal(size=(3, 4)))).shape == (6,)

    def test_bilstm_single_token(self):
        summarizer = BiLSTMSummarizer(4, 5, 6, RNG)
        assert summarizer(Tensor(RNG.normal(size=(1, 4)))).shape == (6,)

    def test_bilstm_direction_sensitivity(self):
        summarizer = BiLSTMSummarizer(4, 5, 6, RNG)
        span = RNG.normal(size=(3, 4))
        forward = summarizer(Tensor(span))
        backward = summarizer(Tensor(span[::-1].copy()))
        assert not np.allclose(forward.data, backward.data)


class TestOptim:
    def test_adam_minimizes_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = Adam.single_group([x], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            (x * x).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(x.data, 0.0, atol=1e-2)

    def test_param_groups_have_independent_rates(self):
        fast = Tensor(np.array([1.0]), requires_grad=True)
        slow = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam(
            [ParamGroup([fast], lr=0.1), ParamGroup([slow], lr=0.0001)]
        )
        optimizer.zero_grad()
        ((fast * fast).sum() + (slow * slow).sum()).backward()
        optimizer.step()
        assert abs(1.0 - fast.data[0]) > abs(1.0 - slow.data[0])

    def test_gradient_clipping(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam.single_group([x], lr=0.1, max_grad_norm=1.0)
        optimizer.zero_grad()
        (x * 1e6).sum().backward()
        norm = optimizer.step()
        assert norm > 1.0  # pre-clip norm reported
        assert np.isfinite(x.data).all()

    def test_none_gradients_skipped(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam.single_group([x], lr=0.1)
        optimizer.step()  # no backward happened; must not crash
        np.testing.assert_array_equal(x.data, [1.0])


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        layer = Linear(3, 4, RNG)
        save_module(layer, tmp_path / "m.npz")
        other = Linear(3, 4, np.random.default_rng(99))
        assert not np.allclose(other.weight.data, layer.weight.data)
        load_module(other, tmp_path / "m.npz")
        np.testing.assert_array_equal(other.weight.data, layer.weight.data)

    def test_shape_mismatch_raises(self, tmp_path):
        save_module(Linear(3, 4, RNG), tmp_path / "m.npz")
        with pytest.raises(ModelError):
            load_module(Linear(3, 5, RNG), tmp_path / "m.npz")

    def test_missing_parameter_raises(self, tmp_path):
        save_module(Linear(3, 4, RNG, bias=False), tmp_path / "m.npz")
        with pytest.raises(ModelError):
            load_module(Linear(3, 4, RNG), tmp_path / "m.npz")
