"""Tests for the whole-program analyses: TAINT-SQL, LAYERING,
DEADLINE-PROP.

Same fixture-snippet style as ``test_analysis.py`` — each rule gets
firing snippets and compliant quiet twins — plus the two guarantees
that only make sense against the real tree: the mutation checks (delete
the policy gate from an execution path and TAINT-SQL must fail) and the
parse-once/time-budget check for the shared-AST engine.
"""

from __future__ import annotations

import ast
import json
import shutil
import sqlite3
import time
import types
from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.graph import ProjectContext, module_name
from repro.analysis.rules.layering import _parse_layers_fallback, parse_layers_toml
from repro.analysis.__main__ import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parents[1]
REAL_TREE = REPO_ROOT / "src" / "repro"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write snippet files under ``tmp_path/repro/`` and return the root."""
    for relpath, source in files.items():
        target = tmp_path / "repro" / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def check_tree(tmp_path: Path, files: dict[str, str]):
    return analyze_paths([write_tree(tmp_path, files)])


def fired(result, rule: str) -> list:
    return [v for v in result.violations if v.rule == rule]


# ------------------------------------------------------------ module graph


def test_module_names_from_logical_paths():
    assert module_name("repro/serving/routes.py") == "repro.serving.routes"
    assert module_name("repro/__init__.py") == "repro"
    assert module_name("repro/serving/__init__.py") == "repro.serving"


def test_import_graph_records_lazy_imports(tmp_path):
    write_tree(tmp_path, {
        "a.py": "import repro.b\n",
        "b.py": "def later():\n    from repro.a import x\n",
    })
    contexts = {}
    from repro.analysis.core import FileContext
    from repro.analysis.engine import iter_python_files, logical_path

    for path in iter_python_files([tmp_path]):
        ctx = FileContext(path, logical_path(path), path.read_text())
        contexts[ctx.logical_path] = ctx
    project = ProjectContext(contexts)
    by_edge = {(r.module, r.target): r for r in project.imports}
    assert by_edge[("repro.a", "repro.b")].lazy is False
    assert by_edge[("repro.b", "repro.a")].lazy is True


# --------------------------------------------------------------- TAINT-SQL

_SINK_MODULE_UNSANITIZED = """\
def run(sql):
    import sqlite3
    conn = sqlite3.connect(":memory:")
    return conn.execute(sql).fetchall()
"""

_SINK_MODULE_SANITIZED = """\
from repro.policy.engine import PolicyEngine

# taint: sanitizer via check_sql (policy gate before execution)
def run(sql):
    import sqlite3
    PolicyEngine().check_sql(sql)
    conn = sqlite3.connect(":memory:")
    return conn.execute(sql).fetchall()
"""

_ROUTES = """\
from repro.db.runner import run

def handle(payload):
    return run(payload["sql"])
"""


def test_taint_fires_when_http_input_reaches_execute(tmp_path):
    result = check_tree(tmp_path, {
        "serving/routes.py": _ROUTES,
        "db/runner.py": _SINK_MODULE_UNSANITIZED,
    })
    [violation] = fired(result, "TAINT-SQL")
    assert violation.path == "repro/db/runner.py"
    assert "tainted SQL" in violation.message


def test_taint_quiet_when_path_passes_verified_sanitizer(tmp_path):
    result = check_tree(tmp_path, {
        "serving/routes.py": _ROUTES,
        "db/runner.py": _SINK_MODULE_SANITIZED,
    })
    assert fired(result, "TAINT-SQL") == []


def test_taint_sanitizer_annotation_is_verified_not_trusted(tmp_path):
    # Annotation claims a check_sql barrier, body never calls it: the
    # annotation itself becomes a violation AND taint flows through.
    result = check_tree(tmp_path, {
        "serving/routes.py": _ROUTES,
        "db/runner.py": """\
# taint: sanitizer via check_sql (claims a gate it does not have)
def run(sql):
    import sqlite3
    return sqlite3.connect(":memory:").execute(sql).fetchall()
""",
    })
    messages = [v.message for v in fired(result, "TAINT-SQL")]
    assert any("not verified" in m for m in messages)
    assert any("tainted SQL" in m for m in messages)


def test_taint_sink_annotation_quiets_reviewed_sink(tmp_path):
    result = check_tree(tmp_path, {
        "serving/routes.py": _ROUTES,
        "db/runner.py": """\
def run(sql):
    import sqlite3
    conn = sqlite3.connect(":memory:")
    return conn.execute(sql).fetchall()  # taint: sink (offline harness, reviewed)
""",
    })
    assert fired(result, "TAINT-SQL") == []


def test_taint_unannotated_sink_fires_where_annotated_twin_is_quiet(tmp_path):
    # Identical code to the annotated twin above, minus the annotation.
    result = check_tree(tmp_path, {
        "serving/routes.py": _ROUTES,
        "db/runner.py": """\
def run(sql):
    import sqlite3
    conn = sqlite3.connect(":memory:")
    return conn.execute(sql).fetchall()
""",
    })
    assert len(fired(result, "TAINT-SQL")) == 1


def test_taint_sink_annotation_rejected_inside_source_module(tmp_path):
    result = check_tree(tmp_path, {
        "serving/routes.py": """\
import sqlite3

def handle(payload):
    conn = sqlite3.connect(":memory:")
    return conn.execute(payload["sql"]).fetchall()  # taint: sink (nope)
""",
    })
    [violation] = fired(result, "TAINT-SQL")
    assert "source module" in violation.message


def test_taint_stale_sink_annotation_fires(tmp_path):
    result = check_tree(tmp_path, {
        "db/runner.py": """\
def run():
    total = 1 + 1  # taint: sink (there is no sink here)
    return total
""",
    })
    [violation] = fired(result, "TAINT-SQL")
    assert "stale" in violation.message


def test_taint_trusted_annotation_verified(tmp_path):
    # Quiet: SQL built from attribute projections of the parameter.
    result = check_tree(tmp_path, {
        "serving/routes.py": _ROUTES.replace("run(", "lookup("),
        "db/runner.py": """\
import sqlite3

# taint: trusted (identifiers come from schema metadata)
def lookup(column):
    conn = sqlite3.connect(":memory:")
    return conn.execute(f'SELECT "{column.name}" FROM "{column.table}"').fetchall()
""",
    })
    assert fired(result, "TAINT-SQL") == []


def test_taint_trusted_annotation_fails_on_parameter_passthrough(tmp_path):
    result = check_tree(tmp_path, {
        "serving/routes.py": _ROUTES.replace("run(", "lookup("),
        "db/runner.py": """\
import sqlite3

# taint: trusted (falsely claims the SQL is schema-derived)
def lookup(sql):
    conn = sqlite3.connect(":memory:")
    query = sql
    return conn.execute(query).fetchall()
""",
    })
    [violation] = fired(result, "TAINT-SQL")
    assert "not verified" in violation.message
    assert "'sql'" in violation.message


def test_taint_source_annotation_taints_callers(tmp_path):
    # dequeue() is annotated as a source (queue hand-off breaks the
    # static chain); its caller receives tainted data and executes it.
    source = """\
import sqlite3

# taint: source (dequeues requests produced by the HTTP thread)
def dequeue():
    return "SELECT 1"

def process():
    sql = dequeue()
    conn = sqlite3.connect(":memory:")
    return conn.execute(sql).fetchall()
"""
    result = check_tree(tmp_path, {"pipeline/worker.py": source})
    [violation] = fired(result, "TAINT-SQL")
    assert "tainted SQL" in violation.message

    quiet = source.replace(
        "# taint: source (dequeues requests produced by the HTTP thread)\n", ""
    )
    result = check_tree(tmp_path / "twin", {"pipeline/worker.py": quiet})
    assert fired(result, "TAINT-SQL") == []


# ---------------------------------------------------------------- LAYERING

_LAYERS_TOML = """\
[[layers]]
name = "low"
modules = ["repro.db"]

[[layers]]
name = "high"
modules = ["repro.serving"]

[[layers]]
name = "root"
modules = ["repro"]
"""


def layered_tree(tmp_path: Path, files: dict[str, str], toml: str = _LAYERS_TOML):
    (tmp_path / "analysis-layers.toml").write_text(toml)
    return check_tree(tmp_path, files)


def test_layering_allows_downward_and_intra_layer_imports(tmp_path):
    result = layered_tree(tmp_path, {
        "__init__.py": "",
        "db/store.py": "x = 1\n",
        "db/extra.py": "from repro.db.store import x\n",
        "serving/app.py": "from repro.db.store import x\n",
    })
    assert fired(result, "LAYERING") == []


def test_layering_flags_back_edge(tmp_path):
    result = layered_tree(tmp_path, {
        "__init__.py": "",
        "db/store.py": "from repro.serving.app import handler\n",
        "serving/app.py": "handler = object()\n",
    })
    [violation] = fired(result, "LAYERING")
    assert violation.path == "repro/db/store.py"
    assert "back-edge" in violation.message


def test_layering_flags_lazy_back_edge(tmp_path):
    result = layered_tree(tmp_path, {
        "__init__.py": "",
        "db/store.py": """\
def get():
    from repro.serving.app import handler
    return handler
""",
        "serving/app.py": "handler = object()\n",
    })
    [violation] = fired(result, "LAYERING")
    assert "lazy" in violation.message


def test_layering_flags_unlisted_module(tmp_path):
    result = layered_tree(tmp_path, {
        "__init__.py": "",
        "db/store.py": "x = 1\n",
        "serving/app.py": "x = 1\n",
        "mystery/new_thing.py": "x = 1\n",
    })
    [violation] = fired(result, "LAYERING")
    assert "repro.mystery.new_thing" in violation.message
    assert "no layer entry" in violation.message


def test_layering_flags_stale_config_entry(tmp_path):
    toml = _LAYERS_TOML + """
[[layers]]
name = "ghost"
modules = ["repro.ghost"]
"""
    result = layered_tree(
        tmp_path,
        {
            "__init__.py": "",
            "db/store.py": "x = 1\n",
            "serving/app.py": "x = 1\n",
        },
        toml,
    )
    stale = [v for v in fired(result, "LAYERING") if "stale" in v.message]
    assert len(stale) == 1
    assert "repro.ghost" in stale[0].message


def test_layering_silent_without_config(tmp_path):
    result = check_tree(tmp_path, {
        "__init__.py": "",
        "db/store.py": "from repro.serving.app import handler\n",
        "serving/app.py": "handler = object()\n",
    })
    assert fired(result, "LAYERING") == []


def test_layers_toml_fallback_parser_matches_tomllib():
    text = (REPO_ROOT / "analysis-layers.toml").read_text()
    import tomllib

    assert _parse_layers_fallback(text) == list(
        tomllib.loads(text)["layers"]
    )
    assert parse_layers_toml(text) == list(tomllib.loads(text)["layers"])


def test_layering_longest_prefix_wins():
    # The committed config places evaluation.difficulty below spider,
    # the rest of evaluation above it.
    layers = parse_layers_toml((REPO_ROOT / "analysis-layers.toml").read_text())
    index = {
        entry: i
        for i, layer in enumerate(layers)
        for entry in layer["modules"]
    }
    assert index["repro.evaluation.difficulty"] < index["repro.spider"]
    assert index["repro.spider"] < index["repro.evaluation"]


# ------------------------------------------------------------ DEADLINE-PROP

_DEADLINE_FIRE = """\
def query(sql, timeout_s=None):
    return sql

def outer(sql, timeout_s=None):
    return query(sql)
"""

_DEADLINE_QUIET = """\
def query(sql, timeout_s=None):
    return sql

def outer(sql, timeout_s=None):
    return query(sql, timeout_s=timeout_s)
"""

_DEADLINE_RENAMED = """\
def query(sql, timeout_ms=None):
    return sql

def outer(sql, budget_s=None):
    millis = budget_s * 1000.0
    return query(sql, timeout_ms=millis)
"""


def test_deadline_fires_when_budget_dropped(tmp_path):
    result = check_tree(tmp_path, {"db/exec.py": _DEADLINE_FIRE})
    [violation] = fired(result, "DEADLINE-PROP")
    assert "'timeout_s'" in violation.message
    assert "dropped" in violation.message


def test_deadline_quiet_when_forwarded(tmp_path):
    result = check_tree(tmp_path, {"db/exec.py": _DEADLINE_QUIET})
    assert fired(result, "DEADLINE-PROP") == []


def test_deadline_quiet_when_forwarded_renamed_and_converted(tmp_path):
    result = check_tree(tmp_path, {"db/exec.py": _DEADLINE_RENAMED})
    assert fired(result, "DEADLINE-PROP") == []


def test_deadline_ignores_callees_without_deadline_params(tmp_path):
    result = check_tree(tmp_path, {"db/exec.py": """\
def fmt(sql):
    return sql

def outer(sql, timeout_s=None):
    return fmt(sql)
"""})
    assert fired(result, "DEADLINE-PROP") == []


def test_deadline_exempts_init(tmp_path):
    result = check_tree(tmp_path, {"db/exec.py": """\
def query(sql, timeout_s=None):
    return sql

class Holder:
    def __init__(self, timeout_s=None):
        self.cached = query("SELECT 1")
"""})
    assert fired(result, "DEADLINE-PROP") == []


# ------------------------------------------- real-tree mutation guarantees


def _mutated_copy(tmp_path: Path, relpath: str, old: str, new: str) -> Path:
    root = tmp_path / "tree"
    shutil.copytree(
        REAL_TREE, root / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    target = root / "repro" / relpath
    source = target.read_text()
    assert old in source, f"mutation anchor missing in {relpath}"
    target.write_text(source.replace(old, new))
    return root


def test_mutation_removing_policy_gate_from_executor_fails_taint(tmp_path):
    root = _mutated_copy(
        tmp_path,
        "db/executor.py",
        """    if policy is not None:
        policy.check_sql(
            sql,
            database_id=database.schema.name,
            tenant_id=tenant_id,
            schema=database.schema,
        )
""",
        "",
    )
    result = analyze_paths([root])
    messages = [v.message for v in fired(result, "TAINT-SQL")]
    assert any("not verified" in m for m in messages), messages
    assert any("tainted SQL" in m for m in messages), messages


def test_mutation_bypassing_executor_in_service_fails_taint(tmp_path):
    root = _mutated_copy(
        tmp_path,
        "serving/service.py",
        """                response.rows = execute_with_budget(
                    runtime.database, target, timeout_s=None
                )""",
        "                response.rows = runtime.database.execute(target)",
    )
    result = analyze_paths([root])
    violations = fired(result, "TAINT-SQL")
    assert any(v.path == "repro/serving/service.py" for v in violations)


def test_real_tree_has_no_whole_program_findings():
    result = analyze_paths([REAL_TREE])
    for rule in ("TAINT-SQL", "LAYERING", "DEADLINE-PROP"):
        assert fired(result, rule) == []


# ------------------------------------------- parse-once + CI time budget


def test_each_file_parsed_exactly_once_with_all_rules(tmp_path, monkeypatch):
    write_tree(tmp_path, {
        "serving/routes.py": _ROUTES,
        "db/runner.py": _SINK_MODULE_SANITIZED,
        "db/exec.py": _DEADLINE_QUIET,
    })
    real_parse = ast.parse
    calls = []

    def counting_parse(source, *args, **kwargs):
        calls.append(1)
        return real_parse(source, *args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    result = analyze_paths([tmp_path])
    assert result.files_checked == 3
    assert result.files_parsed == 3
    assert len(calls) == 3  # one parse per file, shared by all 9 rules


def test_real_tree_analysis_fits_ci_budget():
    start = time.monotonic()
    result = analyze_paths([REAL_TREE])
    elapsed = time.monotonic() - start
    assert result.files_parsed == result.files_checked
    # The whole-program pass shares one parsed AST per file; a full run
    # over the tree must stay well inside the CI job's budget.
    assert elapsed < 60.0, f"analysis took {elapsed:.1f}s"


# --------------------------------------------------------- output formats


def test_cli_json_format(tmp_path, capsys):
    write_tree(tmp_path, {
        "serving/routes.py": _ROUTES,
        "db/runner.py": _SINK_MODULE_UNSANITIZED,
    })
    code = analysis_main([
        str(tmp_path), "--format", "json",
        "--baseline", str(tmp_path / "baseline.json"),
    ])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is False
    assert document["files_checked"] == 2
    [violation] = [
        v for v in document["violations"] if v["rule"] == "TAINT-SQL"
    ]
    assert violation["path"] == "repro/db/runner.py"
    assert violation["fingerprint"]


def test_cli_github_format(tmp_path, capsys):
    write_tree(tmp_path, {
        "serving/routes.py": _ROUTES,
        "db/runner.py": _SINK_MODULE_UNSANITIZED,
    })
    code = analysis_main([
        str(tmp_path), "--format", "github",
        "--baseline", str(tmp_path / "baseline.json"),
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "title=TAINT-SQL" in out


def test_cli_text_format_still_default(tmp_path, capsys):
    write_tree(tmp_path, {"db/clean.py": "x = 1\n"})
    code = analysis_main([
        str(tmp_path), "--baseline", str(tmp_path / "baseline.json"),
    ])
    assert code == 0
    assert "clean:" in capsys.readouterr().out


# -------------------------------------------- refactor regression coverage


def test_metrics_shim_preserves_identity():
    import repro.metrics as new
    import repro.serving.metrics as old

    assert old.MetricsRegistry is new.MetricsRegistry
    assert old.Counter is new.Counter
    assert old.render_snapshot_text is new.render_snapshot_text


def test_exponential_backoff_reexport_preserves_identity():
    from repro.cluster.health import ExponentialBackoff as old
    from repro.concurrency import ExponentialBackoff as new

    assert old is new


def test_superlative_keywords_reexport_preserves_identity():
    from repro.candidates.heuristics import SUPERLATIVE_KEYWORDS as a
    from repro.preprocessing.hints import SUPERLATIVE_KEYWORDS as b
    from repro.preprocessing import SUPERLATIVE_KEYWORDS as c

    assert a is b is c
    from repro.candidates.heuristics import question_word_candidates

    values = [v.value for v in question_word_candidates(["the", "oldest"])]
    assert 1 in values


def test_watcher_snapshots_table_names_containing_quotes(tmp_path):
    from repro.evolve.watcher import snapshot_connection

    connection = sqlite3.connect(":memory:")
    connection.execute('CREATE TABLE "we""ird" (x INTEGER)')
    connection.execute('INSERT INTO "we""ird" VALUES (1)')
    snapshot = snapshot_connection(connection)
    [table] = snapshot.tables
    assert table.name == 'we"ird'
    assert table.row_count == 1


def test_service_fake_runtime_path_goes_through_budgeted_executor():
    from repro.db.database import Database
    from repro.schema.model import Schema
    from repro.serving.service import TranslationService

    schema = Schema(name="t", tables=())
    database = Database.create(schema)
    runtime = types.SimpleNamespace(database=database)
    service = types.SimpleNamespace(
        _execution_errors=types.SimpleNamespace(inc=lambda: None)
    )
    response = types.SimpleNamespace(rows=None, error=None, policy=None)
    TranslationService._execute_rows(
        service, runtime, response, sql="SELECT 1"
    )
    assert response.rows == [(1,)]
    assert response.error is None

    response = types.SimpleNamespace(rows=None, error=None, policy=None)
    TranslationService._execute_rows(
        service, runtime, response, sql="SELECT 1; DROP TABLE x"
    )
    assert response.rows is None
    assert "multiple statements" in response.error
