"""Tests for beam-search decoding."""

from __future__ import annotations

import pytest

from repro.config import ModelConfig
from repro.errors import ModelError
from repro.model import ValueNetModel, beam_decode, build_vocabulary
from repro.model.supervision import steps_to_tree
from repro.preprocessing import Preprocessor
from repro.spider import CorpusConfig, generate_corpus

TINY = ModelConfig(
    dim=32, num_layers=1, num_heads=2, ff_dim=48, summary_hidden=16,
    decoder_hidden=32, pointer_hidden=24, dropout=0.0, word_dropout=0.0,
)


@pytest.fixture(scope="module")
def model():
    vocab = build_vocabulary(
        ["how many students are there", "list all students from france"] * 4,
        [], ["France"], vocab_size=200,
    )
    return ValueNetModel(vocab, TINY)


class TestBeamDecode:
    def test_returns_complete_grammar_sequence(self, model, pets_db):
        pre = Preprocessor(pets_db).run("How many students are there?")
        encoded = model.encode(pre, pets_db.schema)
        steps = beam_decode(model.decoder, encoded, beam_size=3)
        tree = steps_to_tree(steps, pets_db.schema, pre.candidates)
        tree.validate()

    def test_beam_one_matches_greedy(self, model, pets_db):
        pre = Preprocessor(pets_db).run("List the students from France")
        greedy = model.predict(pre, pets_db.schema, beam_size=1).to_sexpr()
        beam = model.predict(pre, pets_db.schema, beam_size=2)
        beam.validate()
        # beam>=1 must at least contain the greedy hypothesis, so its score
        # is >= the greedy one; the trees may legitimately differ, but both
        # are valid grammar products
        assert isinstance(greedy, str)

    def test_beam_score_not_worse_than_greedy(self, model, pets_db):
        """The greedy sequence is always in the beam, so the beam's best
        total log-probability can never be lower."""
        import numpy as np

        from repro.nn.functional import masked_log_softmax, log_softmax
        from repro.semql.actions import ActionType, GRAMMAR_ACTION_LIST
        from repro.semql.tree import GrammarState

        pre = Preprocessor(pets_db).run("How many students are there?")
        encoded = model.encode(pre, pets_db.schema)

        def sequence_logprob(steps):
            decoder = model.decoder
            decoder.eval()
            state = decoder._initial_state(encoded)
            prev = decoder.start_embedding
            grammar = GrammarState()
            total = 0.0
            for step in steps:
                h, state = decoder._step(prev, state, encoded)
                if step.kind == "grammar":
                    logits = decoder.sketch_head(h)
                    mask = decoder._grammar_mask(
                        grammar.expected_type(), encoded.num_values
                    )
                    total += float(masked_log_softmax(logits, mask).data[step.target])
                    grammar.advance_grammar(GRAMMAR_ACTION_LIST[step.target])
                else:
                    logits = decoder._head_logits(step.kind, h, encoded)
                    total += float(log_softmax(logits).data[step.target])
                    grammar.advance_pointer(ActionType(step.kind))
                prev = decoder._feed_embedding(step.kind, step.target, encoded)
            return total

        greedy_steps = model.decoder.decode(encoded)
        beam_steps = beam_decode(model.decoder, encoded, beam_size=4)
        # Compare raw log-probs of both sequences (before length norm).
        assert sequence_logprob(beam_steps) >= sequence_logprob(greedy_steps) - 1e-6 or \
            len(beam_steps) != len(greedy_steps)

    def test_invalid_beam_size(self, model, pets_db):
        pre = Preprocessor(pets_db).run("How many students are there?")
        encoded = model.encode(pre, pets_db.schema)
        with pytest.raises(ValueError):
            beam_decode(model.decoder, encoded, beam_size=0)

    def test_deterministic(self, model, pets_db):
        pre = Preprocessor(pets_db).run("students older than 20")
        a = model.predict(pre, pets_db.schema, beam_size=3).to_sexpr()
        b = model.predict(pre, pets_db.schema, beam_size=3).to_sexpr()
        assert a == b


@pytest.fixture(scope="module")
def dev_setup():
    corpus = generate_corpus(CorpusConfig(train_per_domain=8, dev_per_domain=4))
    vocab = build_vocabulary(
        [e.question for e in corpus.train],
        [corpus.schema(d) for d in corpus.train_domains],
        [str(v) for e in corpus.train for v in e.values],
        vocab_size=600,
    )
    yield corpus, ValueNetModel(vocab, TINY)
    corpus.close()


class TestBeamGreedyDifferential:
    """beam_size=1 must reproduce the greedy decoder step for step.

    This pins down the two historically divergent details: tie-breaking
    (argmax takes the first maximal index; a reversed argsort took the
    last) and the greedy decoder's recursion cap inside its budget
    policy.  Run over every dev example of a synthetic corpus so all
    grammar branches (aggregates, filters, ordering, compounds) get
    exercised, not just one hand-picked question.
    """

    def test_beam_one_reproduces_greedy_on_dev_set(self, dev_setup):
        corpus, model = dev_setup
        model.eval()
        checked = 0
        for domain in corpus.dev_domains:
            db = corpus.database(domain)
            schema = db.schema
            preprocessor = Preprocessor(db)
            column_to_table = [
                None if column.is_star() else schema.table_index(column.table)
                for column in schema.all_columns()
            ]
            for example in corpus.dev:
                if example.db_id != domain:
                    continue
                pre = preprocessor.run(example.question)
                encoded = model.encode(pre, schema)

                def outcome(decode):
                    try:
                        return decode()
                    except ModelError:
                        # Failure parity: messages differ by design
                        # (greedy names the cause, beam reports an empty
                        # beam), so compare only that both failed.
                        return "ModelError"

                greedy = outcome(lambda: model.decoder.decode(
                    encoded, column_to_table=column_to_table
                ))
                beam = outcome(lambda: beam_decode(
                    model.decoder, encoded, beam_size=1,
                    column_to_table=column_to_table,
                ))
                assert beam == greedy, (
                    f"beam_size=1 diverged from greedy on {example.question!r} "
                    f"({domain})"
                )
                checked += 1
        assert checked == len(corpus.dev)
        assert checked >= 10
