"""Shared fixtures: the paper's running-example schema and database."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.db import Database

# Wall-clock deadlines make property tests flaky on loaded CI machines;
# the generators here are all CPU-deterministic, so disable them.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")
from repro.schema import Column, ColumnType, ForeignKey, Schema, SchemaGraph, Table


@pytest.fixture
def pets_schema() -> Schema:
    """The paper's Fig. 1 schema: student / has_pet / pet."""
    student = Table(
        "student",
        (
            Column("stuid", "student", ColumnType.NUMBER, is_primary_key=True),
            Column("name", "student", ColumnType.TEXT),
            Column("age", "student", ColumnType.NUMBER),
            Column("home_country", "student", ColumnType.TEXT),
            Column("sex", "student", ColumnType.TEXT),
        ),
    )
    pet = Table(
        "pet",
        (
            Column("petid", "pet", ColumnType.NUMBER, is_primary_key=True),
            Column("pet_type", "pet", ColumnType.TEXT),
            Column("pet_age", "pet", ColumnType.NUMBER),
            Column("weight", "pet", ColumnType.NUMBER),
        ),
    )
    has_pet = Table(
        "has_pet",
        (
            Column("stuid", "has_pet", ColumnType.NUMBER),
            Column("petid", "has_pet", ColumnType.NUMBER),
        ),
    )
    return Schema(
        "pets",
        [student, pet, has_pet],
        [
            ForeignKey("has_pet", "stuid", "student", "stuid"),
            ForeignKey("has_pet", "petid", "pet", "petid"),
        ],
    )


@pytest.fixture
def pets_graph(pets_schema) -> SchemaGraph:
    return SchemaGraph(pets_schema)


@pytest.fixture
def pets_db(pets_schema) -> Database:
    """A populated in-memory pets database."""
    db = Database.create(pets_schema)
    db.insert_rows(
        "student",
        [
            (1, "Ann Miller", 22, "France", "F"),
            (2, "Bob Smith", 19, "France", "M"),
            (3, "Cid Rossi", 25, "Italy", "M"),
            (4, "Dana Levi", 21, "Spain", "F"),
        ],
    )
    db.insert_rows(
        "pet",
        [
            (10, "Dog", 3, 12.0),
            (11, "Cat", 1, 3.5),
            (12, "Dog", 7, 20.0),
        ],
    )
    db.insert_rows("has_pet", [(1, 10), (3, 11), (4, 12)])
    yield db
    db.close()
