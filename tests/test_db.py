"""Unit tests for repro.db: database wrapper, introspection, executor."""

from __future__ import annotations

import threading
import time

import pytest

from repro.db import (
    Database,
    QueryTimeoutError,
    execute_and_compare,
    execute_with_budget,
    gold_orders_rows,
    introspect_schema,
    normalize_rows,
    rows_equal,
)
from repro.errors import ExecutionError, SchemaError
from repro.schema import Column, ColumnType, Schema, Table


class TestDatabase:
    def test_create_and_count(self, pets_db):
        assert pets_db.row_count("student") == 4
        assert pets_db.row_count("pet") == 3

    def test_execute_rows(self, pets_db):
        rows = pets_db.execute("SELECT name FROM student WHERE age > 21 ORDER BY name")
        assert rows == [("Ann Miller",), ("Cid Rossi",)]

    def test_execute_bad_sql_raises(self, pets_db):
        with pytest.raises(ExecutionError):
            pets_db.execute("SELECT nope FROM student")

    def test_max_rows_guard(self, pets_db):
        with pytest.raises(ExecutionError):
            pets_db.execute("SELECT * FROM student, pet, has_pet", max_rows=5)

    def test_column_values(self, pets_db):
        column = pets_db.schema.column("student", "home_country")
        values = pets_db.column_values(column)
        assert sorted(set(values)) == ["France", "Italy", "Spain"]

    def test_column_values_star_raises(self, pets_db):
        with pytest.raises(SchemaError):
            pets_db.column_values(pets_db.schema.star_column)

    def test_contains_value_case_insensitive(self, pets_db):
        column = pets_db.schema.column("student", "home_country")
        assert pets_db.contains_value(column, "france")
        assert not pets_db.contains_value(column, "atlantis")

    def test_contains_numeric_value(self, pets_db):
        column = pets_db.schema.column("student", "age")
        assert pets_db.contains_value(column, 22)
        assert not pets_db.contains_value(column, 99)

    def test_insert_bad_shape_raises(self, pets_db):
        with pytest.raises(ExecutionError):
            pets_db.insert_rows("student", [(1, "only-two")])

    def test_file_database_roundtrip(self, pets_schema, tmp_path):
        path = tmp_path / "pets.sqlite"
        db = Database.create(pets_schema, path)
        db.insert_rows("student", [(9, "Zoe", 30, "France", "F")])
        db.close()
        reopened = Database.open(path, pets_schema)
        assert reopened.row_count("student") == 1
        reopened.close()

    def test_context_manager(self, pets_schema):
        with Database.create(pets_schema) as db:
            assert db.row_count("student") == 0


class TestThreadSafety:
    """One Database shared across a worker pool (serving requirement)."""

    @staticmethod
    def _hammer(db, errors, results):
        try:
            for _ in range(25):
                rows = db.execute(
                    "SELECT name FROM student WHERE age > 20 ORDER BY name"
                )
                results.append(tuple(rows))
                count = db.row_count("pet")
                assert count == 3, count
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    def _run_threads(self, db):
        errors: list = []
        results: list = []
        threads = [
            threading.Thread(target=self._hammer, args=(db, errors, results))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        expected = (("Ann Miller",), ("Cid Rossi",), ("Dana Levi",))
        assert set(results) == {expected}
        assert len(results) == 8 * 25

    def test_in_memory_database_shared_across_threads(self, pets_db):
        # Worker threads read a snapshot clone of the in-memory database.
        self._run_threads(pets_db)

    def test_file_database_shared_across_threads(self, pets_schema, tmp_path):
        db = Database.create(pets_schema, tmp_path / "pets.sqlite")
        db.insert_rows(
            "student",
            [
                (1, "Ann Miller", 22, "France", "F"),
                (2, "Bob Smith", 19, "France", "M"),
                (3, "Cid Rossi", 25, "Italy", "M"),
                (4, "Dana Levi", 21, "Spain", "F"),
            ],
        )
        db.insert_rows("pet", [(10, "Dog", 3, 12.0), (11, "Cat", 1, 3.5),
                               (12, "Dog", 7, 20.0)])
        try:
            self._run_threads(db)
        finally:
            db.close()

    def test_owner_thread_keeps_primary_connection(self, pets_db):
        assert pets_db.connection is pets_db.connection

    def test_close_then_use_raises(self, pets_schema):
        db = Database.create(pets_schema)
        db.close()
        with pytest.raises(ExecutionError):
            db.execute("SELECT 1")


class TestIntrospection:
    def test_introspects_tables_columns_pks_fks(self, pets_schema, tmp_path):
        path = tmp_path / "pets.sqlite"
        Database.create(pets_schema, path).close()
        db = Database.open(path)  # schema omitted -> introspection
        schema = db.schema
        assert {t.name for t in schema.tables} == {"student", "pet", "has_pet"}
        assert schema.column("student", "stuid").is_primary_key
        assert schema.column("pet", "weight").column_type is ColumnType.NUMBER
        fk_pairs = {
            (fk.source_table, fk.source_column, fk.target_table, fk.target_column)
            for fk in schema.foreign_keys
        }
        assert ("has_pet", "stuid", "student", "stuid") in fk_pairs
        db.close()

    def test_empty_database_raises(self, tmp_path):
        import sqlite3

        connection = sqlite3.connect(tmp_path / "empty.sqlite")
        with pytest.raises(SchemaError):
            introspect_schema(connection)


class TestResultComparison:
    def test_normalize_integral_floats(self):
        assert normalize_rows([(3.0, "x")]) == [(3, "x")]

    def test_multiset_semantics(self):
        assert rows_equal([(1,), (2,), (1,)], [(2,), (1,), (1,)])
        assert not rows_equal([(1,), (1,)], [(1,)])

    def test_order_matters_flag(self):
        assert not rows_equal([(1,), (2,)], [(2,), (1,)], order_matters=True)
        assert rows_equal([(1,), (2,)], [(2,), (1,)], order_matters=False)

    def test_execute_and_compare_correct(self, pets_db):
        outcome = execute_and_compare(
            pets_db,
            "SELECT name FROM student WHERE age > 21",
            "SELECT name FROM student WHERE age >= 22",
        )
        assert outcome.correct

    def test_execute_and_compare_wrong(self, pets_db):
        outcome = execute_and_compare(
            pets_db,
            "SELECT name FROM student WHERE age > 25",
            "SELECT name FROM student WHERE age > 21",
        )
        assert not outcome.correct
        assert outcome.predicted_error is None

    def test_predicted_failure_is_incorrect(self, pets_db):
        outcome = execute_and_compare(
            pets_db, "SELECT broken FROM student", "SELECT name FROM student"
        )
        assert not outcome.correct
        assert outcome.predicted_failed

    def test_gold_failure_recorded(self, pets_db):
        outcome = execute_and_compare(
            pets_db, "SELECT name FROM student", "SELECT broken FROM student"
        )
        assert not outcome.correct
        assert outcome.gold_error is not None

    def test_gold_orders_rows_top_level_only(self):
        assert gold_orders_rows("SELECT a FROM t ORDER BY a")
        assert not gold_orders_rows(
            "SELECT a FROM t WHERE x IN (SELECT b FROM u ORDER BY b)"
        )
        assert not gold_orders_rows("SELECT a FROM t")

    def test_gold_orders_rows_literal_containing_order_by(self):
        # 'order by' inside a string literal must not count as a clause.
        assert not gold_orders_rows("SELECT a FROM t WHERE x = 'order by'")
        assert not gold_orders_rows('SELECT a FROM t WHERE x = "ORDER BY a"')

    def test_gold_orders_rows_parens_in_literals_do_not_miscount_depth(self):
        # A '(' inside a literal used to push depth to 1, hiding the real
        # top-level ORDER BY; a ')' used to push it to -1 and un-hide
        # sub-query ones.
        assert gold_orders_rows("SELECT a FROM t WHERE x = '(' ORDER BY a")
        assert gold_orders_rows("SELECT a FROM t WHERE x = ':-)' ORDER BY a")
        assert not gold_orders_rows(
            "SELECT a FROM t WHERE x = ')' "
            "AND y IN (SELECT b FROM u ORDER BY b)"
        )

    def test_gold_orders_rows_doubled_quote_escape(self):
        assert gold_orders_rows(
            "SELECT a FROM t WHERE x = 'it''s (' ORDER BY a"
        )
        assert not gold_orders_rows(
            "SELECT a FROM t WHERE x = 'it''s order by'"
        )

    def test_gold_orders_rows_word_boundary(self):
        # A column whose name merely ends in "order" + " by ..." must not
        # match; unterminated literals consume the rest of the query.
        assert not gold_orders_rows("SELECT preorder bY FROM t")
        assert not gold_orders_rows("SELECT a FROM t WHERE x = 'oops ORDER BY a")

    def test_gold_orders_rows_bracket_identifier(self):
        assert not gold_orders_rows("SELECT [order by] FROM t")
        assert gold_orders_rows("SELECT [weird col] FROM t ORDER BY 1")


class TestExecutionBudget:
    """Per-query wall-clock budget + row cap (repro.db.execute_with_budget)."""

    def test_fast_query_unaffected_by_budget(self, pets_db):
        rows = execute_with_budget(
            pets_db, "SELECT COUNT(*) FROM student", timeout_s=5.0
        )
        assert rows == [(4,)]

    def test_none_timeout_disables_the_timer(self, pets_db):
        rows = execute_with_budget(
            pets_db, "SELECT COUNT(*) FROM student", timeout_s=None
        )
        assert rows == [(4,)]

    def test_runaway_query_interrupted(self, pets_db):
        # An unbounded recursive CTE runs forever without the interrupt.
        runaway = (
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r) "
            "SELECT COUNT(*) FROM r"
        )
        started = time.perf_counter()
        with pytest.raises(QueryTimeoutError):
            execute_with_budget(pets_db, runaway, timeout_s=0.2)
        assert time.perf_counter() - started < 5.0

    def test_row_cap_enforced(self, pets_db):
        with pytest.raises(ExecutionError):
            execute_with_budget(
                pets_db, "SELECT * FROM student", timeout_s=5.0, max_rows=2
            )

    def test_plain_sql_error_not_reported_as_timeout(self, pets_db):
        with pytest.raises(ExecutionError) as excinfo:
            execute_with_budget(pets_db, "SELECT broken FROM student", timeout_s=5.0)
        assert not isinstance(excinfo.value, QueryTimeoutError)

    def test_connection_usable_after_interrupt(self, pets_db):
        runaway = (
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r) "
            "SELECT COUNT(*) FROM r"
        )
        with pytest.raises(QueryTimeoutError):
            execute_with_budget(pets_db, runaway, timeout_s=0.2)
        assert pets_db.execute("SELECT COUNT(*) FROM pet") == [(3,)]
