"""Unit tests for repro.preprocessing: hints and the pipeline."""

from __future__ import annotations

import pytest

from repro.candidates import ValueCandidate
from repro.index import InvertedIndex, ValueLocation
from repro.ner import GazetteerRecognizer, ValueExtractor
from repro.preprocessing import (
    PreprocessedQuestion,
    Preprocessor,
    QuestionHint,
    SchemaHint,
    compute_question_hints,
    compute_schema_hints,
)
from repro.text.tokenizer import tokenize

QUESTION = "How many pets are owned by French students that are older than 20?"


class TestQuestionHints:
    def test_fig6_classification(self, pets_db):
        """The paper's Fig. 6 example token classes."""
        index = InvertedIndex.build(pets_db)
        hints = {
            h.token.text: h.hint
            for h in compute_question_hints(
                tokenize(QUESTION), pets_db.schema, index
            )
        }
        assert hints["many"] is QuestionHint.AGGREGATION
        assert hints["students"] is QuestionHint.TABLE
        assert hints["20"] is QuestionHint.VALUE
        assert hints["owned"] is QuestionHint.NONE

    def test_value_hint_from_base_data(self, pets_db):
        index = InvertedIndex.build(pets_db)
        hints = {
            h.token.text: h.hint
            for h in compute_question_hints(
                tokenize("students from France"), pets_db.schema, index
            )
        }
        assert hints["France"] is QuestionHint.VALUE

    def test_column_beats_value(self, pets_db):
        # a token matching both a column name and base data classifies as
        # COLUMN (the more specific class)
        index = InvertedIndex.build(pets_db)
        hints = {
            h.token.text: h.hint
            for h in compute_question_hints(
                tokenize("what is the age"), pets_db.schema, index
            )
        }
        assert hints["age"] is QuestionHint.COLUMN

    def test_superlative_keyword(self, pets_db):
        hints = {
            h.token.text: h.hint
            for h in compute_question_hints(
                tokenize("the oldest student"), pets_db.schema, None
            )
        }
        assert hints["oldest"] is QuestionHint.SUPERLATIVE

    def test_stemming_matches_plurals(self, pets_db):
        hints = {
            h.token.text: h.hint
            for h in compute_question_hints(
                tokenize("list the weights"), pets_db.schema, None
            )
        }
        assert hints["weights"] is QuestionHint.COLUMN

    def test_no_index_no_value_hints(self, pets_db):
        hints = compute_question_hints(tokenize("France"), pets_db.schema, None)
        assert hints[0].hint is QuestionHint.NONE


class TestSchemaHints:
    def test_fig7_classification(self, pets_db):
        """Exact / partial / value-candidate matches (paper Fig. 7)."""
        tokens = tokenize(QUESTION)
        candidates = [
            ValueCandidate(
                "France", "similarity", (ValueLocation("student", "home_country"),)
            )
        ]
        hints = compute_schema_hints(tokens, pets_db.schema, candidates)
        by_table = dict(zip([t.name for t in pets_db.schema.tables], hints.table_hints))
        assert by_table["student"] is SchemaHint.EXACT_MATCH
        assert by_table["pet"] is SchemaHint.EXACT_MATCH  # 'pets' stems to 'pet'
        assert by_table["has_pet"] is SchemaHint.PARTIAL_MATCH

        by_column = dict(
            zip(
                [c.qualified_name for c in pets_db.schema.all_columns()],
                hints.column_hints,
            )
        )
        assert by_column["student.home_country"] is SchemaHint.VALUE_CANDIDATE_MATCH

    def test_exact_beats_candidate_match(self, pets_db):
        tokens = tokenize("what is the home country of students from France")
        candidates = [
            ValueCandidate(
                "France", "similarity", (ValueLocation("student", "home_country"),)
            )
        ]
        hints = compute_schema_hints(tokens, pets_db.schema, candidates)
        by_column = dict(
            zip(
                [c.qualified_name for c in pets_db.schema.all_columns()],
                hints.column_hints,
            )
        )
        # 'home country' fully mentioned -> EXACT wins over candidate match
        assert by_column["student.home_country"] is SchemaHint.EXACT_MATCH

    def test_alignment_lengths(self, pets_db):
        hints = compute_schema_hints(tokenize("x"), pets_db.schema, [])
        assert len(hints.table_hints) == pets_db.schema.num_tables
        assert len(hints.column_hints) == len(pets_db.schema.all_columns())


class TestPreprocessor:
    @pytest.fixture
    def preprocessor(self, pets_db):
        return Preprocessor(
            pets_db, extractor=ValueExtractor(gazetteer=GazetteerRecognizer())
        )

    def test_full_run_paper_example(self, preprocessor):
        pre = preprocessor.run(QUESTION)
        assert isinstance(pre, PreprocessedQuestion)
        values = {str(c.value) for c in pre.candidates}
        assert "France" in values  # via similarity from "French"
        assert "20" in values

    def test_run_records_timings(self, preprocessor):
        timings: dict[str, float] = {}
        preprocessor.run(QUESTION, timings=timings)
        assert timings["preprocessing"] >= 0
        assert timings["value_lookup"] >= 0

    def test_light_mode_locates_gold_values(self, preprocessor):
        pre = preprocessor.run_light(QUESTION, ["France", 20])
        [france, twenty] = pre.candidates
        assert france.source == "gold"
        assert ValueLocation("student", "home_country") in france.locations
        assert twenty.value == 20

    def test_light_mode_dedupes(self, preprocessor):
        pre = preprocessor.run_light("q", ["France", "france"])
        assert len(pre.candidates) == 1

    def test_words_property(self, preprocessor):
        pre = preprocessor.run("How many pets?")
        assert pre.words == ["How", "many", "pets", "?"]

    def test_medium_value_recovered(self, preprocessor):
        """Case variation ('france') still finds the stored 'France'."""
        pre = preprocessor.run("students from france")
        assert any(c.value == "France" for c in pre.candidates)

    def test_gender_heuristic_flows_through(self, preprocessor):
        pre = preprocessor.run("How many female students are there?")
        values = {str(c.value) for c in pre.candidates}
        assert "F" in values
