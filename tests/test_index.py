"""Unit and property tests for repro.index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    BlockedValuePool,
    InvertedIndex,
    SimilaritySearcher,
    ValueLocation,
    normalize_value,
)
from repro.text.distance import damerau_levenshtein


class TestNormalizeValue:
    def test_strings_lowered(self):
        assert normalize_value("  France ") == "france"

    def test_integral_floats_collapse(self):
        assert normalize_value(3.0) == "3"
        assert normalize_value(3.5) == "3.5"

    def test_ints(self):
        assert normalize_value(42) == "42"


class TestInvertedIndex:
    @pytest.fixture
    def index(self, pets_db):
        return InvertedIndex.build(pets_db)

    def test_lookup_exact(self, index):
        locations = index.lookup("France")
        assert ValueLocation("student", "home_country") in locations

    def test_lookup_case_insensitive(self, index):
        assert index.lookup("france") == index.lookup("FRANCE")

    def test_lookup_missing(self, index):
        assert index.lookup("Atlantis") == set()

    def test_contains(self, index):
        assert index.contains("Dog")
        assert not index.contains("Unicorn")

    def test_original_forms(self, index):
        assert "France" in index.original_forms("france")

    def test_numeric_columns_tracked(self, index):
        age = ValueLocation("student", "age")
        assert index.is_numeric_column(age)
        assert age not in index.text_locations()

    def test_numeric_values_indexed_for_lookup(self, index):
        # numbers are findable (validation) even if not in the text pool
        assert index.lookup(22)

    def test_values_in_column_distinct(self, index):
        values = index.values_in_column(ValueLocation("pet", "pet_type"))
        assert sorted(values) == ["Cat", "Dog"]  # distinct, original case

    def test_iter_text_values(self, index):
        pairs = list(index.iter_text_values())
        assert ("France", ValueLocation("student", "home_country")) in pairs

    def test_add_value_manual(self):
        index = InvertedIndex()
        location = ValueLocation("t", "c")
        index.add_value("Hello", location)
        assert index.lookup("hello") == {location}

    def test_num_distinct_values(self, index):
        assert index.num_distinct_values > 5


class TestBlocking:
    def test_candidates_superset_of_matches(self):
        values = ["France", "Frankreich", "Greece", "Brazil", "Francia"]
        pool = BlockedValuePool(values)
        candidates = pool.candidates("france", max_distance=2)
        # every true match must be in the candidate set
        for value in values:
            if damerau_levenshtein("france", value.lower()) <= 2:
                assert value in candidates

    def test_length_band_guarantees_recall(self):
        pool = BlockedValuePool(["xrance"])  # differs in first char
        assert "xrance" in pool.candidates("france", max_distance=1)

    @given(
        st.lists(st.text(alphabet="abcdef", min_size=1, max_size=8), max_size=25),
        st.text(alphabet="abcdef", min_size=1, max_size=8),
        st.integers(0, 3),
    )
    @settings(max_examples=80)
    def test_recall_property(self, values, query, max_distance):
        """Blocking never loses a value within the distance bound."""
        pool = BlockedValuePool(values)
        candidates = set(pool.candidates(query, max_distance=max_distance))
        for value in values:
            if damerau_levenshtein(query.lower(), value.lower()) <= max_distance:
                assert value in candidates

    def test_len(self):
        assert len(BlockedValuePool(["a", "b"])) == 2


class TestSimilaritySearcher:
    @pytest.fixture
    def searcher(self, pets_db):
        return SimilaritySearcher(InvertedIndex.build(pets_db))

    def test_typo_recovery(self, searcher):
        matches = searcher.search("Frnace")
        assert matches and matches[0].value == "France"
        assert matches[0].distance == 1

    def test_case_variation(self, searcher):
        matches = searcher.search("france")
        assert matches[0].distance == 0

    def test_results_sorted_by_distance(self, searcher):
        matches = searcher.search("Fran", max_distance=3)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_max_results_cap(self, searcher):
        matches = searcher.search("a", max_distance=10, max_results=2)
        assert len(matches) <= 2

    def test_best_match(self, searcher):
        best = searcher.best_match("Itly")
        assert best is not None and best.value == "Italy"

    def test_no_match_out_of_range(self, searcher):
        assert searcher.best_match("zzzzzzzzz") is None

    def test_similarity_property(self, searcher):
        match = searcher.search("Frnace")[0]
        assert 0.0 < match.similarity <= 1.0

    def test_numbers_not_in_text_pool(self, searcher):
        # similarity search covers text columns only (paper: numbers are
        # their own candidates)
        matches = searcher.search("22", max_distance=0)
        assert all(m.value != "22" for m in matches)
