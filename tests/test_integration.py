"""End-to-end integration tests on a micro corpus.

These tie every subsystem together exactly the way the benchmark harness
does — corpus generation, vocabulary training, pre-processing, model
training (a couple of epochs), Execution-Accuracy evaluation, extraction
coverage and error analysis — at a scale small enough for the unit-test
suite (about a minute in total).
"""

from __future__ import annotations

import pytest

from repro.config import ModelConfig, TrainingConfig
from repro.evaluation import (
    analyze_failures,
    evaluate_pipeline,
    measure_extraction_coverage,
)
from repro.model import (
    Trainer,
    ValueNetModel,
    build_preprocessors,
    build_vocabulary,
    prepare_samples,
)
from repro.ner import GazetteerRecognizer, ValueExtractor
from repro.pipeline import ValueNetLightPipeline, ValueNetPipeline
from repro.spider import CorpusConfig, generate_corpus

MICRO = ModelConfig(
    dim=32, num_layers=1, num_heads=2, ff_dim=64, summary_hidden=24,
    decoder_hidden=64, pointer_hidden=32, dropout=0.05, word_dropout=0.05,
)


@pytest.fixture(scope="module")
def workbench():
    corpus = generate_corpus(CorpusConfig(train_per_domain=25, dev_per_domain=10))
    extractor = ValueExtractor(gazetteer=GazetteerRecognizer())
    preprocessors = build_preprocessors(corpus, extractor)
    vocab = build_vocabulary(
        [e.question for e in corpus.train],
        [corpus.schema(d) for d in corpus.domains],
        [str(v) for e in corpus.train for v in e.values],
        vocab_size=1200,
    )
    model = ValueNetModel(vocab, MICRO)
    samples, _dropped = prepare_samples(
        corpus.train, preprocessors, model, mode="light"
    )
    trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=16))
    history = trainer.train(samples)
    yield corpus, preprocessors, model, history
    corpus.close()


class TestTrainingIntegration:
    def test_loss_decreases(self, workbench):
        _corpus, _pre, _model, history = workbench
        assert history.epochs[-1].mean_loss < history.epochs[0].mean_loss

    def test_light_evaluation_pipeline(self, workbench):
        corpus, preprocessors, model, _history = workbench
        pipelines = {
            db: ValueNetLightPipeline(
                model, corpus.database(db), preprocessor=preprocessors[db]
            )
            for db in corpus.dev_domains
        }
        report = evaluate_pipeline(pipelines, corpus.dev[:20], corpus, light=True)
        assert report.total == 20
        # Even a two-epoch model beats zero on seen-pattern dev questions.
        assert 0.0 <= report.accuracy <= 1.0
        # per-sample structure is complete
        for sample in report.samples:
            assert sample.result.question == sample.example.question

    def test_valuenet_pipeline_runs(self, workbench):
        corpus, preprocessors, model, _history = workbench
        db_id = corpus.dev_domains[0]
        pipeline = ValueNetPipeline(
            model, corpus.database(db_id), preprocessor=preprocessors[db_id]
        )
        example = next(e for e in corpus.dev if e.db_id == db_id)
        result = pipeline.translate(example.question, execute=True)
        # the pipeline must always return a structured result, never raise
        assert result.question == example.question
        if result.sql is not None and result.error is None:
            assert isinstance(result.rows, list)

    def test_error_analysis_on_real_predictions(self, workbench):
        corpus, preprocessors, model, _history = workbench
        pipelines = {
            db: ValueNetLightPipeline(
                model, corpus.database(db), preprocessor=preprocessors[db]
            )
            for db in corpus.dev_domains
        }
        report = evaluate_pipeline(pipelines, corpus.dev[:15], corpus, light=True)
        error_report = analyze_failures(report.samples)
        assert error_report.num_failures == len(report.failures())
        for diagnosis in error_report.diagnoses:
            assert diagnosis.causes  # every failure gets at least one cause

    def test_extraction_coverage_integration(self, workbench):
        corpus, preprocessors, _model, _history = workbench
        examples = [e for e in corpus.train if e.values][:40]
        coverage = measure_extraction_coverage(examples, preprocessors)
        assert coverage.total_samples == len(examples)
        assert 0.3 < coverage.sample_coverage <= 1.0

    def test_training_timings_recorded(self, workbench):
        _corpus, _pre, _model, history = workbench
        for epoch in history.epochs:
            assert epoch.seconds > 0
            assert epoch.num_samples > 0


class TestCheckpointIntegration:
    def test_full_roundtrip_preserves_behaviour(self, workbench, tmp_path):
        corpus, preprocessors, model, _history = workbench
        db_id = corpus.dev_domains[0]
        example = next(e for e in corpus.dev if e.db_id == db_id)
        pre = preprocessors[db_id].run_light(example.question, example.values)
        schema = corpus.schema(db_id)
        before = model.predict(pre, schema).to_sexpr()

        model.save(tmp_path / "checkpoint")
        reloaded = ValueNetModel.load(tmp_path / "checkpoint")
        after = reloaded.predict(pre, schema).to_sexpr()
        assert before == after
