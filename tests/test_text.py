"""Unit and property tests for repro.text."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    Token,
    WordPieceVocab,
    all_ngrams,
    character_ngrams,
    damerau_levenshtein,
    jaro,
    jaro_winkler,
    levenshtein,
    ngrams,
    normalize_whitespace,
    normalized_similarity,
    split_identifier,
    stem,
    tokenize,
    tokenize_words,
)

WORDS = st.text(alphabet="abcdefgh", min_size=0, max_size=12)


class TestTokenizer:
    def test_basic_words_and_punct(self):
        assert tokenize_words("How many pets?") == ["How", "many", "pets", "?"]

    def test_numbers_with_decimals(self):
        tokens = tokenize("weight over 12.5 kg")
        assert [t.text for t in tokens] == ["weight", "over", "12.5", "kg"]
        assert tokens[2].is_number()

    def test_spans_cover_original_text(self):
        text = "Show all flights from 'JFK' in 2010."
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    def test_apostrophes_stay_inside_words(self):
        assert "Kennedy's" in tokenize_words("Kennedy's airport")

    def test_capitalized_detection(self):
        token = tokenize("Paris")[0]
        assert token.is_capitalized()
        assert not tokenize("paris")[0].is_capitalized()

    def test_empty_string(self):
        assert tokenize("") == []

    def test_split_identifier_snake(self):
        assert split_identifier("home_country") == ["home", "country"]

    def test_split_identifier_camel(self):
        assert split_identifier("homeCountry") == ["home", "country"]

    def test_split_identifier_mixed(self):
        assert split_identifier("has-Pet_idX") == ["has", "pet", "id", "x"]

    def test_normalize_whitespace(self):
        assert normalize_whitespace("  a \t b\nc ") == "a b c"

    def test_token_is_word(self):
        assert Token("hello", 0, 5).is_word()
        assert not Token("42", 0, 2).is_word()


class TestStemmer:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("pets", "pet"),
            ("owned", "own"),
            ("flies", "fli"),
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("hopping", "hop"),
            ("relational", "relat"),
            ("rational", "ration"),
            ("happiness", "happi"),
        ],
    )
    def test_known_stems(self, word, expected):
        assert stem(word) == expected

    def test_short_words_unchanged(self):
        assert stem("is") == "is"
        assert stem("a") == "a"

    def test_lowercases(self):
        assert stem("Pets") == "pet"

    def test_non_alpha_passthrough(self):
        assert stem("12.5") == "12.5"

    @given(WORDS)
    def test_idempotent_on_own_output_length(self, word):
        # The stem never grows.
        assert len(stem(word)) <= max(len(word), 2)

    def test_matching_intuition(self):
        # The hint computation relies on plural/singular collapsing.
        assert stem("students") == stem("student")
        assert stem("countries") == stem("country")


class TestDistances:
    def test_levenshtein_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_levenshtein_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_levenshtein_early_exit(self):
        assert levenshtein("aaaaaaa", "bbbbbbb", max_distance=2) > 2

    def test_damerau_transposition(self):
        assert damerau_levenshtein("ca", "ac") == 1
        assert levenshtein("ca", "ac") == 2

    def test_damerau_known(self):
        assert damerau_levenshtein("jfk", "jkf") == 1
        assert damerau_levenshtein("france", "frnace") == 1

    def test_damerau_early_exit_length_gap(self):
        assert damerau_levenshtein("a", "aaaaaa", max_distance=2) > 2

    @given(WORDS, WORDS)
    @settings(max_examples=150)
    def test_damerau_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    @given(WORDS, WORDS)
    @settings(max_examples=150)
    def test_damerau_identity(self, a, b):
        distance = damerau_levenshtein(a, b)
        assert (distance == 0) == (a == b)

    @given(WORDS, WORDS)
    @settings(max_examples=150)
    def test_damerau_upper_bounded_by_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @given(WORDS, WORDS, WORDS)
    @settings(max_examples=80)
    def test_damerau_triangle_inequality(self, a, b, c):
        # Restricted DL violates the triangle inequality only in contrived
        # cases involving repeated transpositions across edits; for our
        # small alphabet strings it should hold with slack 1.
        ab = damerau_levenshtein(a, b)
        bc = damerau_levenshtein(b, c)
        ac = damerau_levenshtein(a, c)
        assert ac <= ab + bc + 1

    def test_jaro_identical(self):
        assert jaro("abc", "abc") == 1.0

    def test_jaro_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_jaro_winkler_prefix_boost(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    @given(WORDS, WORDS)
    @settings(max_examples=100)
    def test_jaro_winkler_in_unit_interval(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    def test_normalized_similarity_case_insensitive(self):
        assert normalized_similarity("France", "FRANCE") == 1.0

    @given(WORDS, WORDS)
    @settings(max_examples=100)
    def test_normalized_similarity_unit_interval(self, a, b):
        assert 0.0 <= normalized_similarity(a, b) <= 1.0


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_too_large(self):
        assert list(ngrams(["a"], 2)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))

    def test_all_ngrams_kennedy_example(self):
        # Paper Section IV-B2: "one trigram, two bigrams, three words".
        grams = all_ngrams(["Kennedy", "International", "Airport"])
        assert len(grams) == 6
        assert grams[0] == ("Kennedy", "International", "Airport")
        assert len([g for g in grams if len(g) == 2]) == 2
        assert len([g for g in grams if len(g) == 1]) == 3

    def test_all_ngrams_longest_first(self):
        lengths = [len(g) for g in all_ngrams(["a", "b", "c", "d"])]
        assert lengths == sorted(lengths, reverse=True)

    def test_character_ngrams(self):
        assert character_ngrams("jfk", 2) == ["jf", "fk"]

    @given(st.lists(WORDS, min_size=1, max_size=6), st.integers(1, 6))
    def test_ngram_count(self, tokens, n):
        expected = max(0, len(tokens) - n + 1)
        assert len(list(ngrams(tokens, n))) == expected


class TestWordPiece:
    @pytest.fixture
    def vocab(self):
        corpus = (
            ["flight"] * 10 + ["flights"] * 5 + ["destination"] * 8
            + ["airport"] * 8 + ["kennedy"] * 4 + ["country"] * 6
            + ["home"] * 6 + ["france"] * 5
        )
        return WordPieceVocab.train(corpus, vocab_size=120)

    def test_special_token_ids(self, vocab):
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.cls_id == 2
        assert vocab.sep_id == 3
        assert vocab.num_id == 4

    def test_known_word_roundtrips(self, vocab):
        ids = vocab.encode_word("flight")
        assert vocab.unk_id not in ids
        rebuilt = "".join(
            vocab.id_to_piece(i).removeprefix("##") for i in ids
        )
        assert rebuilt == "flight"

    def test_unseen_word_uses_pieces(self, vocab):
        ids = vocab.encode_word("francey")
        assert len(ids) >= 1

    def test_numbers_become_num_token(self, vocab):
        assert vocab.encode_word("2010") == [vocab.num_id]
        assert vocab.encode_word("12.5") == [vocab.num_id]

    def test_unknown_characters_fall_back_to_unk(self, vocab):
        ids = vocab.encode_word("zzzz")
        assert all(0 <= i < len(vocab) for i in ids)

    def test_save_load_roundtrip(self, vocab, tmp_path):
        path = tmp_path / "vocab.json"
        vocab.save(path)
        loaded = WordPieceVocab.load(path)
        assert len(loaded) == len(vocab)
        assert loaded.encode_word("destination") == vocab.encode_word("destination")

    @given(st.text(alphabet="abcdefghij", min_size=1, max_size=15))
    @settings(max_examples=60)
    def test_encode_never_fails(self, word):
        corpus = ["abc"] * 5 + ["def"] * 5
        vocab = WordPieceVocab.train(corpus, vocab_size=30)
        ids = vocab.encode_word(word)
        assert ids, "encode_word must always produce at least one piece"
        assert all(0 <= i < len(vocab) for i in ids)

    def test_rejects_bad_special_order(self):
        with pytest.raises(ValueError):
            WordPieceVocab(["[UNK]", "[PAD]"])
