"""End-to-end pipeline tests (with a briefly trained model) and
post-processing unit tests."""

from __future__ import annotations

import pytest

from repro.baselines import HeuristicBaseline
from repro.config import ModelConfig, TrainingConfig
from repro.model import Trainer, ValueNetModel, build_vocabulary, prepare_samples
from repro.pipeline import (
    STAGES,
    StageTimings,
    TimingAggregate,
    ValueNetLightPipeline,
    ValueNetPipeline,
)
from repro.postprocessing import (
    SqlBuilder,
    add_like_wildcards,
    coerce_for_column,
    format_values,
)
from repro.preprocessing import Preprocessor
from repro.schema import Column, ColumnType
from repro.semql import query_to_semql
from repro.sql import parse_sql


class TestValueFormatting:
    def test_coerce_number_strings(self):
        column = Column("age", "t", ColumnType.NUMBER)
        assert coerce_for_column("20", column) == 20
        assert coerce_for_column("20.5", column) == 20.5
        assert coerce_for_column(20.0, column) == 20

    def test_coerce_non_numeric_text_stays(self):
        column = Column("age", "t", ColumnType.NUMBER)
        assert coerce_for_column("abc", column) == "abc"

    def test_text_column_stringifies(self):
        column = Column("name", "t", ColumnType.TEXT)
        assert coerce_for_column(42, column) == "42"

    def test_like_wildcards(self):
        assert add_like_wildcards("Ha") == "%Ha%"
        assert add_like_wildcards("8/%") == "8/%"  # already wildcarded

    def test_format_values_in_tree(self, pets_schema):
        sql = "SELECT name FROM student WHERE age > 20 AND name LIKE '%nn%'"
        tree = query_to_semql(parse_sql(sql, pets_schema), pets_schema)
        # Corrupt the payloads the way a pointer network might.
        from repro.semql.actions import ActionType

        for node in tree.pointer_leaves(ActionType.V):
            node.value = str(node.value).strip("%")
        format_values(tree, pets_schema)
        values = [n.value for n in tree.pointer_leaves(ActionType.V)]
        assert 20 in values
        assert "%nn%" in values

    def test_superlative_limit_coerced(self, pets_schema):
        sql = "SELECT name FROM student ORDER BY age DESC LIMIT 3"
        tree = query_to_semql(parse_sql(sql, pets_schema), pets_schema)
        from repro.semql.actions import ActionType

        superlative = next(
            n for n in tree.walk() if n.action_type is ActionType.SUPERLATIVE
        )
        superlative.children[0].value = "3"
        format_values(tree, pets_schema)
        assert superlative.children[0].value == 3


class TestSqlBuilder:
    def test_build_executes(self, pets_db):
        schema = pets_db.schema
        sql = "SELECT count(*) FROM student WHERE home_country = 'France'"
        tree = query_to_semql(parse_sql(sql, schema), schema)
        built = SqlBuilder(schema).build(tree)
        assert pets_db.execute(built) == [(2,)]

    def test_join_inference_in_build(self, pets_db):
        schema = pets_db.schema
        sql = (
            "SELECT T1.name FROM student AS T1 JOIN has_pet AS T2 ON "
            "T1.stuid = T2.stuid JOIN pet AS T3 ON T2.petid = T3.petid "
            "WHERE T3.pet_type = 'Dog'"
        )
        tree = query_to_semql(parse_sql(sql, schema), schema)
        built = SqlBuilder(schema).build(tree)
        rows = {r[0] for r in pets_db.execute(built)}
        assert rows == {"Ann Miller", "Dana Levi"}


class TestTimings:
    def test_total(self):
        timings = StageTimings(preprocessing=0.1, execution=0.2)
        assert timings.total == pytest.approx(0.3)

    def test_aggregate_stats(self):
        aggregate = TimingAggregate()
        aggregate.add(StageTimings(preprocessing=0.010))
        aggregate.add(StageTimings(preprocessing=0.030))
        assert aggregate.mean_ms("preprocessing") == pytest.approx(20.0)
        assert aggregate.std_ms("preprocessing") == pytest.approx(14.142, rel=1e-3)

    def test_table_rows_cover_stages(self):
        aggregate = TimingAggregate()
        aggregate.add(StageTimings())
        rows = aggregate.table()
        assert [row[0] for row in rows] == list(STAGES)

    def test_aggregate_empty(self):
        aggregate = TimingAggregate()
        assert aggregate.mean_ms("preprocessing") == 0.0
        assert aggregate.std_ms("preprocessing") == 0.0
        assert aggregate.mean_total_ms() == 0.0
        assert aggregate.table() == [(stage, 0.0, 0.0) for stage in STAGES]

    def test_aggregate_single_sample(self):
        aggregate = TimingAggregate()
        aggregate.add(StageTimings(encoder_decoder=0.040, execution=0.010))
        assert aggregate.mean_ms("encoder_decoder") == pytest.approx(40.0)
        assert aggregate.std_ms("encoder_decoder") == 0.0  # undefined -> 0
        assert aggregate.mean_total_ms() == pytest.approx(50.0)

    def test_aggregate_many_samples(self):
        aggregate = TimingAggregate()
        for seconds in (0.010, 0.020, 0.030, 0.040):
            aggregate.add(StageTimings(value_lookup=seconds))
        assert aggregate.mean_ms("value_lookup") == pytest.approx(25.0)
        # Sample standard deviation of [10, 20, 30, 40] ms.
        assert aggregate.std_ms("value_lookup") == pytest.approx(12.9099, rel=1e-4)
        assert aggregate.mean_total_ms() == pytest.approx(25.0)


@pytest.fixture(scope="module")
def trained_setup():
    """A small model trained briefly on pets-style supervision."""
    from repro.db import Database
    from repro.schema import Schema, Table

    # Rebuild the pets DB locally (module-scoped fixture cannot depend on a
    # function-scoped one).
    student = Table(
        "student",
        (
            Column("stuid", "student", ColumnType.NUMBER, is_primary_key=True),
            Column("name", "student", ColumnType.TEXT),
            Column("age", "student", ColumnType.NUMBER),
            Column("home_country", "student", ColumnType.TEXT),
        ),
    )
    schema = Schema("pets", [student])
    db = Database.create(schema)
    db.insert_rows(
        "student",
        [
            (1, "Ann", 22, "France"),
            (2, "Bob", 19, "France"),
            (3, "Cid", 25, "Italy"),
            (4, "Dana", 21, "Spain"),
        ],
    )

    questions = [
        ("How many students are there?", "SELECT count(*) FROM student", []),
        ("List the name of all students.", "SELECT name FROM student", []),
        (
            "List the name of students from France.",
            "SELECT name FROM student WHERE home_country = 'France'",
            ["France"],
        ),
        (
            "List the name of students from Italy.",
            "SELECT name FROM student WHERE home_country = 'Italy'",
            ["Italy"],
        ),
        (
            "List the name of students older than 20.",
            "SELECT name FROM student WHERE age > 20",
            [20],
        ),
        (
            "List the name of students older than 21.",
            "SELECT name FROM student WHERE age > 21",
            [21],
        ),
    ]

    vocab = build_vocabulary(
        [q for q, _s, _v in questions] * 3, [schema], ["France", "Italy"],
        vocab_size=300,
    )
    config = ModelConfig(
        dim=32, num_layers=1, num_heads=2, ff_dim=48, summary_hidden=16,
        decoder_hidden=48, pointer_hidden=24, dropout=0.0, word_dropout=0.0,
    )
    model = ValueNetModel(vocab, config)
    preprocessor = Preprocessor(db)

    from repro.model import TrainSample
    from repro.model.supervision import tree_to_steps

    samples = []
    for question, sql, _values in questions:
        pre = preprocessor.run(question)
        tree = query_to_semql(parse_sql(sql, schema), schema)
        steps = tree_to_steps(tree, schema, pre.candidates)
        assert steps is not None, question
        samples.append(
            TrainSample(
                example=None,  # not needed by the trainer
                pre=pre,
                schema=schema,
                steps=steps,
            )
        )
    trainer = Trainer(
        model,
        TrainingConfig(epochs=30, batch_size=3, encoder_lr=2e-3, decoder_lr=3e-3,
                       connection_lr=2e-3),
    )
    trainer.train(samples)
    yield model, db, preprocessor
    db.close()


class TestEndToEndPipelines:
    def test_valuenet_pipeline_memorized_question(self, trained_setup):
        model, db, preprocessor = trained_setup
        pipeline = ValueNetPipeline(model, db, preprocessor=preprocessor)
        result = pipeline.translate(
            "List the name of students from France.", execute=True
        )
        assert result.succeeded, result.error
        assert result.rows == [("Ann",), ("Bob",)]

    def test_valuenet_generalizes_to_new_value(self, trained_setup):
        model, db, preprocessor = trained_setup
        pipeline = ValueNetPipeline(model, db, preprocessor=preprocessor)
        result = pipeline.translate(
            "List the name of students from Spain.", execute=True
        )
        assert result.succeeded, result.error
        assert result.rows == [("Dana",)]

    def test_light_pipeline_uses_gold_values(self, trained_setup):
        model, db, preprocessor = trained_setup
        pipeline = ValueNetLightPipeline(model, db, preprocessor=preprocessor)
        result = pipeline.translate(
            "List the name of students from Italy.",
            values=["Italy"],
            execute=True,
        )
        assert result.succeeded, result.error
        assert result.rows == [("Cid",)]

    def test_light_pipeline_reports_real_stage_split(self, trained_setup):
        model, db, preprocessor = trained_setup
        pipeline = ValueNetLightPipeline(model, db, preprocessor=preprocessor)
        result = pipeline.translate(
            "List the name of students from Italy.", values=["Italy"]
        )
        # run_light now measures the two stages separately instead of
        # splitting one total 50/50, so an exact tie is (measure-theoretically)
        # impossible for real work.
        assert result.timings.preprocessing > 0
        assert result.timings.preprocessing != result.timings.value_lookup

    def test_timings_populated(self, trained_setup):
        model, db, preprocessor = trained_setup
        pipeline = ValueNetPipeline(model, db, preprocessor=preprocessor)
        result = pipeline.translate("How many students are there?", execute=True)
        assert result.timings.encoder_decoder > 0
        assert result.timings.postprocessing >= 0
        assert result.timings.execution > 0

    def test_result_has_candidates(self, trained_setup):
        model, db, preprocessor = trained_setup
        pipeline = ValueNetPipeline(model, db, preprocessor=preprocessor)
        result = pipeline.translate("students from France")
        assert any(str(c.value) == "France" for c in result.candidates)


class TestHeuristicBaseline:
    def test_count_question(self, pets_db):
        baseline = HeuristicBaseline(pets_db)
        result = baseline.translate("How many students are there?")
        assert result.sql is not None
        assert "COUNT" in result.sql
        assert pets_db.execute(result.sql) == [(4,)]

    def test_filter_question(self, pets_db):
        baseline = HeuristicBaseline(pets_db)
        result = baseline.translate("List the students from France")
        assert result.sql is not None
        rows = pets_db.execute(result.sql)
        assert rows  # found the French students

    def test_always_produces_sql(self, pets_db):
        baseline = HeuristicBaseline(pets_db)
        result = baseline.translate("completely unrelated gibberish")
        assert result.sql is not None
        pets_db.execute(result.sql)
