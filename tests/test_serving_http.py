"""HTTP front-end tests: endpoints, status codes, and the JSON contract."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import DatabaseRuntime, ServingServer, TranslationService


@pytest.fixture
def server(pets_db):
    service = TranslationService(
        [DatabaseRuntime(pets_db, database_id="pets")], workers=2
    ).start()
    server = ServingServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.stop()


def get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, response.read().decode("utf-8")


def post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestHealthz:
    def test_ok(self, server):
        status, body = get(server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["databases"] == ["pets"]


class TestMetrics:
    def test_prometheus_text(self, server):
        post_json(server.url + "/translate", {"question": "How many students?"})
        status, body = get(server.url + "/metrics")
        assert status == 200
        assert "# TYPE serving_requests_total counter" in body
        assert "serving_latency_seconds_bucket" in body

    def test_json_format(self, server):
        status, body = get(server.url + "/metrics?format=json")
        assert status == 200
        snapshot = json.loads(body)
        assert "serving_requests_total" in snapshot


class TestTranslate:
    def test_round_trip_with_execution(self, server):
        status, payload = post_json(server.url + "/translate", {
            "question": "How many students are there?",
            "database_id": "pets",
            "execute": True,
        })
        assert status == 200
        assert payload["sql"] is not None
        assert payload["error"] is None
        assert payload["rows"] == [[4]]
        assert payload["engine"] == "heuristic"
        assert payload["timings_ms"]["preprocessing"] >= 0

    def test_missing_question_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server.url + "/translate", {"nope": 1})
        assert excinfo.value.code == 400

    def test_invalid_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/translate",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_database_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server.url + "/translate", {
                "question": "q", "database_id": "missing",
            })
        assert excinfo.value.code == 404

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_concurrent_http_clients(self, server):
        results: list = [None] * 8
        errors: list = []

        def client(index: int):
            try:
                results[index] = post_json(server.url + "/translate", {
                    "question": f"How many students {index}?",
                })
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(status == 200 for status, _ in results)
        assert all(payload["sql"] for _, payload in results)


class TestReadinessSplit:
    """Liveness vs readiness: /livez is process-up, /readyz gates traffic."""

    def test_livez_always_200(self, server):
        status, body = get(server.url + "/livez")
        assert status == 200
        assert json.loads(body) == {"live": True}

    def test_readyz_200_when_ready(self, server):
        status, body = get(server.url + "/readyz")
        assert status == 200
        assert json.loads(body) == {"ready": True}

    def test_healthz_reports_ready_flag(self, server):
        _, body = get(server.url + "/healthz")
        assert json.loads(body)["ready"] is True


class TestWarmupServer:
    """A server bound before its service exists: live, not ready, shedding."""

    @pytest.fixture
    def cold_server(self, pets_db):
        server = ServingServer(("127.0.0.1", 0), None)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        service = TranslationService(
            [DatabaseRuntime(pets_db, database_id="pets")], workers=2,
            ready=False,
        ).start()
        yield server, service
        server.shutdown()
        server.server_close()
        service.stop()

    def test_unattached_server_is_live_but_not_ready(self, cold_server):
        server, _ = cold_server
        status, _ = get(server.url + "/livez")
        assert status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server.url + "/readyz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["retriable"] is True
        # /healthz stays 200 (detail in the body) so dashboards can poll it.
        status, body = get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "starting"

    def test_unattached_server_sheds_translate(self, cold_server):
        server, _ = cold_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server.url + "/translate", {"question": "hi"})
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["retriable"] is True

    def test_attached_but_warming_service_not_ready(self, cold_server):
        server, service = cold_server
        server.attach(service)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server.url + "/readyz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["reason"] == "service is not ready"

    def test_mark_ready_flips_readyz(self, cold_server):
        server, service = cold_server
        server.attach(service)
        service.mark_ready()
        status, body = get(server.url + "/readyz")
        assert status == 200
        assert json.loads(body) == {"ready": True}
        # And translate traffic flows normally once attached + ready.
        status, payload = post_json(server.url + "/translate", {
            "question": "How many students are there?", "execute": True,
        })
        assert status == 200
        assert payload["rows"] == [[4]]
