"""Tests for repro.tenancy: bucket, quota ledger, DRR queue, registry,
and the admission controller.

The token-bucket and fair-queue tests are property-based (hypothesis):
they drive the bucket with an injected deterministic clock and the queue
with random push/pop schedules, asserting the contracts the subsystem
documents — rate+burst never exceeded over *any* window, refill
monotonicity, work conservation, weighted sharing, starvation freedom,
and per-lane FIFO.
"""

from __future__ import annotations

import json
import os
import queue
import threading
from datetime import datetime, timedelta, timezone

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tenancy import (
    DEFAULT_LANE,
    AuthenticationError,
    FairQueue,
    LaneBacklogFull,
    QuotaExceededError,
    QuotaLedger,
    RateLimitedError,
    TenancyController,
    TenantConfigError,
    TenantRegistry,
    TokenBucket,
)
from repro.tenancy.registry import _parse_config


# --------------------------------------------------------------- TokenBucket


class TestTokenBucket:
    def test_full_burst_available_initially(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        for _ in range(3):
            assert bucket.try_acquire(now=0.0).allowed
        assert not bucket.try_acquire(now=0.0).allowed

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        bucket.try_acquire(now=0.0)
        bucket.try_acquire(now=0.0)
        assert not bucket.try_acquire(now=0.0).allowed
        assert bucket.try_acquire(now=0.5).allowed  # 2/s * 0.5s = 1 token

    def test_retry_after_is_exact(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        assert bucket.try_acquire(now=0.0).allowed
        denied = bucket.try_acquire(now=0.0)
        assert not denied.allowed
        assert denied.retry_after_s == pytest.approx(0.25)
        # Advancing exactly retry_after_s makes the next acquire succeed.
        assert bucket.try_acquire(now=denied.retry_after_s).allowed

    def test_idle_bucket_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=5.0)
        assert bucket.peek(now=1e6) == pytest.approx(5.0)

    def test_backwards_clock_does_not_drain(self):
        bucket = TokenBucket(rate=1.0, burst=4.0)
        bucket.try_acquire(now=100.0)
        before = bucket.peek(now=100.0)
        assert bucket.peek(now=50.0) == pytest.approx(before)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)

    @settings(max_examples=200)
    @given(
        rate=st.floats(min_value=0.5, max_value=50.0),
        burst=st.floats(min_value=1.0, max_value=20.0),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=60
        ),
    )
    def test_never_exceeds_rate_plus_burst_over_any_window(
        self, rate, burst, steps
    ):
        """Over ANY window [s, t]: grants <= burst + rate * (t - s)."""
        bucket = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        grant_times: list[float] = []
        for dt in steps:
            now += dt
            if bucket.try_acquire(now=now).allowed:
                grant_times.append(now)
        for i, start in enumerate(grant_times):
            for j in range(i, len(grant_times)):
                window = grant_times[j] - start
                granted = j - i + 1
                assert granted <= burst + rate * window + 1e-6, (
                    f"{granted} grants in a {window:.3f}s window "
                    f"(rate={rate}, burst={burst})"
                )

    @settings(max_examples=200)
    @given(
        rate=st.floats(min_value=0.5, max_value=50.0),
        burst=st.floats(min_value=1.0, max_value=20.0),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=60
        ),
    )
    def test_refill_is_monotonic_between_acquisitions(self, rate, burst, steps):
        """With no acquisitions, advancing time never loses tokens."""
        bucket = TokenBucket(rate=rate, burst=burst)
        bucket.try_acquire(now=0.0)  # take one so there is room to refill
        now, previous = 0.0, bucket.peek(now=0.0)
        for dt in steps:
            now += dt
            current = bucket.peek(now=now)
            assert current >= previous - 1e-9
            assert current <= burst + 1e-9
            previous = current


# ----------------------------------------------------------------- FairQueue


class TestFairQueue:
    def test_single_lane_fifo(self):
        q = FairQueue()
        for i in range(5):
            q.push("a", i)
        assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_none_key_uses_default_lane(self):
        q = FairQueue()
        q.push(None, "x")
        assert q.backlog(None) == 1
        assert q.lanes() == {DEFAULT_LANE: 1}
        assert q.pop() == "x"

    def test_weighted_sharing_is_proportional(self):
        """Weight-4 'gold' is served ~4 items per weight-1 'bronze' item."""
        q = FairQueue()
        for i in range(40):
            q.push("gold", ("gold", i), weight=4)
            q.push("bronze", ("bronze", i), weight=1)
        first = [q.pop() for _ in range(20)]
        gold = sum(1 for tenant, _ in first if tenant == "gold")
        bronze = 20 - gold
        assert gold == 16 and bronze == 4

    def test_no_starvation_within_one_round(self):
        """Every backlogged lane is served within sum(weights) pops."""
        q = FairQueue()
        weights = {"a": 8, "b": 4, "c": 1}
        for key, weight in weights.items():
            for i in range(30):
                q.push(key, (key, i), weight=weight)
        round_size = sum(weights.values())
        drained = [q.pop() for _ in range(3 * round_size)]
        for start in range(0, len(drained) - round_size, round_size):
            window = {tenant for tenant, _ in drained[start:start + round_size]}
            assert window == set(weights), (
                f"lane starved in window {start}..{start + round_size}"
            )

    def test_global_bound_raises_full(self):
        q = FairQueue(maxsize=2)
        q.push("a", 1)
        q.push("b", 2)
        with pytest.raises(queue.Full):
            q.push("c", 3)

    def test_per_lane_bound_raises_lane_backlog_full(self):
        q = FairQueue(maxsize=10, per_lane_limit=2)
        q.push("a", 1)
        q.push("a", 2)
        with pytest.raises(LaneBacklogFull):
            q.push("a", 3)
        q.push("b", 4)  # other lanes unaffected

    def test_lane_backlog_full_is_a_queue_full(self):
        assert issubclass(LaneBacklogFull, queue.Full)

    def test_pop_timeout_raises_empty(self):
        q = FairQueue()
        with pytest.raises(queue.Empty):
            q.pop(timeout=0.01)

    def test_control_items_win_over_data(self):
        q = FairQueue()
        q.push("a", "data")
        sentinel = object()
        q.push_control(sentinel)
        assert q.pop() is sentinel
        assert q.pop() == "data"

    def test_control_bypasses_bounds(self):
        q = FairQueue(maxsize=1)
        q.push("a", 1)
        q.push_control("stop")  # must not raise
        assert not q.empty()

    def test_returning_lane_forfeits_leftover_deficit(self):
        q = FairQueue()
        q.push("a", 1, weight=8)
        assert q.pop() == 1  # lane drains; unused deficit must vanish
        q.push("a", 2, weight=8)
        q.push("b", 3, weight=1)
        drained = [q.pop(), q.pop()]
        assert set(drained) == {2, 3}

    def test_work_conserving_concurrent(self):
        """pop() never blocks while items remain (single hot lane)."""
        q = FairQueue()
        for i in range(200):
            q.push("hot", i)
        got: list[int] = []
        lock = threading.Lock()

        def drain():
            while True:
                try:
                    item = q.pop(timeout=0.2)
                except queue.Empty:
                    return
                with lock:
                    got.append(item)

        threads = [threading.Thread(target=drain) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(got) == list(range(200))

    @settings(max_examples=100)
    @given(
        pushes=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_drain_preserves_items_and_per_lane_order(self, pushes):
        """Complete drain: nothing lost, nothing duplicated, FIFO per lane."""
        q = FairQueue()
        expected: dict[str, list[int]] = {}
        for seq, (key, weight) in enumerate(pushes):
            q.push(key, (key, seq), weight=weight)
            expected.setdefault(key, []).append(seq)
        drained: dict[str, list[int]] = {}
        for _ in range(len(pushes)):
            key, seq = q.pop()
            drained.setdefault(key, []).append(seq)
        assert q.empty()
        assert drained == expected


# --------------------------------------------------------------- QuotaLedger


class FakeClock:
    """Injectable UTC clock for deterministic day rollover."""

    def __init__(self, start: datetime):
        self.now = start

    def __call__(self) -> datetime:
        return self.now

    def advance(self, **kwargs) -> None:
        self.now = self.now + timedelta(**kwargs)


class TestQuotaLedger:
    def setup_method(self):
        self.clock = FakeClock(datetime(2026, 8, 8, 12, 0, tzinfo=timezone.utc))

    def test_charge_until_limit(self):
        ledger = QuotaLedger(now_fn=self.clock)
        assert ledger.charge("t", 2).allowed
        assert ledger.charge("t", 2).allowed
        denied = ledger.charge("t", 2)
        assert not denied.allowed
        assert denied.used == 2
        assert denied.retry_after_s == pytest.approx(12 * 3600)

    def test_unlimited_still_counts(self):
        ledger = QuotaLedger(now_fn=self.clock)
        for _ in range(5):
            assert ledger.charge("t", None).allowed
        assert ledger.usage("t") == ("2026-08-08", 5)

    def test_day_rollover_resets_counts(self):
        ledger = QuotaLedger(now_fn=self.clock)
        assert ledger.charge("t", 1).allowed
        assert not ledger.charge("t", 1).allowed
        self.clock.advance(days=1)
        assert ledger.charge("t", 1).allowed
        assert ledger.usage("t") == ("2026-08-09", 1)

    def test_checkpoint_survives_restart(self, tmp_path):
        path = tmp_path / "quota.json"
        ledger = QuotaLedger(path, now_fn=self.clock)
        for _ in range(3):
            ledger.charge("t", 10)
        ledger.close()
        reborn = QuotaLedger(path, now_fn=self.clock)
        assert reborn.usage("t") == ("2026-08-08", 3)
        # The budget keeps counting from the restored state.
        for _ in range(7):
            assert reborn.charge("t", 10).allowed
        assert not reborn.charge("t", 10).allowed

    def test_stale_checkpoint_from_previous_day_ignored(self, tmp_path):
        path = tmp_path / "quota.json"
        ledger = QuotaLedger(path, now_fn=self.clock)
        ledger.charge("t", 10)
        ledger.close()
        self.clock.advance(days=2)
        reborn = QuotaLedger(path, now_fn=self.clock)
        assert reborn.usage("t") == ("2026-08-10", 0)

    def test_corrupt_checkpoint_starts_fresh(self, tmp_path):
        path = tmp_path / "quota.json"
        path.write_text("{not json!!")
        ledger = QuotaLedger(path, now_fn=self.clock)
        assert ledger.charge("t", 5).allowed
        ledger.flush()
        assert json.loads(path.read_text())["counts"] == {"t": 1}

    def test_flush_every_batches_checkpoints(self, tmp_path):
        path = tmp_path / "quota.json"
        ledger = QuotaLedger(path, flush_every=3, now_fn=self.clock)
        ledger.charge("t", None)
        ledger.charge("t", None)
        assert not path.exists()  # below the batch threshold
        ledger.charge("t", None)
        assert json.loads(path.read_text())["counts"] == {"t": 3}


# ------------------------------------------------------------ TenantRegistry


def write_config(path, *, version=1, tenants=None, admin_keys=(), classes=None):
    payload = {
        "version": version,
        "admin_keys": list(admin_keys),
        "tenants": tenants if tenants is not None else [
            {"id": "acme", "api_key": "acme-secret-key", "class": "gold",
             "rate": 50, "burst": 100, "daily_quota": 1000},
            {"id": "blip", "api_key": "blip-secret-key", "class": "bronze"},
        ],
    }
    if classes is not None:
        payload["priority_classes"] = classes
    path.write_text(json.dumps(payload))
    # Hot reload keys on (mtime_ns, size); pin mtime to the version so
    # back-to-back rewrites are detected even on coarse-mtime filesystems.
    os.utime(path, ns=(version * 10**9, version * 10**9))


class TestTenantRegistry:
    def test_from_file_and_authenticate(self, tmp_path):
        config = tmp_path / "tenants.json"
        write_config(config, admin_keys=["ops-admin-key"])
        registry = TenantRegistry.from_file(config)
        assert registry.version == 1
        acme = registry.authenticate("acme-secret-key")
        assert acme is not None and acme.tenant_id == "acme"
        assert acme.weight == 8  # gold default class weight
        assert registry.authenticate("wrong-key-000") is None
        assert registry.authenticate(None) is None
        assert registry.is_admin("ops-admin-key")
        assert not registry.is_admin("acme-secret-key")

    def test_disabled_tenant_cannot_authenticate(self, tmp_path):
        config = tmp_path / "tenants.json"
        write_config(config, tenants=[
            {"id": "off", "api_key": "offline-key-1", "enabled": False},
        ])
        registry = TenantRegistry.from_file(config)
        assert registry.authenticate("offline-key-1") is None
        assert registry.get("off") is not None  # record (and quota) kept

    def test_custom_priority_classes(self, tmp_path):
        config = tmp_path / "tenants.json"
        write_config(
            config,
            classes={"platinum": 16},
            tenants=[{"id": "t", "api_key": "ttttttttt", "class": "platinum"}],
        )
        registry = TenantRegistry.from_file(config)
        assert registry.get("t").weight == 16

    @pytest.mark.parametrize("bad", [
        {"tenants": [{"id": "x y", "api_key": "long-enough-key"}]},  # bad id
        {"tenants": [{"id": "x", "api_key": "short"}]},              # short key
        {"tenants": [{"id": "x", "api_key": "kkkkkkkk", "class": "nope"}]},
        {"tenants": [{"id": "x", "api_key": "kkkkkkkk", "rate": 0}]},
        {"tenants": [
            {"id": "x", "api_key": "kkkkkkkk"},
            {"id": "x", "api_key": "jjjjjjjj"},                      # dup id
        ]},
        {"tenants": [
            {"id": "x", "api_key": "kkkkkkkk"},
            {"id": "y", "api_key": "kkkkkkkk"},                      # dup key
        ]},
    ])
    def test_malformed_configs_rejected(self, bad):
        with pytest.raises(TenantConfigError):
            _parse_config({"version": 1, **bad})

    def test_hot_reload_swaps_table(self, tmp_path):
        config = tmp_path / "tenants.json"
        write_config(config, version=1)
        registry = TenantRegistry.from_file(config)
        generation = registry.generation
        write_config(config, version=2, tenants=[
            {"id": "new", "api_key": "new-tenant-key"},
        ])
        assert registry.reload_if_changed(min_interval_s=0.0)
        assert registry.version == 2
        assert registry.generation == generation + 1
        assert registry.authenticate("acme-secret-key") is None
        assert registry.authenticate("new-tenant-key").tenant_id == "new"

    def test_bad_reload_keeps_serving_old_table(self, tmp_path):
        config = tmp_path / "tenants.json"
        write_config(config, version=1)
        registry = TenantRegistry.from_file(config)
        config.write_text("{broken json")
        assert not registry.reload_if_changed(min_interval_s=0.0)
        assert registry.version == 1
        assert registry.authenticate("acme-secret-key") is not None

    def test_reload_is_throttled(self, tmp_path):
        config = tmp_path / "tenants.json"
        write_config(config, version=1)
        registry = TenantRegistry.from_file(config)
        write_config(config, version=2)
        registry.reload_if_changed(min_interval_s=0.0)
        write_config(config, version=3)
        # Within the throttle interval nothing is stat'd, so no reload.
        assert not registry.reload_if_changed(min_interval_s=3600.0)
        assert registry.version == 2


# -------------------------------------------------------- TenancyController


def make_controller(tmp_path, **tenant_overrides):
    config = tmp_path / "tenants.json"
    tenant = {"id": "acme", "api_key": "acme-secret-key",
              "class": "gold", "rate": 1000.0, "burst": 1000.0}
    tenant.update(tenant_overrides)
    write_config(config, tenants=[tenant], admin_keys=["ops-admin-key"])
    return TenancyController(TenantRegistry.from_file(config))


class TestTenancyController:
    def test_admit_happy_path(self, tmp_path):
        controller = make_controller(tmp_path)
        tenant = controller.admit("acme-secret-key")
        assert tenant.tenant_id == "acme"
        assert controller.usage("acme")["admitted"] == 1

    def test_unknown_key_raises_authentication_error(self, tmp_path):
        controller = make_controller(tmp_path)
        with pytest.raises(AuthenticationError):
            controller.admit("wrong-key-0000")
        with pytest.raises(AuthenticationError):
            controller.admit(None)
        assert controller.overview()["auth_failures"] == 2

    def test_rate_limit_maps_to_rate_limited_error(self, tmp_path):
        controller = make_controller(tmp_path, rate=1.0, burst=1.0)
        controller.admit("acme-secret-key")
        with pytest.raises(RateLimitedError) as excinfo:
            controller.admit("acme-secret-key")
        assert excinfo.value.retry_after_s > 0
        assert controller.usage("acme")["rejected"]["rate_limited"] == 1

    def test_quota_maps_to_quota_exceeded_error(self, tmp_path):
        controller = make_controller(tmp_path, daily_quota=2)
        controller.admit("acme-secret-key")
        controller.admit("acme-secret-key")
        with pytest.raises(QuotaExceededError) as excinfo:
            controller.admit("acme-secret-key")
        assert excinfo.value.retry_after_s > 0
        usage = controller.usage("acme")
        assert usage["quota_used"] == 2
        assert usage["quota_remaining"] == 0
        assert usage["rejected"]["quota"] == 1

    def test_buckets_survive_noop_reload_but_resync_on_change(self, tmp_path):
        config = tmp_path / "tenants.json"
        write_config(config, version=1, tenants=[
            {"id": "acme", "api_key": "acme-secret-key",
             "rate": 10.0, "burst": 10.0},
        ])
        registry = TenantRegistry.from_file(config)
        controller = TenancyController(registry)
        for _ in range(10):
            controller.admit("acme-secret-key")  # bucket now empty
        # Unrelated config change: the drained bucket must survive (no
        # free burst refill from a config push).
        write_config(config, version=2, tenants=[
            {"id": "acme", "api_key": "acme-secret-key",
             "rate": 10.0, "burst": 10.0},
            {"id": "other", "api_key": "other-key-0001"},
        ])
        assert registry.reload_if_changed(min_interval_s=0.0)
        with pytest.raises(RateLimitedError):
            controller.admit("acme-secret-key")
        # Changing the tenant's limits DOES hand it a fresh bucket.
        write_config(config, version=3, tenants=[
            {"id": "acme", "api_key": "acme-secret-key",
             "rate": 10.0, "burst": 20.0},
        ])
        assert registry.reload_if_changed(min_interval_s=0.0)
        assert controller.admit("acme-secret-key").tenant_id == "acme"

    def test_overview_lists_tenants_without_keys(self, tmp_path):
        controller = make_controller(tmp_path)
        overview = controller.overview()
        assert overview["config_version"] == 1
        [entry] = overview["tenants"]
        assert entry["id"] == "acme"
        assert "api_key" not in entry
