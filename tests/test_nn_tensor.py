"""Gradient checks and unit tests for the autograd engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Tensor,
    concat,
    cross_entropy,
    dropout,
    log_softmax,
    masked_log_softmax,
    softmax,
    stack,
)

RNG = np.random.default_rng(7)


def numeric_gradient(fn, tensor: Tensor, *, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn().item()
        flat[i] = original - eps
        lower = fn().item()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(fn, tensor: Tensor, *, tol: float = 1e-6) -> None:
    tensor.zero_grad()
    out = fn()
    out.backward()
    numeric = numeric_gradient(fn, tensor)
    assert tensor.grad is not None
    np.testing.assert_allclose(tensor.grad, numeric, atol=tol, rtol=1e-4)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "op",
        [
            lambda x: (x * 2.0 + 1.0).sum(),
            lambda x: (x * x).sum(),
            lambda x: (-x).sum(),
            lambda x: (x / 3.0).sum(),
            lambda x: x.tanh().sum(),
            lambda x: x.sigmoid().sum(),
            lambda x: x.relu().sum(),
            lambda x: x.exp().sum(),
            lambda x: x.pow(3).sum(),
            lambda x: x.mean(),
            lambda x: x.reshape(6).sum(),
            lambda x: x.T.sum(),
        ],
    )
    def test_gradcheck(self, op):
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        check_gradient(lambda: op(x), x)

    def test_log_gradient(self):
        x = Tensor(RNG.uniform(0.5, 2.0, size=(2, 3)), requires_grad=True)
        check_gradient(lambda: x.log().sum(), x)

    def test_broadcast_add(self):
        x = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        y = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda: (y + x).sum(), x)

    def test_broadcast_mul(self):
        x = Tensor(RNG.normal(size=(1, 3)), requires_grad=True)
        y = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda: (y * x).sum(), x)

    def test_sub_and_rsub(self):
        x = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        check_gradient(lambda: (5.0 - x).sum(), x)
        check_gradient(lambda: (x - 5.0).sum(), x)


class TestMatmulGradients:
    def test_2d_2d(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda: (a @ b).sum(), a)

    def test_2d_2d_rhs(self):
        a = Tensor(RNG.normal(size=(3, 4)))
        b = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        check_gradient(lambda: (a @ b).sum(), b)

    def test_1d_2d(self):
        a = Tensor(RNG.normal(size=4), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda: (a @ b).sum(), a)

    def test_2d_1d(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=4))
        check_gradient(lambda: (a @ b).sum(), a)

    def test_1d_1d(self):
        a = Tensor(RNG.normal(size=4), requires_grad=True)
        b = Tensor(RNG.normal(size=4))
        check_gradient(lambda: a @ b, a)

    def test_batched_3d(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 4, 3)))
        check_gradient(lambda: (a @ b).sum(), a)


class TestIndexingGradients:
    def test_slice(self):
        x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        check_gradient(lambda: x[1:4].sum(), x)

    def test_integer_index(self):
        x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        check_gradient(lambda: x[2].sum(), x)

    def test_repeated_fancy_index_accumulates(self):
        x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        index = np.array([1, 1, 3])
        check_gradient(lambda: x[index].sum(), x)

    def test_column_slice(self):
        x = Tensor(RNG.normal(size=(4, 6)), requires_grad=True)
        check_gradient(lambda: x[:, 2:4].sum(), x)


class TestReductionsAndShape:
    def test_sum_axis(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        check_gradient(lambda: (x.sum(axis=0) * Tensor(np.arange(4.0))).sum(), x)

    def test_sum_keepdims(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        check_gradient(lambda: x.sum(axis=1, keepdims=True).sum(), x)

    def test_concat(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 3)))
        check_gradient(lambda: concat([a, b], axis=0).sum(), a)
        check_gradient(lambda: concat([b, a], axis=1).sum(), a)

    def test_stack(self):
        a = Tensor(RNG.normal(size=3), requires_grad=True)
        b = Tensor(RNG.normal(size=3))
        check_gradient(lambda: (stack([a, b], axis=0) * 2.0).sum(), a)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(4, 6)))
        out = softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_gradient(self):
        x = Tensor(RNG.normal(size=6), requires_grad=True)
        weights = Tensor(RNG.normal(size=6))
        check_gradient(lambda: (softmax(x) * weights).sum(), x)

    def test_log_softmax_gradient(self):
        x = Tensor(RNG.normal(size=6), requires_grad=True)
        check_gradient(lambda: -log_softmax(x)[2], x)

    def test_log_softmax_stability(self):
        x = Tensor(np.array([1000.0, 1000.0, 0.0]))
        out = log_softmax(x)
        assert np.isfinite(out.data).all()

    def test_masked_log_softmax_blocks(self):
        x = Tensor(np.zeros(4))
        mask = np.array([True, False, True, False])
        out = masked_log_softmax(x, mask)
        probabilities = np.exp(out.data)
        assert probabilities[1] < 1e-10 and probabilities[3] < 1e-10
        np.testing.assert_allclose(probabilities[0], 0.5)

    def test_masked_log_softmax_gradient(self):
        x = Tensor(RNG.normal(size=5), requires_grad=True)
        mask = np.array([True, True, False, True, False])
        check_gradient(lambda: -masked_log_softmax(x, mask)[1], x)

    def test_cross_entropy_matches_manual(self):
        x = Tensor(RNG.normal(size=5), requires_grad=True)
        loss = cross_entropy(x, 2)
        manual = -np.log(np.exp(x.data[2]) / np.exp(x.data).sum())
        np.testing.assert_allclose(loss.item(), manual)


class TestDropout:
    def test_eval_is_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(RNG.normal(size=(5, 5)))
        out = dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_array_equal(out.data, x.data)

    def test_training_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,)))
        out = dropout(x, 0.5, training=True, rng=rng)
        # inverted dropout preserves the expectation
        assert abs(out.data.mean() - 1.0) < 0.1

    def test_gradient_through_mask(self):
        rng_state = np.random.default_rng(42)
        masks = []

        class FixedRng:
            def random(self, shape):
                mask = rng_state.random(shape)
                masks.append(mask)
                return mask

        x = Tensor(RNG.normal(size=10), requires_grad=True)
        out = dropout(x, 0.5, training=True, rng=FixedRng())
        out.sum().backward()
        expected = (masks[0] < 0.5) / 0.5
        np.testing.assert_allclose(x.grad, expected)


class TestBackwardMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_on_non_scalar_requires_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_grad_flag_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward(np.ones(3))

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([0.5]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0001
        y.backward()
        assert x.grad is not None

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_shapes(self, rows, cols):
        x = Tensor(RNG.normal(size=(1, cols)), requires_grad=True)
        y = Tensor(RNG.normal(size=(rows, cols)))
        (x + y).sum().backward()
        assert x.grad.shape == (1, cols)
