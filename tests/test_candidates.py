"""Unit tests for repro.candidates: generation, heuristics, validation."""

from __future__ import annotations

import pytest

from repro.candidates import (
    CandidateGenerator,
    CandidateValidator,
    GenerationConfig,
    ValidationConfig,
    ValueCandidate,
    boolean_candidates,
    dedupe_candidates,
    gender_candidates,
    month_candidates,
    ordinal_candidates,
)
from repro.index import InvertedIndex, SimilaritySearcher, ValueLocation
from repro.ner.types import ExtractedValue, SpanKind


def span(text: str, kind: SpanKind = SpanKind.TEXT) -> ExtractedValue:
    return ExtractedValue(text, 0, len(text), kind, "heuristic")


class TestCandidateHeuristics:
    def test_gender_female(self):
        values = {c.value for c in gender_candidates("female")}
        assert "F" in values

    def test_gender_unknown_word(self):
        assert gender_candidates("purple") == []

    def test_boolean(self):
        values = {c.value for c in boolean_candidates("yes")}
        assert 1 in values and "T" in values

    def test_ordinal(self):
        [candidate] = ordinal_candidates(span("fourth", SpanKind.ORDINAL))
        assert candidate.value == 4

    def test_month_wildcards(self):
        values = {c.value for c in month_candidates(span("August", SpanKind.MONTH))}
        assert "%-08-%" in values and "8/%" in values


class TestDedupe:
    def test_keeps_first_merges_locations(self):
        loc_a = ValueLocation("t", "a")
        loc_b = ValueLocation("t", "b")
        candidates = [
            ValueCandidate("France", "question", (loc_a,)),
            ValueCandidate("france", "similarity", (loc_b,)),
        ]
        [merged] = dedupe_candidates(candidates)
        assert merged.value == "France"
        assert set(merged.locations) == {loc_a, loc_b}

    def test_numeric_string_and_int_collapse(self):
        candidates = [ValueCandidate(3, "question"), ValueCandidate("3", "ngram")]
        assert len(dedupe_candidates(candidates)) == 1


class TestGeneration:
    @pytest.fixture
    def searcher(self, pets_db):
        return SimilaritySearcher(InvertedIndex.build(pets_db))

    def test_verbatim_always_included(self, searcher):
        generator = CandidateGenerator(searcher)
        candidates = generator.generate(["20"], [span("20", SpanKind.NUMBER)])
        assert any(c.value == 20 for c in candidates)

    def test_numbers_skip_similarity(self, searcher):
        generator = CandidateGenerator(searcher)
        candidates = generator.generate(["20"], [span("20", SpanKind.NUMBER)])
        assert all(c.source != "similarity" for c in candidates)

    def test_similarity_expansion(self, searcher):
        generator = CandidateGenerator(searcher)
        candidates = generator.generate(["Frnace"], [span("Frnace")])
        assert any(c.value == "France" for c in candidates)

    def test_ngram_expansion(self, searcher):
        generator = CandidateGenerator(searcher)
        candidates = generator.generate([], [span("Ann Miller Senior")])
        values = {str(c.value) for c in candidates}
        assert "Ann Miller" in values  # bigram found the real DB value

    def test_gender_word_from_question(self, searcher):
        generator = CandidateGenerator(searcher)
        candidates = generator.generate(["female", "students"], [])
        assert any(c.value == "F" for c in candidates)

    def test_cap_respected(self, searcher):
        generator = CandidateGenerator(
            searcher, GenerationConfig(max_candidates=3)
        )
        spans = [span(t) for t in ("Ann Miller", "Bob Smith", "Cid Rossi")]
        candidates = generator.generate([], spans)
        assert len(candidates) <= 3

    def test_no_searcher_still_works(self):
        generator = CandidateGenerator(None)
        candidates = generator.generate(["x"], [span("France")])
        assert any(c.value == "France" for c in candidates)


class TestValidation:
    @pytest.fixture
    def validator(self, pets_db):
        return CandidateValidator(InvertedIndex.build(pets_db))

    def test_found_candidates_get_locations(self, validator):
        [candidate] = validator.validate([ValueCandidate("France", "question")])
        assert candidate.locations == (ValueLocation("student", "home_country"),)

    def test_db_spelling_preferred(self, validator):
        [candidate] = validator.validate([ValueCandidate("france", "question")])
        assert candidate.value == "France"

    def test_unfound_text_dropped(self, validator):
        assert validator.validate([ValueCandidate("Atlantis", "ngram")]) == []

    def test_numbers_exempt(self, validator):
        # paper: "the value 3 is not part of the database but is used in
        # the SQL query to limit the results" -- numbers absent from the
        # base data survive validation unlocated
        [candidate] = validator.validate([ValueCandidate(999, "question")])
        assert candidate.locations == ()

    def test_quoted_exempt(self, validator):
        [candidate] = validator.validate(
            [ValueCandidate("goodbye", "question")],
            quoted_values={"goodbye"},
        )
        assert candidate.value == "goodbye"

    def test_wildcard_exempt(self, validator):
        [candidate] = validator.validate([ValueCandidate("%-08-%", "heuristic")])
        assert candidate.value == "%-08-%"

    def test_config_disables_exemptions(self, pets_db):
        validator = CandidateValidator(
            InvertedIndex.build(pets_db),
            ValidationConfig(keep_quoted=False, keep_numeric=False),
        )
        assert validator.validate([ValueCandidate(999, "question")]) == []

    def test_located_candidates_sort_first(self, validator):
        candidates = validator.validate(
            [ValueCandidate(999, "question"), ValueCandidate("France", "question")]
        )
        assert candidates[0].value == "France"

    def test_cap(self, pets_db):
        validator = CandidateValidator(
            InvertedIndex.build(pets_db), ValidationConfig(max_candidates=1)
        )
        out = validator.validate(
            [ValueCandidate("France", "question"), ValueCandidate("Italy", "question")]
        )
        assert len(out) == 1


class TestEndToEndCandidateFlow:
    def test_paper_running_example(self, pets_db):
        """'French students older than 20' -> candidates France + 20."""
        from repro.preprocessing import Preprocessor

        pre = Preprocessor(pets_db).run(
            "How many pets are owned by French students that are older than 20?"
        )
        values = {str(c.value) for c in pre.candidates}
        assert "France" in values
        assert "20" in values

    def test_candidate_describe(self):
        candidate = ValueCandidate("x", "question", (ValueLocation("t", "c"),))
        assert "t.c" in candidate.describe()
