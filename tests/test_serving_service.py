"""Tests for the TranslationService core: queueing, batching, caching,
deadlines, and degraded fallback.

A fake neural pipeline stands in for the trained model so the tests stay
fast and can script failures deterministically; the heuristic fallback
and the database underneath are the real things.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ModelError
from repro.pipeline import StageTimings, TranslationResult
from repro.serving import (
    DatabaseRuntime,
    QueueFullError,
    TranslationCache,
    TranslationService,
    UnknownDatabaseError,
)


class FakePipeline:
    """Scriptable stand-in for ValueNetPipeline."""

    def __init__(self, sql="SELECT count(*) FROM student", fail=False):
        self.sql = sql
        self.fail = fail
        self.beam_size = 1  # runtime overrides this per request
        self.calls = 0
        self._lock = threading.Lock()

    def translate(self, question, *, execute=False, **kwargs):
        with self._lock:
            self.calls += 1
            self.seen_beam = self.beam_size
        if self.fail:
            raise ModelError("scripted failure")
        result = TranslationResult(question=question, timings=StageTimings(
            preprocessing=0.001, encoder_decoder=0.002, postprocessing=0.0005,
        ))
        result.sql = self.sql
        return result


@pytest.fixture
def heuristic_service(pets_db):
    service = TranslationService(
        [DatabaseRuntime(pets_db, database_id="pets")],
        workers=2, queue_size=32, batch_window_ms=1.0,
    ).start()
    yield service
    service.stop()


def make_model_service(pets_db, pipeline, **kwargs):
    runtime = DatabaseRuntime(pets_db, database_id="pets", pipeline=pipeline)
    return TranslationService([runtime], workers=2, **kwargs)


class TestBasicServing:
    def test_heuristic_primary_engine_not_degraded(self, heuristic_service):
        response = heuristic_service.translate("How many students are there?")
        assert response.ok, response.error
        assert response.engine == "heuristic"
        assert not response.degraded
        assert "COUNT" in response.sql

    def test_execute_returns_rows(self, heuristic_service):
        response = heuristic_service.translate(
            "How many students are there?", execute=True
        )
        assert response.rows == [(4,)]

    def test_database_id_optional_with_single_database(self, heuristic_service):
        response = heuristic_service.translate("How many students?")
        assert response.database_id == "pets"

    def test_unknown_database_rejected(self, heuristic_service):
        with pytest.raises(UnknownDatabaseError):
            heuristic_service.translate("q", "nope")

    def test_model_engine_used_when_present(self, pets_db):
        pipeline = FakePipeline()
        with make_model_service(pets_db, pipeline) as service:
            response = service.translate("How many students are there?")
            assert response.engine == "model"
            assert response.sql == pipeline.sql
            assert not response.degraded
            assert pipeline.calls == 1

    def test_per_request_beam_size_reaches_pipeline(self, pets_db):
        pipeline = FakePipeline()
        with make_model_service(pets_db, pipeline) as service:
            service.translate("How many students?", beam_size=4)
            assert pipeline.seen_beam == 4
            assert pipeline.beam_size == 1  # restored after the call

    def test_response_as_dict_contract(self, heuristic_service):
        payload = heuristic_service.translate("How many students?").as_dict()
        for field in (
            "question", "database_id", "sql", "error", "engine", "degraded",
            "degraded_reason", "cache_hit", "timings_ms", "queue_ms",
            "service_ms", "batch_size",
        ):
            assert field in payload


class TestConcurrency:
    def test_many_concurrent_clients_zero_drops(self, heuristic_service):
        questions = [
            "How many students are there?",
            "List the name of all students.",
            "students from France",
            "pets heavier than 10",
        ]
        responses: list = [None] * 24
        errors: list = []

        def client(index: int):
            try:
                responses[index] = heuristic_service.translate(
                    questions[index % len(questions)]
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(24)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(r is not None and r.sql is not None for r in responses)

    def test_queue_bound_enforced(self, pets_db):
        # Not started: nothing drains the queue, so the bound is hit.
        service = TranslationService(
            [DatabaseRuntime(pets_db, database_id="pets")],
            workers=1, queue_size=2,
        )
        service.submit("q1")
        service.submit("q2")
        with pytest.raises(QueueFullError):
            service.submit("q3")

    def test_batching_groups_compatible_requests(self, pets_db):
        # Enqueue before starting so one worker drains them as a batch.
        service = TranslationService(
            [DatabaseRuntime(pets_db, database_id="pets")],
            workers=1, queue_size=32, max_batch=4, batch_window_ms=50.0,
        )
        requests = [service.submit(f"students number {i}") for i in range(4)]
        service.start()
        for request in requests:
            assert request.done.wait(timeout=30)
        service.stop()
        sizes = {request.response.batch_size for request in requests}
        assert sizes == {4}


class TestCaching:
    def test_repeat_question_hits_cache(self, heuristic_service):
        first = heuristic_service.translate("How many students are there?")
        second = heuristic_service.translate("how many   students are there")
        assert not first.cache_hit
        assert second.cache_hit
        assert second.engine == "cache"
        assert second.sql == first.sql
        assert heuristic_service.cache.hits == 1

    def test_cache_hit_can_still_execute(self, heuristic_service):
        heuristic_service.translate("How many students are there?")
        response = heuristic_service.translate(
            "How many students are there?", execute=True
        )
        assert response.cache_hit
        assert response.rows == [(4,)]

    def test_model_results_cached_and_skip_model(self, pets_db):
        pipeline = FakePipeline()
        with make_model_service(pets_db, pipeline) as service:
            service.translate("How many students are there?")
            response = service.translate("How many students are there?")
            assert response.cache_hit
            assert pipeline.calls == 1

    def test_degraded_responses_not_cached(self, pets_db):
        pipeline = FakePipeline(fail=True)
        with make_model_service(pets_db, pipeline) as service:
            service.translate("How many students are there?")
            response = service.translate("How many students are there?")
            assert not response.cache_hit
            assert pipeline.calls == 2


class TestDegradation:
    def test_model_failure_falls_back_to_heuristic(self, pets_db):
        pipeline = FakePipeline(fail=True)
        with make_model_service(pets_db, pipeline) as service:
            response = service.translate("How many students are there?")
            assert response.degraded
            assert response.degraded_reason == "model_error"
            assert response.engine == "heuristic"
            assert response.sql is not None  # fallback still answered
            counters = service.metrics.snapshot()
            assert counters["serving_responses_degraded_total"] == 1

    def test_deadline_breach_skips_model(self, pets_db):
        pipeline = FakePipeline()
        with make_model_service(pets_db, pipeline) as service:
            response = service.translate(
                "How many students are there?", timeout_ms=0.0
            )
            assert response.degraded
            assert response.degraded_reason == "deadline"
            assert response.engine == "heuristic"
            assert pipeline.calls == 0

    def test_injected_failure_requires_opt_in(self, pets_db):
        pipeline = FakePipeline()
        with make_model_service(pets_db, pipeline) as service:
            response = service.translate("How many students?", inject_failure=True)
            assert not response.degraded  # flag ignored without opt-in

    def test_injected_failure_degrades_when_allowed(self, pets_db):
        pipeline = FakePipeline()
        with make_model_service(
            pets_db, pipeline, allow_failure_injection=True
        ) as service:
            response = service.translate("How many students?", inject_failure=True)
            assert response.degraded
            assert response.degraded_reason == "injected"
            assert response.engine == "heuristic"
            assert pipeline.calls == 0


class TestMetricsIntegration:
    def test_stage_histograms_follow_stage_timings(self, pets_db):
        pipeline = FakePipeline()
        with make_model_service(pets_db, pipeline) as service:
            service.translate("How many students are there?")
            snap = service.metrics.snapshot()
            # The fake pipeline reports fixed per-stage times; the stage
            # histograms must mirror StageTimings' non-zero stages.
            assert snap["serving_stage_encoder_decoder_seconds"]["count"] == 1
            assert snap["serving_stage_preprocessing_seconds"]["count"] == 1
            assert snap["serving_stage_execution_seconds"]["count"] == 0
            assert snap["serving_latency_seconds"]["count"] == 1
            assert snap["serving_requests_total"] == 1

    def test_cache_counters(self, heuristic_service):
        heuristic_service.translate("How many students?")
        heuristic_service.translate("How many students?")
        snap = heuristic_service.metrics.snapshot()
        assert snap["serving_cache_hits_total"] == 1
        assert snap["serving_cache_misses_total"] == 1

    def test_health_payload(self, heuristic_service):
        health = heuristic_service.health()
        assert health["status"] == "ok"
        assert health["databases"] == ["pets"]
        assert health["queue_capacity"] == 32
        assert "cache" in health


class TestCustomCache:
    def test_ttl_zero_effectively_disables_reuse(self, pets_db):
        service = TranslationService(
            [DatabaseRuntime(pets_db, database_id="pets")],
            workers=1, cache=TranslationCache(capacity=4, ttl_s=0.0),
        ).start()
        try:
            service.translate("How many students?")
            response = service.translate("How many students?")
            assert not response.cache_hit
        finally:
            service.stop()
