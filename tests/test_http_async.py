"""Protocol-edge tests for the selectors-based async front door.

The differential suite (``test_http_differential.py``) proves both
implementations return the same bodies; this one drives the async
server with raw sockets to exercise what an HTTP library never sends:
split request lines, dribbled headers, pipelined bursts, oversized and
chunked bodies, slowloris stalls, connection caps, and drain while a
keep-alive connection is open.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.serving import (
    AsyncServingServer,
    DatabaseRuntime,
    MetricsRegistry,
    TranslationService,
)
from repro.serving.service import ServeResponse


class FastService:
    """Deterministic, dependency-free service for transport tests."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.block_started = threading.Event()
        self.block_release: threading.Event | None = None

    def is_ready(self):
        return True

    def health(self):
        return {"status": "ok", "ready": True}

    def translate(self, question, database_id=None, **kwargs):
        if self.block_release is not None:
            self.block_started.set()
            assert self.block_release.wait(30.0), "test never released translate"
        response = ServeResponse(question=question, database_id="pets")
        response.sql = "SELECT 1"
        response.engine = "heuristic"
        return response


def _start(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


@pytest.fixture
def server():
    instance = AsyncServingServer(("127.0.0.1", 0), FastService())
    _start(instance)
    yield instance
    instance.shutdown()
    instance.server_close()


def _connect(server) -> socket.socket:
    sock = socket.create_connection(server.server_address[:2], timeout=10)
    sock.settimeout(10)
    return sock


def _read_response(
    sock: socket.socket, pending: bytearray | None = None
) -> tuple[int, dict[str, str], bytes]:
    """Read exactly one HTTP/1.1 response off a raw socket.

    Pass the same ``pending`` bytearray across calls when several
    responses may arrive back-to-back (pipelining): over-read bytes are
    kept there instead of being dropped.
    """
    buf = bytearray() if pending is None else pending
    while b"\r\n\r\n" not in buf:
        data = sock.recv(4096)
        assert data, f"connection closed mid-response: {bytes(buf)!r}"
        buf += data
    head, _, _ = bytes(buf).partition(b"\r\n\r\n")
    body_start = len(head) + 4
    lines = head.split(b"\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(b":")
        headers[name.decode().strip().lower()] = value.decode().strip()
    length = int(headers.get("content-length", "0"))
    while len(buf) < body_start + length:
        data = sock.recv(4096)
        assert data, "connection closed mid-body"
        buf += data
    body = bytes(buf[body_start:body_start + length])
    del buf[: body_start + length]
    return status, headers, body


def _get(path: str) -> bytes:
    return f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()


def _post(payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    return (
        f"POST /translate HTTP/1.1\r\nHost: t\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


def _assert_closed(sock: socket.socket, deadline_s: float = 10.0) -> None:
    sock.settimeout(deadline_s)
    leftover = b""
    while True:
        data = sock.recv(4096)  # raises on timeout = test failure
        if not data:
            return
        leftover += data
        assert len(leftover) < 1 << 20, "server kept streaming instead of closing"


class TestKeepAliveAndPipelining:
    def test_keep_alive_reuses_one_connection(self, server):
        sock = _connect(server)
        try:
            for _ in range(3):
                sock.sendall(_post({"question": "hi"}))
                status, headers, body = _read_response(sock)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert json.loads(body)["sql"] == "SELECT 1"
            assert server.connections_accepted == 1
        finally:
            sock.close()

    def test_pipelined_requests_answered_in_order(self, server):
        sock = _connect(server)
        try:
            # One write carrying three different requests; responses
            # must come back in request order.
            sock.sendall(_get("/livez") + _post({"question": "q"}) + _get("/healthz"))
            pending = bytearray()
            status, _, body = _read_response(sock, pending)
            assert (status, json.loads(body)) == (200, {"live": True})
            status, _, body = _read_response(sock, pending)
            assert status == 200
            assert json.loads(body)["sql"] == "SELECT 1"
            status, _, body = _read_response(sock, pending)
            assert status == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            sock.close()

    def test_request_split_across_packets(self, server):
        sock = _connect(server)
        try:
            whole = _get("/livez")
            for i in range(0, len(whole), 7):  # 7-byte dribble
                sock.sendall(whole[i:i + 7])
                time.sleep(0.005)
            status, _, body = _read_response(sock)
            assert (status, json.loads(body)) == (200, {"live": True})
        finally:
            sock.close()


class TestProtocolErrors:
    def test_malformed_request_line_400_and_close(self, server):
        sock = _connect(server)
        try:
            sock.sendall(b"NONSENSE\r\nHost: t\r\n\r\n")
            status, headers, _ = _read_response(sock)
            assert status == 400
            assert headers["connection"] == "close"
            _assert_closed(sock)
        finally:
            sock.close()

    def test_oversized_content_length_413_before_body(self, server):
        sock = _connect(server)
        try:
            # Announce a 10 MiB body but send none: the server must
            # refuse from the header alone, not wait for the body.
            sock.sendall(
                b"POST /translate HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 10485760\r\n\r\n"
            )
            status, headers, body = _read_response(sock)
            assert status == 413
            assert b"64 KiB" in body
            assert headers["connection"] == "close"
            _assert_closed(sock)
        finally:
            sock.close()

    def test_bad_content_length_400(self, server):
        sock = _connect(server)
        try:
            sock.sendall(
                b"POST /translate HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            status, _, _ = _read_response(sock)
            assert status == 400
        finally:
            sock.close()

    def test_chunked_body_decoded(self, server):
        body = json.dumps({"question": "chunky"}).encode()
        sock = _connect(server)
        try:
            head = (
                b"POST /translate HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            chunks = b""
            for i in range(0, len(body), 5):
                piece = body[i:i + 5]
                chunks += f"{len(piece):x}\r\n".encode() + piece + b"\r\n"
            chunks += b"0\r\n\r\n"
            sock.sendall(head + chunks)
            status, _, out = _read_response(sock)
            assert status == 200
            assert json.loads(out)["question"] == "chunky"
        finally:
            sock.close()

    def test_chunked_body_over_limit_413(self, server):
        sock = _connect(server)
        try:
            sock.sendall(
                b"POST /translate HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"20000\r\n"  # a single 128 KiB chunk announcement
            )
            status, _, _ = _read_response(sock)
            assert status == 413
            _assert_closed(sock)
        finally:
            sock.close()


class TestDeadlines:
    def test_slowloris_header_stall_is_cut_off(self):
        server = AsyncServingServer(
            ("127.0.0.1", 0), FastService(), header_deadline_s=0.3
        )
        _start(server)
        try:
            sock = _connect(server)
            try:
                sock.sendall(b"GET /livez HTTP/1.1\r\nHost: t\r\n")  # never finishes
                start = time.monotonic()
                _assert_closed(sock, deadline_s=10.0)
                # Closed by the deadline, not by the test timeout.
                assert time.monotonic() - start < 5.0
            finally:
                sock.close()
        finally:
            server.shutdown()
            server.server_close()

    def test_fast_requests_unaffected_by_deadline(self):
        server = AsyncServingServer(
            ("127.0.0.1", 0), FastService(), header_deadline_s=0.3
        )
        _start(server)
        try:
            sock = _connect(server)
            try:
                sock.sendall(_get("/livez"))
                status, _, _ = _read_response(sock)
                assert status == 200
            finally:
                sock.close()
        finally:
            server.shutdown()
            server.server_close()


class TestBoundedConnections:
    def test_connection_cap_defers_accepts(self):
        server = AsyncServingServer(
            ("127.0.0.1", 0), FastService(), max_connections=1
        )
        _start(server)
        try:
            first = _connect(server)
            second = _connect(server)  # connects (backlog) but not accepted
            try:
                first.sendall(_get("/livez"))
                assert _read_response(first)[0] == 200
                second.sendall(_get("/livez"))
                second.settimeout(0.5)
                with pytest.raises(TimeoutError):
                    second.recv(4096)  # still parked behind the cap
                first.close()  # frees the slot; accept resumes
                second.settimeout(10)
                status, _, body = _read_response(second)
                assert (status, json.loads(body)) == (200, {"live": True})
            finally:
                second.close()
        finally:
            server.shutdown()
            server.server_close()


class TestGracefulDrain:
    def test_drain_closes_idle_keepalive_and_finishes_inflight(self):
        service = FastService()
        service.block_release = threading.Event()
        server = AsyncServingServer(("127.0.0.1", 0), service)
        _start(server)
        idle = _connect(server)
        busy = _connect(server)
        try:
            # idle: completes one request, then sits in keep-alive.
            idle.sendall(_get("/livez"))
            assert _read_response(idle)[0] == 200
            # busy: a translate parked inside the service.
            busy.sendall(_post({"question": "slow"}))
            assert service.block_started.wait(10.0)

            drainer = threading.Thread(target=server.shutdown, daemon=True)
            drainer.start()
            # The idle keep-alive connection is closed immediately...
            _assert_closed(idle)
            # ...the in-flight one finishes, tagged Connection: close.
            service.block_release.set()
            status, headers, body = _read_response(busy)
            assert status == 200
            assert json.loads(body)["sql"] == "SELECT 1"
            assert headers["connection"] == "close"
            _assert_closed(busy)
            drainer.join(10.0)
            assert not drainer.is_alive()
        finally:
            idle.close()
            busy.close()
            server.server_close()


class TestRealService:
    def test_translate_against_a_real_service(self, pets_db):
        service = TranslationService(
            [DatabaseRuntime(pets_db, database_id="pets")], workers=2
        ).start()
        server = AsyncServingServer(("127.0.0.1", 0), service)
        _start(server)
        try:
            sock = _connect(server)
            try:
                sock.sendall(_post({"question": "How many dogs are there?",
                                    "database_id": "pets"}))
                status, _, body = _read_response(sock)
                assert status == 200
                payload = json.loads(body)
                assert payload["sql"]
                assert payload["database_id"] == "pets"
            finally:
                sock.close()
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
