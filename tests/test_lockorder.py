"""Lock-order sanitizer tests: inversions raise, clean orders don't.

The sanitizer is order-based, not timing-based: an AB/BA inversion is
caught deterministically from a single thread, no race window needed.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockorder
from repro.analysis.lockorder import LockOrderError, SanitizedLock
from repro.concurrency import make_lock, make_rlock, sanitize_enabled


@pytest.fixture(autouse=True)
def _fresh_graph():
    lockorder.reset()
    yield
    lockorder.reset()


def test_consistent_order_passes():
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    for _ in range(3):
        with a:
            with b:
                pass


def test_single_thread_inversion_raises():
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    with a:
        with b:
            pass
    with b:
        with pytest.raises(LockOrderError) as excinfo:
            a.acquire()
    message = str(excinfo.value)
    assert "'A'" in message and "'B'" in message
    assert "previously recorded order" in message


def test_inversion_report_carries_acquisition_stack():
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    with a:
        with b:
            pass
    with b:
        with pytest.raises(LockOrderError) as excinfo:
            with a:
                pass
    assert "test_lockorder" in str(excinfo.value)


def test_failed_acquire_releases_inner_lock():
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    with a:
        with b:
            pass
    with b:
        with pytest.raises(LockOrderError):
            a.acquire()
    # The inversion did not leave A held: a clean acquire succeeds.
    assert a.acquire(blocking=False)
    a.release()


def test_cross_thread_inversion_raises():
    a = SanitizedLock("A")
    b = SanitizedLock("B")

    def establish():
        with a:
            with b:
                pass

    thread = threading.Thread(target=establish)
    thread.start()
    thread.join()

    with b:
        with pytest.raises(LockOrderError):
            a.acquire()


def test_three_lock_cycle_detected_transitively():
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    c = SanitizedLock("C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with pytest.raises(LockOrderError):
            a.acquire()


def test_rlock_reentry_is_not_an_inversion():
    lock = SanitizedLock("R", reentrant=True)
    with lock:
        with lock:
            with lock:
                pass


def test_reset_forgets_established_order():
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    with a:
        with b:
            pass
    lockorder.reset()
    with b:
        with a:
            pass  # no error: the A->B edge was cleared


def test_factory_returns_plain_lock_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    lock = make_lock("plain")
    assert not isinstance(lock, SanitizedLock)
    rlock = make_rlock("plain-r")
    assert not isinstance(rlock, SanitizedLock)


def test_factory_returns_sanitized_lock_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled()
    lock = make_lock("sanitized")
    assert isinstance(lock, SanitizedLock)
    assert lock.name == "sanitized"
    rlock = make_rlock("sanitized-r")
    assert isinstance(rlock, SanitizedLock)
    with rlock:
        with rlock:
            pass


# ----------------------------------------------------- seeded inversion


class _Ledger:
    """Two-account toy: transfer locks A then B; audit is the seed bug."""

    def __init__(self, audit_order: tuple[str, str]):
        self.locks = {
            "A": make_lock("Ledger.A"),
            "B": make_lock("Ledger.B"),
        }
        self.balances = {"A": 100, "B": 100}
        self._audit_order = audit_order

    def transfer(self, amount: int) -> None:
        with self.locks["A"]:
            with self.locks["B"]:
                self.balances["A"] -= amount
                self.balances["B"] += amount

    def audit(self) -> int:
        first, second = self._audit_order
        with self.locks[first]:
            with self.locks[second]:
                return self.balances["A"] + self.balances["B"]


def test_seeded_ledger_inversion_caught(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    ledger = _Ledger(audit_order=("B", "A"))  # buggy: opposite of transfer
    ledger.transfer(10)
    with pytest.raises(LockOrderError):
        ledger.audit()


def test_seeded_ledger_fixed_order_passes(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    ledger = _Ledger(audit_order=("A", "B"))  # fixed: matches transfer
    ledger.transfer(10)
    assert ledger.audit() == 200
