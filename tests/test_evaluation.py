"""Tests for repro.evaluation: exact match, reports, error analysis,
extraction coverage."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    AccuracyReport,
    EvaluatedSample,
    Hardness,
    ValueDifficulty,
    analyze_failures,
    diagnose_sample,
    exact_match,
    measure_extraction_coverage,
    query_signature,
)
from repro.evaluation.difficulty import combine_value_difficulty
from repro.pipeline import StageTimings, TranslationResult
from repro.preprocessing import Preprocessor
from repro.semql import query_to_semql
from repro.spider.corpus import Example
from repro.sql import parse_sql


def _example(pets_schema, sql: str, question: str = "q", values=None) -> Example:
    from repro.evaluation.difficulty import classify_hardness

    query = parse_sql(sql, pets_schema)
    return Example(
        question=question,
        db_id="pets",
        gold_sql=sql,
        gold_query=query,
        gold_semql=query_to_semql(query, pets_schema),
        values=values or [],
        value_difficulties=[ValueDifficulty.EASY] * len(values or []),
        hardness=classify_hardness(query),
    )


class TestExactMatch:
    def test_select_order_insensitive(self, pets_schema):
        a = parse_sql("SELECT name, age FROM student", pets_schema)
        b = parse_sql("SELECT age, name FROM student", pets_schema)
        assert exact_match(a, b)

    def test_condition_order_insensitive(self, pets_schema):
        a = parse_sql(
            "SELECT name FROM student WHERE age > 20 AND sex = 'F'", pets_schema
        )
        b = parse_sql(
            "SELECT name FROM student WHERE sex = 'F' AND age > 20", pets_schema
        )
        assert exact_match(a, b)

    def test_values_ignored_by_default(self, pets_schema):
        """The paper's core criticism of Exact Matching Accuracy."""
        a = parse_sql("SELECT name FROM student WHERE age > 20", pets_schema)
        b = parse_sql("SELECT name FROM student WHERE age > 99", pets_schema)
        assert exact_match(a, b)
        assert not exact_match(a, b, with_values=True)

    def test_string_values_checked_when_requested(self, pets_schema):
        a = parse_sql(
            "SELECT name FROM student WHERE home_country = 'France'", pets_schema
        )
        b = parse_sql(
            "SELECT name FROM student WHERE home_country = 'Italy'", pets_schema
        )
        assert exact_match(a, b)
        assert not exact_match(a, b, with_values=True)

    def test_different_column_not_matched(self, pets_schema):
        a = parse_sql("SELECT name FROM student", pets_schema)
        b = parse_sql("SELECT age FROM student", pets_schema)
        assert not exact_match(a, b)

    def test_aggregate_distinguished(self, pets_schema):
        a = parse_sql("SELECT count(*) FROM student", pets_schema)
        b = parse_sql("SELECT count(*) FROM pet", pets_schema)
        assert not exact_match(a, b)

    def test_subquery_compared_recursively(self, pets_schema):
        a = parse_sql(
            "SELECT name FROM student WHERE stuid IN (SELECT stuid FROM has_pet)",
            pets_schema,
        )
        b = parse_sql(
            "SELECT name FROM student WHERE stuid IN (SELECT petid FROM has_pet)",
            pets_schema,
        )
        assert not exact_match(a, b)

    def test_compound_operator_distinguished(self, pets_schema):
        a = parse_sql(
            "SELECT name FROM student UNION SELECT name FROM student", pets_schema
        )
        b = parse_sql(
            "SELECT name FROM student INTERSECT SELECT name FROM student", pets_schema
        )
        assert not exact_match(a, b)

    def test_limit_presence_matters_without_values(self, pets_schema):
        a = parse_sql("SELECT name FROM student ORDER BY age DESC LIMIT 3", pets_schema)
        b = parse_sql("SELECT name FROM student ORDER BY age DESC", pets_schema)
        c = parse_sql("SELECT name FROM student ORDER BY age DESC LIMIT 5", pets_schema)
        assert not exact_match(a, b)
        assert exact_match(a, c)  # limit value ignored without values
        assert not exact_match(a, c, with_values=True)

    def test_signature_stable(self, pets_schema):
        query = parse_sql("SELECT name FROM student WHERE age > 20", pets_schema)
        assert query_signature(query) == query_signature(query)


class TestAccuracyReport:
    def _sample(self, pets_schema, correct: bool, hardness_sql: str, values=None):
        example = _example(pets_schema, hardness_sql, values=values)
        result = TranslationResult(question="q", sql="SELECT 1", timings=StageTimings())
        return EvaluatedSample(example, result, correct)

    def test_accuracy(self, pets_schema):
        report = AccuracyReport()
        report.add(self._sample(pets_schema, True, "SELECT name FROM student"))
        report.add(self._sample(pets_schema, False, "SELECT name FROM student"))
        assert report.accuracy == 0.5
        assert report.total == 2 and report.num_correct == 1

    def test_accuracy_by_hardness(self, pets_schema):
        report = AccuracyReport()
        report.add(self._sample(pets_schema, True, "SELECT name FROM student"))
        report.add(
            self._sample(
                pets_schema, False,
                "SELECT name FROM student UNION SELECT name FROM student",
            )
        )
        by_hardness = report.accuracy_by_hardness()
        assert by_hardness[Hardness.EASY] == (1.0, 1)
        assert by_hardness[Hardness.EXTRA_HARD] == (0.0, 1)

    def test_accuracy_by_value_difficulty(self, pets_schema):
        report = AccuracyReport()
        report.add(
            self._sample(
                pets_schema, True,
                "SELECT name FROM student WHERE age > 20", values=[20],
            )
        )
        report.add(self._sample(pets_schema, False, "SELECT name FROM student"))
        table = report.accuracy_by_value_difficulty()
        assert table[ValueDifficulty.EASY] == (1.0, 1)
        assert table[None] == (0.0, 1)

    def test_empty_report(self):
        assert AccuracyReport().accuracy == 0.0


class TestErrorAnalysis:
    def _evaluated(self, pets_schema, gold_sql: str, predicted_sql: str | None):
        example = _example(pets_schema, gold_sql)
        result = TranslationResult(question="q", timings=StageTimings())
        if predicted_sql is not None:
            query = parse_sql(predicted_sql, pets_schema)
            result.sql = predicted_sql
            result.semql = query_to_semql(query, pets_schema)
        return EvaluatedSample(example, result, correct=False)

    def test_column_error(self, pets_schema):
        sample = self._evaluated(
            pets_schema,
            "SELECT name FROM student",
            "SELECT age FROM student",
        )
        assert "column" in diagnose_sample(sample).causes

    def test_sketch_error(self, pets_schema):
        sample = self._evaluated(
            pets_schema,
            "SELECT name FROM student WHERE age > 20",
            "SELECT name FROM student",
        )
        assert "sketch" in diagnose_sample(sample).causes

    def test_table_error(self, pets_schema):
        sample = self._evaluated(
            pets_schema,
            "SELECT count(*) FROM student",
            "SELECT count(*) FROM pet",
        )
        causes = diagnose_sample(sample).causes
        assert "table" in causes

    def test_value_error_isolated(self, pets_schema):
        sample = self._evaluated(
            pets_schema,
            "SELECT name FROM student WHERE home_country = 'France'",
            "SELECT name FROM student WHERE home_country = 'Italy'",
        )
        assert diagnose_sample(sample).causes == ("value",)

    def test_no_prediction(self, pets_schema):
        sample = self._evaluated(pets_schema, "SELECT name FROM student", None)
        assert diagnose_sample(sample).causes == ("no_prediction",)

    def test_false_negative(self, pets_schema):
        sample = self._evaluated(
            pets_schema,
            "SELECT name FROM student",
            "SELECT name FROM student",
        )
        assert diagnose_sample(sample).causes == ("false_negative",)

    def test_analyze_failures_only_counts_failures(self, pets_schema):
        wrong = self._evaluated(
            pets_schema, "SELECT name FROM student", "SELECT age FROM student"
        )
        right = EvaluatedSample(
            _example(pets_schema, "SELECT name FROM student"),
            TranslationResult(question="q", sql="x", timings=StageTimings()),
            correct=True,
        )
        report = analyze_failures([wrong, right])
        assert report.num_failures == 1
        shares = report.cause_shares()
        assert shares["column"] == 1.0


class TestExtractionCoverage:
    def test_coverage_on_pets(self, pets_db, pets_schema):
        examples = [
            _example(
                pets_schema,
                "SELECT name FROM student WHERE home_country = 'France'",
                question="List the name of students from France",
                values=["France"],
            ),
            _example(
                pets_schema,
                "SELECT name FROM student WHERE age > 20",
                question="students older than 20",
                values=[20],
            ),
            _example(
                pets_schema,
                "SELECT name FROM student WHERE home_country = 'Italy'",
                question="students whose home country is Atlantis",  # unfindable
                values=["Zzzzz"],
            ),
        ]
        report = measure_extraction_coverage(
            examples, {"pets": Preprocessor(pets_db)}
        )
        assert report.total_samples == 3
        assert report.covered_samples == 2
        assert 0.6 < report.sample_coverage < 0.7

    def test_no_value_examples_ignored(self, pets_db, pets_schema):
        examples = [_example(pets_schema, "SELECT name FROM student")]
        report = measure_extraction_coverage(
            examples, {"pets": Preprocessor(pets_db)}
        )
        assert report.total_samples == 0


class TestValueDifficultyCombination:
    def test_empty_is_none(self):
        assert combine_value_difficulty([]) is None

    def test_max_of_classes(self):
        assert (
            combine_value_difficulty(
                [ValueDifficulty.EASY, ValueDifficulty.HARD, ValueDifficulty.MEDIUM]
            )
            is ValueDifficulty.HARD
        )
