"""Cluster subsystem tests: protocol, routing, supervision policies, and
a real forked 2-worker cluster (heartbeats, failover, deadline propagation).
"""

from __future__ import annotations

import json
import socket
import sqlite3
import threading
import time

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterService,
    HashRing,
    WorkerStatus,
    protocol,
)
from repro.cluster.health import CircuitBreaker, ExponentialBackoff
from repro.serving import QueueFullError, UnknownDatabaseError


class TestProtocol:
    def test_round_trip_frames(self):
        left, right = socket.socketpair()
        try:
            frames = [
                protocol.request_frame(
                    7, "how many?", "pets", beam_size=2, execute=True,
                    budget_s=1.5,
                ),
                protocol.response_frame(7, {"sql": "SELECT 1"}),
                protocol.reject_frame(8, "queue full"),
                protocol.ping_frame(1),
                protocol.pong_frame(1, {"status": "ok"}, {"x": 1}),
                protocol.ready_frame(0, 0.25, ["pets"]),
                protocol.shutdown_frame(),
            ]
            for frame in frames:
                protocol.send_frame(left, frame)
            for frame in frames:
                assert protocol.recv_frame(right) == frame
        finally:
            left.close()
            right.close()

    def test_out_of_order_ids_survive_the_wire(self):
        left, right = socket.socketpair()
        try:
            protocol.send_frame(left, protocol.response_frame(2, {"a": 1}))
            protocol.send_frame(left, protocol.response_frame(1, {"b": 2}))
            assert protocol.recv_frame(right)["id"] == 2
            assert protocol.recv_frame(right)["id"] == 1
        finally:
            left.close()
            right.close()

    def test_oversized_frame_refused_on_send(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(protocol.ProtocolError):
                protocol.send_frame(
                    left, {"type": "x", "blob": "a" * (protocol.MAX_FRAME_BYTES + 1)}
                )
        finally:
            left.close()
            right.close()

    def test_clean_eof_raises_peer_closed(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(protocol.PeerClosedError):
                protocol.recv_frame(right)
        finally:
            right.close()

    def test_non_object_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            body = b'["not", "an", "object"]'
            left.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_dribbled_frame_one_byte_at_a_time(self):
        # A peer that trickles one byte per write must not confuse the
        # stateless reader: recv_into loops until the frame completes.
        left, right = socket.socketpair()
        try:
            frame = protocol.response_frame(3, {"sql": "SELECT 1", "k": "v" * 40})
            body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
            payload = len(body).to_bytes(4, "big") + body
            done = threading.Event()

            def dribble():
                for i in range(len(payload)):
                    left.sendall(payload[i:i + 1])
                done.set()

            thread = threading.Thread(target=dribble, daemon=True)
            thread.start()
            assert protocol.recv_frame(right) == frame
            done.wait(5.0)
            thread.join(5.0)
        finally:
            left.close()
            right.close()

    def test_budget_re_anchoring_is_clock_skew_immune(self):
        # Sender: 1.5 s left on its own clock.
        budget = protocol.remaining_budget_s(100.0 + 1.5, now=100.0)
        assert budget == pytest.approx(1.5)
        # Receiver re-anchors against a completely different clock.
        deadline = protocol.budget_to_deadline(budget, now=5000.0)
        assert deadline == pytest.approx(5001.5)
        # Expired budgets clamp at zero rather than going negative.
        assert protocol.remaining_budget_s(99.0, now=100.0) == 0.0


class TestFrameConnection:
    def _pair(self, **kwargs):
        left, right = socket.socketpair()
        return (
            protocol.FrameConnection(left, **kwargs),
            protocol.FrameConnection(right),
        )

    def test_json_round_trip(self):
        sender, receiver = self._pair()
        try:
            frame = protocol.request_frame(
                1, "count pets", "pets", beam_size=None, execute=False,
                budget_s=2.0,
            )
            sender.send(frame)
            assert receiver.recv() == frame
        finally:
            sender.close()
            receiver.close()

    def test_binary_fast_path_round_trips_large_fields(self):
        sender, receiver = self._pair(binary=True)
        try:
            big_sql = 'SELECT "' + "x" * 4096 + '"'          # forces a blob
            frame = protocol.response_frame(
                9,
                {
                    "sql": big_sql,
                    "rows": [[1, "a"], [2, "b" * 2048]],
                    "raw": b"\x00\x01\xff" * 500,
                    "small": "inline",
                },
            )
            sender.send(frame)
            got = receiver.recv()
            # bytes fields come back as bytes, big strings as str — the
            # fast path must be invisible to the application layer.
            assert got["payload"]["sql"] == big_sql
            assert got["payload"]["raw"] == b"\x00\x01\xff" * 500
            assert got["payload"]["rows"][1][1] == "b" * 2048
            assert got["payload"]["small"] == "inline"
        finally:
            sender.close()
            receiver.close()

    def test_binary_sender_without_large_fields_emits_plain_json(self):
        sender, receiver = self._pair(binary=True)
        try:
            frame = protocol.ping_frame(4)
            sender.send(frame)
            assert receiver.recv() == frame
        finally:
            sender.close()
            receiver.close()

    def test_reserved_blob_key_refused(self):
        sender, receiver = self._pair(binary=True)
        try:
            with pytest.raises(protocol.ProtocolError):
                sender.send({"type": "x", "payload": {"\x00blob": [0, "s"]}})
        finally:
            sender.close()
            receiver.close()

    def test_dribbled_bytes_resume_across_timeouts(self):
        # The satellite regression: a reader interrupted mid-frame
        # (socket timeout standing in for EINTR) must resume cleanly,
        # even when the peer dribbles one byte at a time.
        left, right = socket.socketpair()
        conn = protocol.FrameConnection(right)
        right.settimeout(0.005)
        try:
            frame = protocol.response_frame(5, {"sql": "SELECT 1"})
            body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
            payload = len(body).to_bytes(4, "big") + body

            def dribble():
                for i in range(len(payload)):
                    left.sendall(payload[i:i + 1])
                    time.sleep(0.015)

            thread = threading.Thread(target=dribble, daemon=True)
            thread.start()
            deadline = time.monotonic() + 10.0
            timeouts = 0
            while True:
                try:
                    got = conn.recv()
                    break
                except TimeoutError:
                    timeouts += 1
                    assert time.monotonic() < deadline, "dribble never completed"
            assert got == frame
            assert timeouts > 0, "test must actually interrupt mid-frame"
            thread.join(5.0)
        finally:
            conn.close()
            left.close()

    def test_back_to_back_frames_reuse_the_buffer(self):
        sender, receiver = self._pair(binary=True)
        try:
            frames = [
                protocol.response_frame(i, {"sql": "S" * (1 << (i % 12))})
                for i in range(32)
            ]
            def pump():
                for frame in frames:
                    sender.send(frame)
            thread = threading.Thread(target=pump, daemon=True)
            thread.start()
            for frame in frames:
                assert receiver.recv() == frame
            thread.join(5.0)
        finally:
            sender.close()
            receiver.close()

    def test_eof_mid_frame_is_protocol_error(self):
        left, right = socket.socketpair()
        conn = protocol.FrameConnection(right)
        try:
            left.sendall((100).to_bytes(4, "big") + b"{")  # truncated body
            left.close()
            with pytest.raises(protocol.ProtocolError):
                conn.recv()
        finally:
            conn.close()

    def test_clean_eof_is_peer_closed(self):
        left, right = socket.socketpair()
        conn = protocol.FrameConnection(right)
        left.close()
        try:
            with pytest.raises(protocol.PeerClosedError):
                conn.recv()
        finally:
            conn.close()


class TestHashRing:
    DB_IDS = [f"db_{i}" for i in range(50)]

    def test_routing_is_deterministic_and_total(self):
        ring = HashRing([0, 1, 2])
        for db_id in self.DB_IDS:
            assert ring.route(db_id) == ring.route(db_id)
            assert ring.route(db_id) in (0, 1, 2)

    def test_shards_partition_the_databases(self):
        ring = HashRing([0, 1, 2])
        shards = ring.shards(self.DB_IDS)
        flat = [db_id for shard in shards.values() for db_id in shard]
        assert sorted(flat) == sorted(self.DB_IDS)

    def test_worker_death_only_remaps_its_own_shard(self):
        ring = HashRing([0, 1, 2])
        before = {db_id: ring.route(db_id) for db_id in self.DB_IDS}
        for db_id, owner in before.items():
            after = ring.preference(db_id, alive=[w for w in (0, 1, 2) if w != 1])[0]
            if owner != 1:
                # Consistency: survivors keep their shard (and warm caches).
                assert after == owner
            else:
                assert after != 1

    def test_preference_lists_distinct_failover_order(self):
        ring = HashRing([0, 1, 2, 3])
        order = ring.preference("some_db")
        assert sorted(order) == [0, 1, 2, 3]
        assert ring.preference("some_db", alive=[2]) == [2]
        assert ring.preference("some_db", alive=[]) == []

    def test_rejects_bad_worker_ids(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([1, 1])


class TestSupervisionPolicies:
    def test_backoff_doubles_and_caps(self):
        backoff = ExponentialBackoff(initial=0.25, factor=2.0, max_delay=1.0)
        assert [backoff.next_delay() for _ in range(4)] == [0.25, 0.5, 1.0, 1.0]
        backoff.reset()
        assert backoff.next_delay() == 0.25

    def test_breaker_trips_inside_window(self):
        clock = [0.0]
        breaker = CircuitBreaker(max_failures=3, window_s=10.0, clock=lambda: clock[0])
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.open

    def test_old_failures_age_out_of_the_window(self):
        clock = [0.0]
        breaker = CircuitBreaker(max_failures=3, window_s=10.0, clock=lambda: clock[0])
        breaker.record_failure()
        breaker.record_failure()
        clock[0] = 11.0  # first two fall out of the sliding window
        assert breaker.record_failure() is False
        assert breaker.recent_failures == 1

    def test_success_closes_the_breaker(self):
        clock = [0.0]
        breaker = CircuitBreaker(max_failures=1, window_s=10.0, clock=lambda: clock[0])
        assert breaker.record_failure() is True
        breaker.record_success()
        assert not breaker.open


def _make_sqlite(path, table: str, rows: int = 12) -> None:
    connection = sqlite3.connect(path)
    connection.executescript(
        f"""
        CREATE TABLE {table} (
            {table}_id INTEGER PRIMARY KEY,
            name VARCHAR(40),
            score INTEGER
        );
        """
    )
    connection.executemany(
        f"INSERT INTO {table} VALUES (?, ?, ?)",
        [(i, f"{table}_{i}", i * 3) for i in range(1, rows + 1)],
    )
    connection.commit()
    connection.close()


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """A real 2-worker forked cluster over two tiny databases."""
    root = tmp_path_factory.mktemp("cluster")
    _make_sqlite(root / "left.sqlite", "city")
    _make_sqlite(root / "right.sqlite", "pet")
    service = ClusterService(
        [("left", str(root / "left.sqlite")), ("right", str(root / "right.sqlite"))],
        config=ClusterConfig(
            workers=2,
            heartbeat_interval_s=0.2,
            restart_backoff_initial_s=0.2,
        ),
    )
    service.start()
    assert service.wait_ready(timeout=60.0), service.worker_states()
    yield service
    service.stop(timeout=10.0)


class TestClusterIntegration:
    def test_translates_across_both_shards(self, cluster):
        for db_id in ("left", "right"):
            response = cluster.translate(
                "How many rows are there?", db_id, execute=True,
                timeout_ms=30_000,
            )
            assert response.sql is not None
            assert response.error is None
            assert response.rows == [(12,)]

    def test_unknown_database_rejected_without_ipc(self, cluster):
        with pytest.raises(UnknownDatabaseError):
            cluster.translate("hi", "nope", timeout_ms=5_000)

    def test_concurrent_load_spread_over_workers(self, cluster):
        errors = []

        def client(index: int) -> None:
            db_id = ("left", "right")[index % 2]
            try:
                response = cluster.translate(
                    "List all names.", db_id, timeout_ms=30_000
                )
                assert response.sql is not None
            except Exception as exc:  # pragma: no cover - diagnostic path
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors

    def test_expired_deadline_rejected_without_occupying_a_worker(self, cluster):
        """Deadline propagation: a request that is already expired when the
        dispatcher sees it is rejected retriably and never reaches a worker."""
        expired_before = cluster.registry.counter("cluster_expired_total").value
        with pytest.raises(QueueFullError):
            cluster.translate(
                "this deadline is already gone", "left", timeout_ms=0.0
            )
        assert (
            cluster.registry.counter("cluster_expired_total").value
            == expired_before + 1
        )
        # No worker slot was consumed: everything still answers promptly.
        response = cluster.translate(
            "How many rows are there?", "left", timeout_ms=30_000
        )
        assert response.sql is not None

    def test_health_and_metrics_aggregate_across_workers(self, cluster):
        # Generate some traffic, then wait for a pong to carry snapshots.
        cluster.translate("How many rows are there?", "left", timeout_ms=30_000)
        cluster.translate("How many rows are there?", "right", timeout_ms=30_000)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            fleet = cluster.metrics.snapshot()["fleet"]
            if fleet.get("serving_requests_total", 0) >= 2:
                break
            time.sleep(0.2)
        else:
            pytest.fail(f"worker metrics never aggregated: {fleet}")
        health = cluster.health()
        assert health["mode"] == "cluster"
        assert health["ready"] is True
        assert set(health["workers"]) == {"0", "1"}
        text = cluster.metrics.render_text()
        assert 'cluster_worker_up{worker="0"} 1' in text
        assert "serving_requests_total" in text

    def test_worker_kill_fails_over_and_restarts(self, cluster):
        victim = cluster.ring.route("left")
        cluster.kill_worker(victim)
        # Failover: the surviving worker adopts the shard (lazily), so
        # requests keep being answered while the victim is down.
        deadline = time.monotonic() + 30.0
        answered = False
        while time.monotonic() < deadline:
            try:
                response = cluster.translate(
                    "How many rows are there?", "left", timeout_ms=30_000
                )
            except QueueFullError:
                time.sleep(0.1)  # retriable shedding during the blip
                continue
            if response.sql is not None:
                answered = True
                break
        assert answered, "no request answered after the worker kill"
        # Supervision: the victim comes back READY with a restart recorded.
        # (restart_count gates the loop: the slot still looks READY for a
        # beat after the SIGKILL, until the receiver thread sees the EOF.)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if (
                cluster.handles[victim].restart_count >= 1
                and cluster.handles[victim].status is WorkerStatus.READY
            ):
                break
            time.sleep(0.1)
        assert cluster.handles[victim].status is WorkerStatus.READY
        assert cluster.handles[victim].restart_count >= 1
        assert cluster.registry.counter("cluster_worker_restarts_total").value >= 1


class TestClusterValidation:
    def test_needs_databases_and_workers(self):
        with pytest.raises(ValueError):
            ClusterService([])
        with pytest.raises(ValueError):
            ClusterService([("a", "x.sqlite")], config=ClusterConfig(workers=0))
        with pytest.raises(ValueError):
            ClusterService([("a", "x"), ("a", "y")])

    def test_translate_before_start_rejected(self):
        service = ClusterService([("a", "x.sqlite")])
        with pytest.raises(QueueFullError):
            service.translate("hi", "a")
