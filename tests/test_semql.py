"""Unit tests for SemQL 2.0: grammar, trees, SQL round-trips."""

from __future__ import annotations

import pytest

from repro.errors import GrammarError, SemQLError, TranslationError
from repro.schema import SchemaGraph
from repro.semql import (
    ActionType,
    GRAMMAR_ACTION_LIST,
    GrammarAction,
    GrammarState,
    NUM_GRAMMAR_ACTIONS,
    SemQLNode,
    actions_for_type,
    actions_to_tree,
    children_of,
    num_productions,
    production_index,
    production_name,
    query_to_semql,
    semql_to_query,
    tree_to_actions,
)
from repro.sql import SqlRenderer, parse_sql


class TestGrammar:
    def test_value_extension_present(self):
        # SemQL 2.0's contribution over SemQL 1.0: the V non-terminal.
        assert ActionType.V in children_of(
            ActionType.FILTER, production_index(ActionType.FILTER, "eq_v")
        )
        assert ActionType.V in children_of(
            ActionType.SUPERLATIVE, production_index(ActionType.SUPERLATIVE, "most")
        )

    def test_between_has_two_values(self):
        children = children_of(
            ActionType.FILTER, production_index(ActionType.FILTER, "between_v")
        )
        assert children == (ActionType.A, ActionType.V, ActionType.V)

    def test_global_action_space_consistent(self):
        assert NUM_GRAMMAR_ACTIONS == len(GRAMMAR_ACTION_LIST)
        assert len(set(GRAMMAR_ACTION_LIST)) == NUM_GRAMMAR_ACTIONS

    def test_actions_for_type_partition(self):
        # every grammar action belongs to exactly one type bucket
        seen = []
        for action_type in (
            ActionType.Z, ActionType.R, ActionType.SELECT, ActionType.ORDER,
            ActionType.SUPERLATIVE, ActionType.FILTER, ActionType.A,
        ):
            seen.extend(actions_for_type(action_type))
        assert sorted(seen) == list(range(NUM_GRAMMAR_ACTIONS))

    def test_pointer_types_have_no_productions(self):
        for pointer in (ActionType.C, ActionType.T, ActionType.V):
            assert num_productions(pointer) == 0

    def test_production_name_roundtrip(self):
        for action_type in (ActionType.Z, ActionType.FILTER, ActionType.A):
            for production in range(num_productions(action_type)):
                name = production_name(action_type, production).split(".", 1)[1]
                assert production_index(action_type, name) == production

    def test_invalid_production_raises(self):
        with pytest.raises(GrammarError):
            GrammarAction(ActionType.Z, 99)
        with pytest.raises(GrammarError):
            GrammarAction(ActionType.C, 0)


class TestGrammarState:
    def test_full_walkthrough(self):
        state = GrammarState()
        assert state.expected_type() is ActionType.Z
        state.advance_grammar(GrammarAction(ActionType.Z, production_index(ActionType.Z, "single")))
        assert state.expected_type() is ActionType.R
        state.advance_grammar(GrammarAction(ActionType.R, production_index(ActionType.R, "select")))
        assert state.expected_type() is ActionType.SELECT
        state.advance_grammar(GrammarAction(ActionType.SELECT, 0))  # n1
        assert state.expected_type() is ActionType.A
        state.advance_grammar(GrammarAction(ActionType.A, production_index(ActionType.A, "none")))
        assert state.expected_type() is ActionType.C
        state.advance_pointer(ActionType.C)
        assert state.expected_type() is ActionType.T
        state.advance_pointer(ActionType.T)
        assert state.finished

    def test_wrong_type_raises(self):
        state = GrammarState()
        with pytest.raises(GrammarError):
            state.advance_grammar(GrammarAction(ActionType.R, 0))

    def test_pointer_when_grammar_expected_raises(self):
        state = GrammarState()
        with pytest.raises(GrammarError):
            state.advance_pointer(ActionType.C)

    def test_finished_state_raises(self):
        state = GrammarState(root=ActionType.C)
        state.advance_pointer(ActionType.C)
        with pytest.raises(GrammarError):
            state.expected_type()


class TestTreeSerialization:
    def _simple_tree(self, pets_schema):
        query = parse_sql("SELECT name FROM student WHERE age > 20", pets_schema)
        return query_to_semql(query, pets_schema)

    def test_actions_roundtrip(self, pets_schema):
        tree = self._simple_tree(pets_schema)
        actions = tree_to_actions(tree)
        rebuilt = actions_to_tree(actions)
        assert rebuilt.to_sexpr() == tree.to_sexpr()

    def test_validate_rejects_wrong_arity(self):
        node = SemQLNode(ActionType.Z, production_index(ActionType.Z, "single"))
        with pytest.raises(SemQLError):
            node.validate()

    def test_pointer_payload_required(self):
        node = SemQLNode(ActionType.V)
        with pytest.raises(SemQLError):
            node.validate()

    def test_empty_sequence_raises(self):
        with pytest.raises(SemQLError):
            actions_to_tree([])

    def test_trailing_actions_raise(self, pets_schema):
        tree = self._simple_tree(pets_schema)
        actions = tree_to_actions(tree)
        with pytest.raises(SemQLError):
            actions_to_tree(actions + [actions[-1]])

    def test_walk_preorder(self, pets_schema):
        tree = self._simple_tree(pets_schema)
        nodes = list(tree.walk())
        assert nodes[0].action_type is ActionType.Z
        assert nodes[1].action_type is ActionType.R

    def test_pointer_leaves(self, pets_schema):
        tree = self._simple_tree(pets_schema)
        values = tree.pointer_leaves(ActionType.V)
        assert len(values) == 1
        assert values[0].value == 20


ROUNDTRIP_QUERIES = [
    "SELECT count(*) FROM student",
    "SELECT name FROM student WHERE home_country = 'France' AND age > 20",
    "SELECT DISTINCT home_country FROM student",
    "SELECT name, age FROM student WHERE sex = 'F'",
    "SELECT avg(weight) FROM pet",
    "SELECT name FROM student ORDER BY age DESC",
    "SELECT name FROM student ORDER BY age ASC LIMIT 3",
    "SELECT home_country, count(*) FROM student GROUP BY home_country",
    "SELECT home_country FROM student GROUP BY home_country HAVING count(*) > 1",
    "SELECT name FROM student WHERE stuid IN (SELECT stuid FROM has_pet)",
    "SELECT name FROM student WHERE stuid NOT IN (SELECT stuid FROM has_pet)",
    "SELECT name FROM student WHERE age > (SELECT avg(age) FROM student)",
    "SELECT name FROM student WHERE age BETWEEN 18 AND 25",
    "SELECT name FROM student WHERE name LIKE '%a%'",
    "SELECT name FROM student WHERE sex = 'F' UNION SELECT name FROM student WHERE age > 24",
    "SELECT name FROM student WHERE sex = 'F' INTERSECT SELECT name FROM student WHERE age > 20",
    "SELECT name FROM student WHERE sex = 'F' EXCEPT SELECT name FROM student WHERE age > 20",
]


class TestSqlRoundTrips:
    @pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
    def test_execution_equivalent_roundtrip(self, sql, pets_db, pets_graph):
        """SQL -> SemQL -> SQL must preserve execution results."""
        schema = pets_db.schema
        query = parse_sql(sql, schema)
        tree = query_to_semql(query, schema)
        tree.validate()
        rebuilt = semql_to_query(tree, schema)
        renderer = SqlRenderer(pets_graph)
        original_rows = sorted(map(tuple, pets_db.execute(sql)))
        rebuilt_rows = sorted(map(tuple, pets_db.execute(renderer.render(rebuilt))))
        assert rebuilt_rows == original_rows

    def test_group_by_reinferred(self, pets_schema):
        sql = "SELECT home_country, count(*) FROM student GROUP BY home_country"
        tree = query_to_semql(parse_sql(sql, pets_schema), pets_schema)
        rebuilt = semql_to_query(tree, pets_schema)
        assert rebuilt.body.group_by  # GROUP BY was dropped and re-inferred

    def test_superlative_maps_to_order_limit(self, pets_schema):
        sql = "SELECT name FROM student ORDER BY age DESC LIMIT 2"
        tree = query_to_semql(parse_sql(sql, pets_schema), pets_schema)
        names = [n.name for n in tree.walk()]
        assert "Superlative.most" in names
        rebuilt = semql_to_query(tree, pets_schema)
        assert rebuilt.body.limit == 2

    def test_limit_without_order_rejected(self, pets_schema):
        query = parse_sql("SELECT name FROM student LIMIT 3", pets_schema)
        with pytest.raises(SemQLError):
            query_to_semql(query, pets_schema)

    def test_where_having_merge_and_split(self, pets_schema):
        sql = (
            "SELECT home_country FROM student WHERE age > 18 "
            "GROUP BY home_country HAVING count(*) > 1"
        )
        tree = query_to_semql(parse_sql(sql, pets_schema), pets_schema)
        rebuilt = semql_to_query(tree, pets_schema)
        assert rebuilt.body.where is not None
        assert rebuilt.body.having is not None

    def test_bad_limit_value_raises(self, pets_schema):
        sql = "SELECT name FROM student ORDER BY age DESC LIMIT 2"
        tree = query_to_semql(parse_sql(sql, pets_schema), pets_schema)
        superlative = next(
            n for n in tree.walk() if n.action_type is ActionType.SUPERLATIVE
        )
        superlative.children[0].value = "not a number"
        with pytest.raises(TranslationError):
            semql_to_query(tree, pets_schema)

    def test_qualified_star_count_roundtrip(self, pets_db, pets_graph):
        """count(T2.*) (the paper's Fig. 1 form) round-trips to an
        executable COUNT(*) that still ranges over the join."""
        schema = pets_db.schema
        sql = (
            "SELECT count(T2.*) FROM student AS T1 JOIN has_pet AS T2 ON "
            "T1.stuid = T2.stuid WHERE T1.home_country = 'France'"
        )
        tree = query_to_semql(parse_sql(sql, schema), schema)
        rebuilt = semql_to_query(tree, schema)
        rendered = SqlRenderer(pets_graph).render(rebuilt)
        # Ann is the only French student with a pet -> count 1
        assert pets_db.execute(rendered) == [(1,)]

    def test_star_binds_unreferenced_table(self, pets_schema):
        """count(*) over a join keeps the join table in SemQL scope."""
        sql = (
            "SELECT count(*) FROM student JOIN has_pet "
            "ON student.stuid = has_pet.stuid WHERE student.age > 20"
        )
        tree = query_to_semql(parse_sql(sql, pets_schema), pets_schema)
        tables = {n.table for n in tree.pointer_leaves(ActionType.T)}
        assert "has_pet" in tables
