"""Fixture-snippet tests for the repro.analysis lint engine.

Each rule gets a pair: a snippet that must fire and a compliant twin
that must stay quiet.  Snippets are written under ``tmp_path/repro/...``
so the path-scoped rules (GRAD-SAFE on ``repro/nn/``, NO-PRINT's
scripts exemption) see the same logical paths as the real tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.baseline import (
    Baseline,
    build_baseline,
    diff_against_baseline,
    fingerprint_violations,
)


def check_snippet(tmp_path: Path, relpath: str, source: str):
    """Write one snippet under a fake ``repro`` tree and analyze it."""
    target = tmp_path / "repro" / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return analyze_paths([tmp_path])


def rules_fired(result) -> set[str]:
    return {violation.rule for violation in result.violations}


# ------------------------------------------------------------- LOCK-GUARD


def test_lock_guard_fires_on_unguarded_access(tmp_path):
    result = check_snippet(tmp_path, "serving/thing.py", """\
from repro.concurrency import make_lock

class Thing:
    def __init__(self):
        self._lock = make_lock("Thing._lock")
        self._items = []  # guarded by: _lock

    def broken(self):
        return len(self._items)
""")
    assert "LOCK-GUARD" in rules_fired(result)
    [violation] = [v for v in result.violations if v.rule == "LOCK-GUARD"]
    assert "_items" in violation.message


def test_lock_guard_quiet_when_access_is_inside_with(tmp_path):
    result = check_snippet(tmp_path, "serving/thing.py", """\
from repro.concurrency import make_lock

class Thing:
    def __init__(self):
        self._lock = make_lock("Thing._lock")
        self._items = []  # guarded by: _lock

    def fine(self):
        with self._lock:
            return len(self._items)
""")
    assert "LOCK-GUARD" not in rules_fired(result)


def test_lock_guard_locked_suffix_functions_exempt(tmp_path):
    result = check_snippet(tmp_path, "serving/thing.py", """\
from repro.concurrency import make_lock

class Thing:
    def __init__(self):
        self._lock = make_lock("Thing._lock")
        self._items = []  # guarded by: _lock

    def _count_locked(self):
        return len(self._items)
""")
    assert "LOCK-GUARD" not in rules_fired(result)


def test_lock_guard_module_level_name(tmp_path):
    result = check_snippet(tmp_path, "serving/mod.py", """\
from repro.concurrency import make_lock

_registry = {}  # guarded by: _registry_lock
_registry_lock = make_lock("mod._registry_lock")

def broken():
    return _registry.get("x")

def fine():
    with _registry_lock:
        return _registry.get("x")
""")
    guard = [v for v in result.violations if v.rule == "LOCK-GUARD"]
    assert len(guard) == 1
    assert guard[0].line == 7


# -------------------------------------------------------------- WALLCLOCK


def test_wallclock_fires_on_time_time(tmp_path):
    result = check_snippet(tmp_path, "serving/clock.py", """\
import time

def stamp():
    return time.time()
""")
    assert "WALLCLOCK" in rules_fired(result)


def test_wallclock_quiet_on_monotonic(tmp_path):
    result = check_snippet(tmp_path, "serving/clock.py", """\
import time

def stamp():
    return time.monotonic() + time.perf_counter()
""")
    assert "WALLCLOCK" not in rules_fired(result)


# ------------------------------------------------------------ EXC-SWALLOW


def test_exc_swallow_fires_on_silent_broad_except(tmp_path):
    result = check_snippet(tmp_path, "serving/swallow.py", """\
def broken():
    try:
        risky()
    except Exception:
        pass
""")
    assert "EXC-SWALLOW" in rules_fired(result)


def test_exc_swallow_quiet_when_reraised(tmp_path):
    result = check_snippet(tmp_path, "serving/swallow.py", """\
def fine():
    try:
        risky()
    except Exception:
        cleanup()
        raise
""")
    assert "EXC-SWALLOW" not in rules_fired(result)


def test_exc_swallow_quiet_when_metric_recorded(tmp_path):
    result = check_snippet(tmp_path, "serving/swallow.py", """\
def fine(errors):
    try:
        risky()
    except Exception:
        errors.inc()
""")
    assert "EXC-SWALLOW" not in rules_fired(result)


def test_exc_swallow_quiet_with_justification(tmp_path):
    result = check_snippet(tmp_path, "serving/swallow.py", """\
def fine():
    try:
        risky()
    except Exception:  # justified: best-effort cleanup on shutdown
        pass
""")
    assert "EXC-SWALLOW" not in rules_fired(result)


def test_exc_swallow_ignores_narrow_except(tmp_path):
    result = check_snippet(tmp_path, "serving/swallow.py", """\
def fine():
    try:
        risky()
    except KeyError:
        pass
""")
    assert "EXC-SWALLOW" not in rules_fired(result)


# --------------------------------------------------------------- NO-PRINT


def test_no_print_fires_in_library_module(tmp_path):
    result = check_snippet(tmp_path, "serving/noisy.py", """\
def announce():
    print("hello")
""")
    assert "NO-PRINT" in rules_fired(result)


def test_no_print_quiet_in_main_and_scripts(tmp_path):
    for relpath in ("__main__.py", "scripts/tool.py"):
        result = check_snippet(tmp_path, relpath, """\
print("cli output is fine here")
""")
        assert "NO-PRINT" not in rules_fired(result), relpath


# -------------------------------------------------------------- GRAD-SAFE


def test_grad_safe_fires_on_ungated_backward(tmp_path):
    result = check_snippet(tmp_path, "nn/ops.py", """\
def add(a, b, out):
    def backward():
        a.grad += out.grad
    out._backward = backward
""")
    assert "GRAD-SAFE" in rules_fired(result)


def test_grad_safe_quiet_when_gated(tmp_path):
    result = check_snippet(tmp_path, "nn/ops.py", """\
def add(a, b, out, grad_enabled):
    def backward():
        a.grad += out.grad
    if a.requires_grad:
        out._backward = backward
""")
    assert "GRAD-SAFE" not in rules_fired(result)


def test_grad_safe_quiet_outside_nn(tmp_path):
    result = check_snippet(tmp_path, "serving/ops.py", """\
def attach(out, backward):
    out._backward = backward
""")
    assert "GRAD-SAFE" not in rules_fired(result)


# ------------------------------------------------------------ METRICS-REG


def test_metrics_reg_fires_on_kind_collision(tmp_path):
    result = check_snippet(tmp_path, "serving/m.py", """\
def setup(metrics):
    a = metrics.counter("requests_total")
    b = metrics.histogram("requests_total")
""")
    assert "METRICS-REG" in rules_fired(result)


def test_metrics_reg_fires_on_bad_counter_suffix(tmp_path):
    result = check_snippet(tmp_path, "serving/m.py", """\
def setup(metrics):
    a = metrics.counter("requests")
    b = metrics.gauge("depth_total")
""")
    assert len([v for v in result.violations if v.rule == "METRICS-REG"]) == 2


def test_metrics_reg_quiet_on_consistent_names(tmp_path):
    result = check_snippet(tmp_path, "serving/m.py", """\
def setup(metrics):
    a = metrics.counter("requests_total")
    b = metrics.counter("requests_total")
    c = metrics.histogram("latency_ms")
""")
    assert "METRICS-REG" not in rules_fired(result)


# ------------------------------------------------------------ suppression


def test_line_suppression_with_reason(tmp_path):
    result = check_snippet(tmp_path, "serving/sup.py", """\
import time

def stamp():
    return time.time()  # lint: disable=WALLCLOCK (epoch needed for display)
""")
    assert rules_fired(result) == set()


def test_suppression_without_reason_does_not_count(tmp_path):
    result = check_snippet(tmp_path, "serving/sup.py", """\
import time

def stamp():
    return time.time()  # lint: disable=WALLCLOCK
""")
    fired = rules_fired(result)
    # A reason-less disable is itself a violation AND does not suppress.
    assert "LINT-SUPPRESS" in fired
    assert "WALLCLOCK" in fired


def test_def_scope_suppression_covers_whole_function(tmp_path):
    result = check_snippet(tmp_path, "serving/sup.py", """\
import time

def stamps():  # lint: disable=WALLCLOCK (display timestamps)
    first = time.time()
    second = time.time()
    return first, second
""")
    assert rules_fired(result) == set()


def test_file_disable_covers_whole_file(tmp_path):
    result = check_snippet(tmp_path, "serving/sup.py", """\
# lint: file-disable=NO-PRINT (demo module)
print("one")

def f():
    print("two")
""")
    assert "NO-PRINT" not in rules_fired(result)


# --------------------------------------------------------------- baseline


def _two_violations(tmp_path):
    result = check_snippet(tmp_path, "serving/clock.py", """\
import time

def stamp():
    return time.time()

def stamp2():
    return time.time()
""")
    return [v for v in result.violations if v.rule == "WALLCLOCK"]


def test_baseline_roundtrip_and_matching(tmp_path):
    violations = _two_violations(tmp_path)
    assert len(violations) == 2
    baseline = build_baseline(violations, {})
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    diff = diff_against_baseline(violations, loaded)
    assert diff.new == [] and diff.stale == []
    assert len(diff.matched) == 2


def test_baseline_detects_new_and_stale(tmp_path):
    violations = _two_violations(tmp_path)
    baseline = build_baseline(violations[:1], {})
    diff = diff_against_baseline(violations, baseline)
    assert len(diff.new) == 1 and diff.stale == []
    diff = diff_against_baseline([], baseline)
    assert diff.new == [] and len(diff.stale) == 1


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    violations = _two_violations(tmp_path)
    pairs = fingerprint_violations(violations)
    assert len({fp for _, fp in pairs}) == 2


def test_baseline_unjustified_entries_reported(tmp_path):
    violations = _two_violations(tmp_path)
    baseline = build_baseline(violations, {})
    assert len(baseline.unjustified()) == 2
    justified = build_baseline(
        violations,
        {fp: "epoch display" for _, fp in fingerprint_violations(violations)},
    )
    assert justified.unjustified() == []


# ------------------------------------------------------------- repo clean


def test_real_tree_is_clean_against_committed_baseline():
    repo_root = Path(__file__).resolve().parents[1]
    result = analyze_paths([repo_root / "src" / "repro"])
    assert result.parse_errors == []
    baseline = Baseline.load(repo_root / "analysis-baseline.json")
    diff = diff_against_baseline(result.violations, baseline)
    assert diff.new == [], [v.render() for v in diff.new]
    assert diff.stale == [], [e.fingerprint for e in diff.stale]
    assert baseline.unjustified() == []


def test_committed_baseline_is_valid_json():
    repo_root = Path(__file__).resolve().parents[1]
    data = json.loads((repo_root / "analysis-baseline.json").read_text())
    assert data["version"] == 1
    for entry in data["entries"]:
        assert entry["justification"].strip(), entry
