"""Walkthrough of the value-candidate machinery (paper Section IV-B).

Reproduces the paper's motivating examples without any neural model:

* "French students"            -> similarity finds the stored 'France',
* "female"                     -> the gender heuristic proposes 'F',
* "John F Kennedy Intl Airport"-> n-grams + similarity find 'JFK',
* "cardiology"                 -> needs domain knowledge -> *not* found
  (the paper's *hard* class: this is exactly where ValueNet loses
  samples that ValueNet light still solves),
* "top 3"                      -> numbers survive validation unlocated.

Run:  python examples/value_candidates.py
"""

from __future__ import annotations

from repro.db import Database
from repro.ner import GazetteerRecognizer, ValueExtractor
from repro.preprocessing import Preprocessor
from repro.schema import Column, ColumnType, Schema, Table


def build_demo_database() -> Database:
    airport = Table("airport", (
        Column("airport_id", "airport", ColumnType.NUMBER, is_primary_key=True),
        Column("code", "airport", ColumnType.TEXT),
        Column("city", "airport", ColumnType.TEXT),
    ))
    student = Table("student", (
        Column("stu_id", "student", ColumnType.NUMBER, is_primary_key=True),
        Column("name", "student", ColumnType.TEXT),
        Column("gender", "student", ColumnType.TEXT),
        Column("home_country", "student", ColumnType.TEXT),
    ))
    physician = Table("physician", (
        Column("phys_id", "physician", ColumnType.NUMBER, is_primary_key=True),
        Column("specialty", "physician", ColumnType.TEXT),
    ))
    schema = Schema("demo", [airport, student, physician])
    db = Database.create(schema)
    db.insert_rows("airport", [
        (1, "JFK", "New York"), (2, "LAX", "Los Angeles"), (3, "CDG", "Paris"),
    ])
    db.insert_rows("student", [
        (1, "Ann Miller", "F", "France"),
        (2, "Bob Smith", "M", "Italy"),
        (3, "Eva Novak", "F", "France"),
    ])
    db.insert_rows("physician", [(1, "CARD"), (2, "NEURO")])
    return db


QUESTIONS = [
    "How many French students are there?",
    "List all female students.",
    "Show flights to John F Kennedy International Airport.",
    "Which physicians work in cardiology?",
    "List the top 3 students.",
    "Find students whose name contains 'Mill'.",
]


def main() -> None:
    db = build_demo_database()
    preprocessor = Preprocessor(
        db, extractor=ValueExtractor(gazetteer=GazetteerRecognizer())
    )

    for question in QUESTIONS:
        pre = preprocessor.run(question)
        print(f"\nQ: {question}")
        print("  extracted spans: ", [
            f"{s.text!r}({s.kind.value}/{s.source})" for s in pre.extracted
        ])
        if pre.candidates:
            print("  candidates:")
            for candidate in pre.candidates:
                print("    -", candidate.describe())
        else:
            print("  candidates: (none survived validation)")

    print(
        "\nNote how 'cardiology' produced no candidate: the database stores"
        "\nthe code 'CARD', which no string-similarity scan can reach."
        "\nThis is the paper's *hard* value class — the main source of the"
        "\ngap between ValueNet and ValueNet light (Section V-E)."
    )


if __name__ == "__main__":
    main()
