"""Attach ValueNet machinery to an arbitrary SQLite database.

Demonstrates the real-world entry point: point the library at an existing
SQLite file, introspect its schema (tables, columns, PK/FK graph), build
the inverted index over its base data, and inspect what the pre-processing
and JOIN inference produce.  A rule-based baseline translates a few
questions without any training.

Run:  python examples/custom_database.py
"""

from __future__ import annotations

import sqlite3
import tempfile
from pathlib import Path

from repro.baselines import HeuristicBaseline
from repro.db import Database
from repro.preprocessing import Preprocessor
from repro.schema import SchemaGraph, plan_joins


def create_demo_file(path: Path) -> None:
    """A plain SQLite file, as a user would bring it."""
    connection = sqlite3.connect(path)
    connection.executescript(
        """
        CREATE TABLE band (
            band_id INTEGER PRIMARY KEY,
            band_name VARCHAR(40),
            country VARCHAR(40)
        );
        CREATE TABLE album (
            album_id INTEGER PRIMARY KEY,
            title VARCHAR(60),
            band_id INTEGER REFERENCES band(band_id),
            year INTEGER,
            sales REAL
        );
        INSERT INTO band VALUES (1, 'The Quiet Larks', 'France');
        INSERT INTO band VALUES (2, 'Iron Meadow', 'Sweden');
        INSERT INTO band VALUES (3, 'Paper Tigers', 'France');
        INSERT INTO album VALUES (1, 'Morning Glass', 1, 2011, 1.2);
        INSERT INTO album VALUES (2, 'Night Signals', 2, 2015, 3.4);
        INSERT INTO album VALUES (3, 'Silver Roads', 1, 2018, 0.8);
        INSERT INTO album VALUES (4, 'Before the Rain', 3, 2019, 2.1);
        """
    )
    connection.commit()
    connection.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "music.sqlite"
        create_demo_file(path)

        # 1. Attach + introspect
        db = Database.open(path)  # schema introspected from SQLite metadata
        print("== Introspected schema ==")
        for table in db.schema.tables:
            columns = ", ".join(
                f"{c.name}:{c.column_type.value}{'*' if c.is_primary_key else ''}"
                for c in table.columns
            )
            print(f"  {table.name}({columns})")
        for fk in db.schema.foreign_keys:
            print(f"  FK {fk.source_table}.{fk.source_column} -> "
                  f"{fk.target_table}.{fk.target_column}")

        # 2. JOIN inference over the PK/FK graph
        graph = SchemaGraph(db.schema)
        plan = plan_joins(graph, ["album", "band"])
        print("\n== Join plan for {album, band} ==")
        print("  tables:", plan.tables)
        for edge in plan.edges:
            print("  on:", edge.condition(edge.left_table, edge.right_table))

        # 3. Pre-processing against real base data
        preprocessor = Preprocessor(db)
        question = "How many albums do bands from France have?"
        pre = preprocessor.run(question)
        print(f"\n== Pre-processing: {question!r} ==")
        print("  candidates:", [c.describe() for c in pre.candidates])
        hints = [(h.token.text, h.hint.name) for h in pre.hinted_tokens
                 if h.hint.name != "NONE"]
        print("  question hints:", hints)

        # 4. Rule-based translation (no training required)
        baseline = HeuristicBaseline(db, preprocessor=preprocessor)
        print("\n== Heuristic baseline translations ==")
        for q in [
            "How many bands are there?",
            "List the albums from 2018.",
            "Show the bands from France.",
        ]:
            result = baseline.translate(q)
            rows = db.execute(result.sql) if result.sql else None
            print(f"  Q: {q}\n     SQL: {result.sql}\n     ->  {rows}")

        db.close()


if __name__ == "__main__":
    main()
