"""Full workflow: corpus -> training -> Execution Accuracy on unseen DBs.

Generates (a scaled-down version of) the synthetic Spider-like corpus,
trains ValueNet light, and evaluates Execution Accuracy on the dev split
— four databases the model has never seen, mirroring the paper's
transfer-learning setup.

Run:  python examples/train_and_evaluate.py [--scale N] [--epochs E]
      (defaults are small so the script finishes in a few minutes;
       scale 150 / epochs 12 approaches the numbers in EXPERIMENTS.md)
"""

from __future__ import annotations

import argparse

from repro.config import ModelConfig, TrainingConfig
from repro.evaluation import evaluate_pipeline
from repro.model import (
    Trainer,
    ValueNetModel,
    build_preprocessors,
    build_vocabulary,
    prepare_samples,
)
from repro.pipeline import ValueNetLightPipeline
from repro.spider import CorpusConfig, generate_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=40,
                        help="training examples per domain")
    parser.add_argument("--epochs", type=int, default=5)
    args = parser.parse_args()

    print(f"== Generating corpus (scale={args.scale}) ==")
    corpus = generate_corpus(
        CorpusConfig(train_per_domain=args.scale, dev_per_domain=max(args.scale // 3, 10))
    )
    print(f"train={corpus.num_train} examples over {len(corpus.train_domains)} DBs; "
          f"dev={corpus.num_dev} examples over {len(corpus.dev_domains)} unseen DBs")

    print("\n== Building vocabulary and preparing samples ==")
    vocab = build_vocabulary(
        [e.question for e in corpus.train],
        [corpus.schema(d) for d in corpus.train_domains],
        [str(v) for e in corpus.train for v in e.values],
        vocab_size=2000,
    )
    model = ValueNetModel(vocab, ModelConfig(dim=48, ff_dim=96, decoder_hidden=96))
    preprocessors = build_preprocessors(corpus)
    samples, dropped = prepare_samples(
        corpus.train, preprocessors, model, mode="light"
    )
    print(f"prepared {len(samples)} samples ({dropped} dropped)")

    print(f"\n== Training for {args.epochs} epochs ==")
    trainer = Trainer(model, TrainingConfig(epochs=args.epochs, batch_size=16))
    history = trainer.train(samples)
    for epoch in history.epochs:
        print(f"  epoch {epoch.epoch}: loss {epoch.mean_loss:.3f} "
              f"({epoch.seconds:.0f}s)")

    print("\n== Execution Accuracy on unseen dev databases ==")
    pipelines = {
        db_id: ValueNetLightPipeline(
            model, corpus.database(db_id), preprocessor=preprocessors[db_id]
        )
        for db_id in corpus.dev_domains
    }
    report = evaluate_pipeline(pipelines, corpus.dev, corpus, light=True)
    print(f"overall: {report.accuracy:.1%} ({report.num_correct}/{report.total})")
    for hardness, (accuracy, n) in report.accuracy_by_hardness().items():
        print(f"  {hardness.value:<12} {accuracy:.1%}  (n={n})")

    corpus.close()


if __name__ == "__main__":
    main()
