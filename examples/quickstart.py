"""Quickstart: the paper's running example, end to end.

Builds the Fig. 1 database (student / has_pet / pet), trains a small
ValueNet on a handful of question/SQL pairs, and then translates the
paper's running question — including the values 'France' and 20 — into
executable SQL.

Run:  python examples/quickstart.py        (about a minute on a laptop CPU)
"""

from __future__ import annotations

from repro.config import ModelConfig, TrainingConfig
from repro.db import Database
from repro.model import (
    Trainer,
    TrainSample,
    ValueNetModel,
    build_vocabulary,
)
from repro.model.supervision import tree_to_steps
from repro.pipeline import ValueNetPipeline
from repro.preprocessing import Preprocessor
from repro.schema import Column, ColumnType, ForeignKey, Schema, Table
from repro.semql import query_to_semql
from repro.sql import parse_sql


def build_pets_database() -> Database:
    """The paper's Fig. 1 schema with a few rows of base data."""
    student = Table("student", (
        Column("stuid", "student", ColumnType.NUMBER, is_primary_key=True),
        Column("name", "student", ColumnType.TEXT),
        Column("age", "student", ColumnType.NUMBER),
        Column("home_country", "student", ColumnType.TEXT),
    ))
    pet = Table("pet", (
        Column("petid", "pet", ColumnType.NUMBER, is_primary_key=True),
        Column("pet_type", "pet", ColumnType.TEXT),
        Column("weight", "pet", ColumnType.NUMBER),
    ))
    has_pet = Table("has_pet", (
        Column("stuid", "has_pet", ColumnType.NUMBER),
        Column("petid", "has_pet", ColumnType.NUMBER),
    ))
    schema = Schema("pets", [student, pet, has_pet], [
        ForeignKey("has_pet", "stuid", "student", "stuid"),
        ForeignKey("has_pet", "petid", "pet", "petid"),
    ])
    db = Database.create(schema)
    db.insert_rows("student", [
        (1, "Ann Miller", 22, "France"),
        (2, "Bob Smith", 19, "France"),
        (3, "Cid Rossi", 25, "Italy"),
        (4, "Dana Levi", 21, "Spain"),
        (5, "Eva Novak", 23, "France"),
    ])
    db.insert_rows("pet", [
        (10, "Dog", 12.0), (11, "Cat", 3.5), (12, "Dog", 20.0), (13, "Parrot", 0.4),
    ])
    db.insert_rows("has_pet", [(1, 10), (3, 11), (4, 12), (5, 13)])
    return db


TRAINING_PAIRS = [
    ("How many students are there?", "SELECT count(*) FROM student"),
    ("List the name of all students.", "SELECT name FROM student"),
    ("List the name of students from Italy.",
     "SELECT name FROM student WHERE home_country = 'Italy'"),
    ("List the name of students from Spain.",
     "SELECT name FROM student WHERE home_country = 'Spain'"),
    ("List the name of students older than 21.",
     "SELECT name FROM student WHERE age > 21"),
    ("List the name of students older than 24.",
     "SELECT name FROM student WHERE age > 24"),
    ("How many pets are owned by students from Italy that are older than 20?",
     "SELECT count(T2.*) FROM student AS T1 JOIN has_pet AS T2 ON "
     "T1.stuid = T2.stuid WHERE T1.home_country = 'Italy' AND T1.age > 20"),
    ("How many pets are owned by students from Spain that are older than 19?",
     "SELECT count(T2.*) FROM student AS T1 JOIN has_pet AS T2 ON "
     "T1.stuid = T2.stuid WHERE T1.home_country = 'Spain' AND T1.age > 19"),
]


def main() -> None:
    db = build_pets_database()
    schema = db.schema
    preprocessor = Preprocessor(db)

    print("== Training a small ValueNet on", len(TRAINING_PAIRS), "examples ==")
    vocab = build_vocabulary(
        [q for q, _ in TRAINING_PAIRS] * 3, [schema], ["France", "Italy", "Spain"],
        vocab_size=400,
    )
    model = ValueNetModel(vocab, ModelConfig(
        dim=48, num_layers=1, num_heads=2, ff_dim=64, summary_hidden=24,
        decoder_hidden=64, pointer_hidden=32, dropout=0.0, word_dropout=0.05,
    ))

    samples = []
    for question, sql in TRAINING_PAIRS:
        pre = preprocessor.run(question)
        tree = query_to_semql(parse_sql(sql, schema), schema)
        steps = tree_to_steps(tree, schema, pre.candidates)
        if steps is None:
            raise RuntimeError(f"candidates missing for: {question}")
        samples.append(TrainSample(example=None, pre=pre, schema=schema, steps=steps))

    trainer = Trainer(model, TrainingConfig(
        epochs=40, batch_size=4,
        encoder_lr=2e-3, decoder_lr=3e-3, connection_lr=2e-3,
    ))
    history = trainer.train(samples)
    print(f"final training loss: {history.final_loss:.3f}")

    print("\n== Translating the paper's running example ==")
    pipeline = ValueNetPipeline(model, db, preprocessor=preprocessor)
    question = "How many pets are owned by French students that are older than 20?"
    result = pipeline.translate(question, execute=True)

    print("question:  ", question)
    print("candidates:", ", ".join(c.describe() for c in result.candidates))
    print("SemQL:     ", result.semql.to_sexpr() if result.semql else None)
    print("SQL:       ", result.sql)
    print("result:    ", result.rows)
    print("timings:   ", {k: f"{v * 1000:.1f}ms" for k, v in result.timings.as_dict().items()})

    # Sanity: Ann (France, 22) owns 1 pet; Eva (France, 23) owns 1 -> 2.
    if result.rows == [(2,)]:
        print("\nCorrect! 'French' was resolved to the stored value 'France' "
              "via similarity search, and 20 was extracted as a number.")
    else:
        print("\nNote: the tiny model missed this one — rerun or raise epochs.")


if __name__ == "__main__":
    main()
