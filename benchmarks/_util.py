"""Small shared helpers for the benchmark files."""

from __future__ import annotations


def print_table(title: str, rows: list[tuple], headers: tuple[str, ...]) -> None:
    """Render an aligned text table (benchmarks print paper-vs-measured)."""
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print(f"\n=== {title} ===")
    print("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rendered:
        print("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
