"""Serving-path benchmark: front door, decoder step cache, cluster IPC.

Produces ``BENCH_serving.json`` — the tracked serving-performance
trajectory.  Three sections:

* ``serving`` — closed-loop keep-alive HTTP clients driving
  ``POST /translate`` against the *same* deterministic backend mounted
  behind the threaded front door (baseline) and the selectors-based
  async front door (after).  Reports p50/p95/p99 latency, wall
  throughput, and throughput-per-core (requests per process-CPU-second
  — on a box with more clients than cores, CPU efficiency is the number
  that survives hardware changes).
* ``decode`` — single-query decode time with and without the
  per-request :class:`~repro.model.stepcache.StepCache`, greedy and
  beam, over a synthetic dev set.
* ``ipc`` — round-trip time of a large translate-shaped payload through
  the old stateless JSON framing vs the zero-copy
  :class:`~repro.cluster.protocol.FrameConnection` binary fast path.

The backend service is deterministic and cheap on purpose: the serving
section measures the *front door* (parsing, framing, scheduling), which
is what changed — a neural translate would bury the difference under
model compute that is identical for both implementations.

Run (writes ``BENCH_serving.json`` in the repo root, asserts the
acceptance gates)::

    PYTHONPATH=src python benchmarks/bench_serving.py

CI smoke (seconds, no gates, writes ``BENCH_serving.smoke.json``)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --check BENCH_serving.smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from _util import print_table  # noqa: E402
from repro.cluster import protocol  # noqa: E402
from repro.config import ModelConfig  # noqa: E402
from repro.model import ValueNetModel, build_vocabulary  # noqa: E402
from repro.nn.tensor import inference_mode  # noqa: E402
from repro.preprocessing import Preprocessor  # noqa: E402
from repro.serving import AsyncServingServer, MetricsRegistry, ServingServer  # noqa: E402
from repro.serving.service import ServeResponse  # noqa: E402
from repro.spider import CorpusConfig, generate_corpus  # noqa: E402

MODEL = ModelConfig(
    dim=48, num_layers=2, num_heads=2, ff_dim=96, summary_hidden=32,
    decoder_hidden=96, pointer_hidden=48, dropout=0.0, word_dropout=0.0,
)

REQUIRED_SCHEMA = {
    "version": int,
    "mode": str,
    "serving": dict,
    "decode": dict,
    "ipc": dict,
}
REQUIRED_SERVING_IMPL = (
    "impl", "requests", "p50_ms", "p95_ms", "p99_ms",
    "throughput_rps", "cpu_seconds", "throughput_per_core_rps",
    "connection_reuse_rate",
)
REQUIRED_DECODE_MODE = (
    "uncached_ms_per_query", "cached_ms_per_query", "speedup", "queries",
)


# --------------------------------------------------------------- serving


class EchoService:
    """Deterministic minimal backend: isolates front-door cost."""

    def __init__(self):
        self.metrics = MetricsRegistry()

    def is_ready(self):
        return True

    def health(self):
        return {"status": "ok", "ready": True}

    def translate(self, question, database_id=None, **kwargs):
        response = ServeResponse(question=question, database_id="bench")
        response.sql = "SELECT count(*) FROM bench WHERE name = 'x'"
        response.engine = "heuristic"
        return response


def _read_one_response(sock: socket.socket, buf: bytearray) -> None:
    """Consume exactly one Content-Length-framed response from ``sock``."""
    while b"\r\n\r\n" not in buf:
        data = sock.recv(65536)
        if not data:
            raise ConnectionError("server closed mid-response")
        buf += data
    head_end = buf.index(b"\r\n\r\n")
    head = bytes(buf[:head_end])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    total = head_end + 4 + length
    while len(buf) < total:
        data = sock.recv(65536)
        if not data:
            raise ConnectionError("server closed mid-body")
        buf += data
    del buf[:total]


def drive_front_door(server, *, clients: int, requests_per_client: int) -> dict:
    """Closed-loop keep-alive clients; returns the metrics dict."""
    host, port = server.server_address[:2]
    payload = json.dumps({"question": "how many rows named x?"}).encode()
    request = (
        f"POST /translate HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode() + payload

    latencies: list[list[float]] = [[] for _ in range(clients)]
    connects = [0] * clients
    errors: list[str] = []

    def client(index: int) -> None:
        sock = None
        buf = bytearray()
        try:
            for _ in range(requests_per_client):
                if sock is None:
                    sock = socket.create_connection((host, port), timeout=60)
                    sock.settimeout(60)
                    connects[index] += 1
                    buf.clear()
                start = time.perf_counter()
                try:
                    sock.sendall(request)
                    _read_one_response(sock, buf)
                except (ConnectionError, BrokenPipeError, OSError):
                    # Keep-alive refused (server-side close): reconnect
                    # once and retry — counted against the reuse rate.
                    sock.close()
                    sock = None
                    continue
                latencies[index].append(time.perf_counter() - start)
        except Exception as exc:  # pragma: no cover - report, don't hang
            errors.append(f"client {index}: {type(exc).__name__}: {exc}")
        finally:
            if sock is not None:
                sock.close()

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    if errors:
        raise RuntimeError(errors[:5])

    flat = np.array(sorted(t for per in latencies for t in per))
    total = int(flat.size)
    reuse = 1.0 - sum(connects) / max(total, 1)
    return {
        "requests": total,
        "p50_ms": round(float(np.percentile(flat, 50)) * 1e3, 3),
        "p95_ms": round(float(np.percentile(flat, 95)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(flat, 99)) * 1e3, 3),
        "throughput_rps": round(total / wall, 1),
        "cpu_seconds": round(cpu, 3),
        "throughput_per_core_rps": round(total / cpu, 1) if cpu > 0 else None,
        "connection_reuse_rate": round(reuse, 4),
    }


def bench_serving(*, clients: int, requests_per_client: int) -> dict:
    service = EchoService()
    results = {}
    for impl, server_cls in (
        ("threaded", ServingServer),
        ("async", AsyncServingServer),
    ):
        server = server_cls(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # Warm-up: thread spawn / selector registration effects out.
            drive_front_door(server, clients=2, requests_per_client=5)
            metrics = drive_front_door(
                server, clients=clients, requests_per_client=requests_per_client
            )
        finally:
            server.shutdown()
            server.server_close()
        metrics["impl"] = impl
        results[impl] = metrics

    baseline, after = results["threaded"], results["async"]
    summary = {
        "baseline": baseline,
        "after": after,
        "p99_reduction_pct": round(
            100.0 * (1.0 - after["p99_ms"] / baseline["p99_ms"]), 1
        ),
        "throughput_per_core_speedup": round(
            after["throughput_per_core_rps"] / baseline["throughput_per_core_rps"], 2
        ),
        "throughput_speedup": round(
            after["throughput_rps"] / baseline["throughput_rps"], 2
        ),
    }
    return summary


# ---------------------------------------------------------------- decode


def bench_decode(*, dev_per_domain: int, passes: int) -> dict:
    corpus = generate_corpus(
        CorpusConfig(train_per_domain=8, dev_per_domain=dev_per_domain)
    )
    try:
        vocab = build_vocabulary(
            [e.question for e in corpus.train],
            [corpus.schema(d) for d in corpus.train_domains],
            [str(v) for e in corpus.train for v in e.values],
            vocab_size=600,
        )
        model = ValueNetModel(vocab, MODEL)
        model.eval()

        encoded_examples = []
        for domain in corpus.dev_domains:
            db = corpus.database(domain)
            schema = db.schema
            preprocessor = Preprocessor(db)
            column_to_table = [
                None if column.is_star() else schema.table_index(column.table)
                for column in schema.all_columns()
            ]
            for example in corpus.dev:
                if example.db_id != domain:
                    continue
                pre = preprocessor.run(example.question)
                encoded_examples.append(
                    (model.encode(pre, schema), column_to_table)
                )

        def run(beam_size: int, use_cache: bool) -> tuple[float, int]:
            decoded = 0
            start = time.perf_counter()
            for _ in range(passes):
                for encoded, column_to_table in encoded_examples:
                    try:
                        with inference_mode():
                            model._decode_steps(
                                encoded, beam_size, column_to_table,
                                use_cache=use_cache,
                            )
                    except Exception:
                        continue  # untrained model: some decodes dead-end
                    decoded += 1
            return time.perf_counter() - start, decoded

        section = {}
        for label, beam_size in (("greedy", 1), ("beam", 3)):
            # Interleave measurement order so drift favors neither path.
            uncached_s, n_uncached = run(beam_size, use_cache=False)
            cached_s, n_cached = run(beam_size, use_cache=True)
            assert n_uncached == n_cached, "cached path changed decode outcomes"
            queries = max(n_cached, 1)
            section[label] = {
                "queries": queries,
                "beam_size": beam_size,
                "uncached_ms_per_query": round(uncached_s / queries * 1e3, 3),
                "cached_ms_per_query": round(cached_s / queries * 1e3, 3),
                "speedup": round(uncached_s / cached_s, 2),
            }
        section["single_query_decode_speedup"] = min(
            section["greedy"]["speedup"], section["beam"]["speedup"]
        )
        return section
    finally:
        corpus.close()


# ------------------------------------------------------------------- ipc


def bench_ipc(*, round_trips: int) -> dict:
    """Round-trip a large translate-shaped frame: old JSON vs binary."""
    frame = {
        "type": "result",
        "request_id": "bench-000",
        "sql": "SELECT name, label FROM bench WHERE " + " OR ".join(
            f"name = 'row-{i:04d}'" for i in range(200)
        ),
        "features": bytes(range(256)) * 64,  # 16 KiB binary field
        "candidates": ["candidate value " + "x" * 40 + str(i) for i in range(50)],
    }

    def run(send, recv) -> float:
        start = time.perf_counter()
        for _ in range(round_trips):
            send(frame)
            received = recv()
            assert received["request_id"] == "bench-000"
        return (time.perf_counter() - start) / round_trips * 1e6

    left, right = socket.socketpair()
    try:
        # bytes are not JSON-encodable: the stateless path measures a
        # comparable all-text frame (that is exactly its limitation).
        json_frame = dict(frame)
        json_frame["features"] = frame["features"].hex()
        json_us = run(
            lambda f: protocol.send_frame(left, json_frame),
            lambda: protocol.recv_frame(right),
        )
    finally:
        left.close()
        right.close()

    left, right = socket.socketpair()
    try:
        sender = protocol.FrameConnection(left, binary=True)
        receiver = protocol.FrameConnection(right)
        binary_us = run(sender.send, lambda: receiver.recv())
    finally:
        left.close()
        right.close()

    return {
        "payload_bytes_json": len(json.dumps(json_frame)),
        "round_trips": round_trips,
        "json_stateless_us": round(json_us, 1),
        "binary_connection_us": round(binary_us, 1),
        "speedup": round(json_us / binary_us, 2),
    }


# ------------------------------------------------------------------ main


def validate(path: Path) -> None:
    data = json.loads(path.read_text())
    for key, kind in REQUIRED_SCHEMA.items():
        assert key in data, f"missing top-level key {key!r}"
        assert isinstance(data[key], kind), f"{key!r} must be {kind.__name__}"
    for side in ("baseline", "after"):
        impl = data["serving"][side]
        for key in REQUIRED_SERVING_IMPL:
            assert key in impl, f"serving.{side} missing {key!r}"
    for mode in ("greedy", "beam"):
        for key in REQUIRED_DECODE_MODE:
            assert key in data["decode"][mode], f"decode.{mode} missing {key!r}"
    for key in ("json_stateless_us", "binary_connection_us", "speedup"):
        assert key in data["ipc"], f"ipc missing {key!r}"
    print(f"{path}: schema OK")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus / few requests; no acceptance gates")
    parser.add_argument("--output", type=Path, default=None,
                        help="output path (default: BENCH_serving.json, or "
                             "BENCH_serving.smoke.json with --smoke)")
    parser.add_argument("--check", type=Path, default=None, metavar="PATH",
                        help="validate an existing results file and exit")
    args = parser.parse_args(argv)

    if args.check is not None:
        validate(args.check)
        return 0

    if args.smoke:
        params = dict(clients=4, requests_per_client=12,
                      dev_per_domain=1, passes=1, round_trips=50)
    else:
        params = dict(clients=16, requests_per_client=64,
                      dev_per_domain=4, passes=3, round_trips=1500)

    serving = bench_serving(
        clients=params["clients"],
        requests_per_client=params["requests_per_client"],
    )
    decode = bench_decode(
        dev_per_domain=params["dev_per_domain"], passes=params["passes"]
    )
    ipc = bench_ipc(round_trips=params["round_trips"])

    results = {
        "version": 1,
        "mode": "smoke" if args.smoke else "full",
        "generated_by": "benchmarks/bench_serving.py",
        "config": {
            **params,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "serving": serving,
        "decode": decode,
        "ipc": ipc,
    }

    output = args.output or (
        REPO_ROOT / ("BENCH_serving.smoke.json" if args.smoke
                     else "BENCH_serving.json")
    )
    output.write_text(json.dumps(results, indent=2) + "\n")

    rows = []
    for side in ("baseline", "after"):
        impl = serving[side]
        rows.append((
            impl["impl"], f"{impl['p50_ms']}", f"{impl['p95_ms']}",
            f"{impl['p99_ms']}", f"{impl['throughput_per_core_rps']}",
            f"{impl['connection_reuse_rate']:.2%}",
        ))
    print_table(
        f"Front door ({params['clients']} keep-alive clients)",
        rows,
        ("impl", "p50 ms", "p95 ms", "p99 ms", "req/s/core", "reuse"),
    )
    print_table(
        "Decoder step cache",
        [
            (mode, f"{decode[mode]['uncached_ms_per_query']}",
             f"{decode[mode]['cached_ms_per_query']}",
             f"{decode[mode]['speedup']}x")
            for mode in ("greedy", "beam")
        ],
        ("mode", "uncached ms/q", "cached ms/q", "speedup"),
    )
    print_table(
        "Cluster IPC round trip",
        [("json stateless", f"{ipc['json_stateless_us']} us", "1.00x"),
         ("binary FrameConnection", f"{ipc['binary_connection_us']} us",
          f"{ipc['speedup']}x")],
        ("framing", "round trip", "speedup"),
    )
    print(f"\nwrote {output}")

    if not args.smoke:
        serving_ok = (
            serving["throughput_per_core_speedup"] >= 1.5
            or serving["p99_reduction_pct"] >= 30.0
        )
        assert serving_ok, (
            "serving gate failed: need >=1.5x throughput-per-core or >=30% "
            f"p99 reduction, got {serving['throughput_per_core_speedup']}x / "
            f"{serving['p99_reduction_pct']}%"
        )
        assert decode["single_query_decode_speedup"] >= 1.3, (
            "decode gate failed: need >=1.3x from the step cache, got "
            f"{decode['single_query_decode_speedup']}x"
        )
        print("acceptance gates: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
