"""Table I — ValueNet accuracy by Spider query hardness.

Paper: Easy 0.77, Medium 0.62, Hard 0.57, Extra-hard 0.43.  The shape
criterion is monotonicity: accuracy decreases as the Spider hardness
class increases (allowing small-sample noise between adjacent classes).
"""

from __future__ import annotations

from _util import print_table
from repro.baselines import PAPER_ACCURACY_BY_HARDNESS
from repro.evaluation import Hardness


def test_table1_accuracy_by_difficulty(bench, valuenet_report, benchmark):
    by_hardness = valuenet_report.accuracy_by_hardness()

    rows = []
    measured: list[float] = []
    for hardness in Hardness:
        paper = PAPER_ACCURACY_BY_HARDNESS[hardness.value]
        accuracy, n = by_hardness.get(hardness, (float("nan"), 0))
        measured.append(accuracy)
        rows.append((hardness.value, f"{paper:.2f}", f"{accuracy:.2f} (n={n})"))
    print_table(
        "Table I: ValueNet Execution Accuracy by query hardness",
        rows,
        ("difficulty", "paper", "measured"),
    )

    # Benchmark decoding on one hard dev example.
    hard_examples = [
        e for e in bench.corpus.dev if e.hardness in (Hardness.HARD, Hardness.EXTRA_HARD)
    ]
    pipelines = bench.valuenet_pipelines()
    example = hard_examples[0]
    benchmark(pipelines[example.db_id].translate, example.question)

    # Shape: easy clearly beats extra-hard; the sequence trends downward
    # (adjacent classes may swap within small-sample noise).
    assert measured[0] > measured[3], "easy must beat extra-hard"
    assert measured[0] >= measured[1] - 0.05
    assert measured[1] >= measured[3] - 0.05
