"""Ablation — the question/schema hints (paper Section III-A).

The hints are the "prior knowledge" ValueNet feeds its encoder.  This
inference-time ablation suppresses every hint (all tokens NONE, all schema
items NONE) on the dev split and re-measures Execution Accuracy with the
same trained weights: the drop quantifies how much of the unseen-database
transfer the hint features carry.
"""

from __future__ import annotations

import pytest

from _util import print_table
from repro.evaluation import evaluate_pipeline
from repro.preprocessing.hints import QuestionHint, SchemaHint


@pytest.fixture()
def hintless_preprocessors(bench):
    """Wrap each preprocessor so its output carries no hints."""

    class HintlessPreprocessor:
        def __init__(self, inner):
            self._inner = inner
            self.schema = inner.schema
            self.database = inner.database
            self.index = inner.index

        def _strip(self, pre):
            from repro.preprocessing.hints import HintedToken

            pre.hinted_tokens = [
                HintedToken(h.token, QuestionHint.NONE) for h in pre.hinted_tokens
            ]
            pre.schema_hints.table_hints = [
                SchemaHint.NONE for _ in pre.schema_hints.table_hints
            ]
            pre.schema_hints.column_hints = [
                SchemaHint.NONE for _ in pre.schema_hints.column_hints
            ]
            return pre

        def run(self, question, timings=None):
            return self._strip(self._inner.run(question, timings=timings))

        def run_light(self, question, values):
            return self._strip(self._inner.run_light(question, values))

    return {
        db_id: HintlessPreprocessor(preprocessor)
        for db_id, preprocessor in bench.preprocessors.items()
    }


def test_ablation_hints(bench, light_report, hintless_preprocessors, benchmark):
    from repro.pipeline import ValueNetLightPipeline

    corpus = bench.corpus
    pipelines = {
        db_id: ValueNetLightPipeline(
            bench.light_model, corpus.database(db_id),
            preprocessor=hintless_preprocessors[db_id],
        )
        for db_id in corpus.dev_domains
    }
    hintless = evaluate_pipeline(pipelines, corpus.dev, corpus, light=True)

    print_table(
        "Ablation: hint features (ValueNet light, dev split)",
        [
            ("with hints", f"{light_report.accuracy:.1%}"),
            ("hints suppressed", f"{hintless.accuracy:.1%}"),
            ("drop", f"{light_report.accuracy - hintless.accuracy:.1%}"),
        ],
        ("condition", "execution accuracy"),
    )

    example = corpus.dev[0]
    benchmark(pipelines[example.db_id].translate, example.question,
              values=example.values)

    assert hintless.accuracy < light_report.accuracy, (
        "removing the hints must hurt on unseen databases"
    )
