"""Section V-E — value extraction coverage.

Paper: for the 3,531 value-bearing train samples, the extraction pipeline
recovers all values for ~3,200 (~90%); the share stays constant on the
validation split, and "almost all of the remaining 10% not found values
belong to the difficulty classes Hard and Extra Hard".
"""

from __future__ import annotations

from _util import print_table
from repro.baselines import PAPER_EXTRACTION_COVERAGE
from repro.evaluation import ValueDifficulty, measure_extraction_coverage


def test_sec5e_extraction_coverage(bench, benchmark):
    corpus = bench.corpus

    train_report = measure_extraction_coverage(
        [e for e in corpus.train if e.values], bench.preprocessors
    )
    dev_report = measure_extraction_coverage(
        [e for e in corpus.dev if e.values], bench.preprocessors
    )

    rows = [
        ("all values found (train)", f"{PAPER_EXTRACTION_COVERAGE:.0%}",
         f"{train_report.sample_coverage:.1%} "
         f"({train_report.covered_samples}/{train_report.total_samples})"),
        ("all values found (dev)", "~constant",
         f"{dev_report.sample_coverage:.1%} "
         f"({dev_report.covered_samples}/{dev_report.total_samples})"),
        ("per-value coverage (train)", "-", f"{train_report.value_coverage:.1%}"),
    ]
    for difficulty in ValueDifficulty:
        rows.append((
            f"miss rate, {difficulty.value} values", "-",
            f"{train_report.miss_rate(difficulty):.1%} "
            f"(of {train_report.values_by_difficulty.get(difficulty, 0)})",
        ))
    print_table(
        "Section V-E: candidate-pipeline value coverage",
        rows,
        ("quantity", "paper", "measured"),
    )

    # Benchmark the extraction pipeline on one value-bearing question.
    example = next(e for e in corpus.dev if e.values)
    benchmark(bench.preprocessors[example.db_id].run, example.question)

    # Shape criteria: high-but-imperfect coverage; misses concentrate in
    # the hard/extra-hard classes.
    assert 0.75 < train_report.sample_coverage < 1.0
    assert abs(train_report.sample_coverage - dev_report.sample_coverage) < 0.15
    easy_miss = train_report.miss_rate(ValueDifficulty.EASY)
    hard_miss = train_report.miss_rate(ValueDifficulty.HARD)
    extra_miss = train_report.miss_rate(ValueDifficulty.EXTRA_HARD)
    assert max(hard_miss, extra_miss) > easy_miss, (
        "misses must concentrate in the hard/extra-hard value classes"
    )
