"""Section V-G — error analysis over failed dev samples.

Paper (176 manually analyzed failures, multi-label): wrong column 50%,
SQL-sketch errors 39% (76% of them on Hard/Extra-hard queries), wrong
value 9%, false negatives 9%.  We diagnose every failed dev sample
automatically by comparing predicted and gold SemQL trees.
"""

from __future__ import annotations

from _util import print_table
from repro.evaluation import CAUSES, PAPER_ERROR_SHARES, analyze_failures
from repro.evaluation.difficulty import Hardness


def test_sec5g_error_analysis(bench, valuenet_report, benchmark):
    failures = valuenet_report.failures()
    report = benchmark(analyze_failures, valuenet_report.samples)
    shares = report.cause_shares()

    rows = []
    for cause in CAUSES:
        paper = PAPER_ERROR_SHARES.get(cause)
        rows.append((
            cause,
            f"{paper:.0%}" if paper is not None else "-",
            f"{shares[cause]:.0%} ({report.cause_counts()[cause]})",
        ))
    print_table(
        f"Section V-G: causes over {report.num_failures} failed dev samples "
        "(multi-label)",
        rows,
        ("cause", "paper", "measured"),
    )

    # Paper: the majority (76%) of sketch errors are Hard/Extra-hard.
    sketch_failures = [
        d for d in report.diagnoses if "sketch" in d.causes
    ]
    hard_sketch = [
        d for d in sketch_failures
        if d.sample.example.hardness in (Hardness.HARD, Hardness.EXTRA_HARD)
    ]
    if sketch_failures:
        hard_share = len(hard_sketch) / len(sketch_failures)
        print(f"  sketch errors on Hard/Extra-hard queries: {hard_share:.0%} "
              "(paper: 76%)")

    # Shape criteria: column errors are the dominant cause; value-selection
    # errors are a small minority (the candidate machinery works).
    assert report.num_failures == len(failures)
    assert shares["column"] >= max(shares["value"], 0.15), (
        "column prediction should dominate the error causes"
    )
    assert shares["value"] < 0.35
