"""Table II — translation time per pipeline stage.

Paper (1,034 dev samples, V100 + Xeon): pre-processing 80 ms, value lookup
234 ms, encoder/decoder 76 ms, post-processing 13 ms, query execution
15 ms — about 418 ms per question, with value lookup the dominant stage.

Our databases are far smaller than Spider's, so absolute lookup times
shrink; the shape criteria are (1) interactive total latency (well under a
second) and (2) post-processing and execution being minor stages, exactly
as the paper reports.
"""

from __future__ import annotations

from _util import print_table
from repro.baselines import PAPER_TRANSLATION_TIME_MS
from repro.pipeline import STAGES


def test_table2_translation_time(bench, valuenet_report, benchmark):
    timings = valuenet_report.timings

    rows = []
    for stage in STAGES:
        paper_mean, paper_std = PAPER_TRANSLATION_TIME_MS[stage]
        rows.append((
            stage,
            f"{paper_mean:.0f} ± {paper_std:.0f} ms",
            f"{timings.mean_ms(stage):.1f} ± {timings.std_ms(stage):.1f} ms",
        ))
    rows.append((
        "total",
        f"{sum(m for m, _ in PAPER_TRANSLATION_TIME_MS.values()):.0f} ms",
        f"{timings.mean_total_ms():.1f} ms",
    ))
    print_table(
        f"Table II: per-stage translation time "
        f"(avg over {len(timings.samples)} dev samples)",
        rows,
        ("stage", "paper (V100, Spider)", "measured (CPU, synthetic)"),
    )

    # Benchmark the full end-to-end translate call.
    pipelines = bench.valuenet_pipelines()
    example = bench.corpus.dev[1]
    benchmark(pipelines[example.db_id].translate, example.question)

    # Shape criteria.
    assert timings.mean_total_ms() < 1000, "translation must stay interactive"
    assert timings.mean_ms("postprocessing") < timings.mean_ms("encoder_decoder")
    assert timings.mean_ms("execution") < timings.mean_total_ms() * 0.5
