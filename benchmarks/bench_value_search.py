"""Value-search benchmark: blocking strategies and index persistence.

Table II of the paper shows value lookup dominating translation time;
this benchmark isolates the two wins of the sub-linear search layer:

1. **Blocking** — Damerau-Levenshtein DP calls and wall clock for the
   same query workload under three strategies over the synthetic Spider
   corpus:

   * *naive* — full DP against every (value, location) pair,
   * *length-band* — the previous ``BlockedValuePool`` (first-char or
     ±k length band, per-column pools, no cross-column dedup),
   * *q-gram* — the current searcher (global dedup pool, trigram count
     filter, banded kernel).  Acceptance: >= 5x fewer DP calls than the
     length band.

2. **Persistence** — cold registry start (column scans, q-gram posting
   derivation, bundle save) versus warm start (fingerprint check + bundle
   load) through ``IndexRegistry``, on scaled synthetic databases — the
   corpus toys build in well under a millisecond, so fixed process
   overheads would drown the comparison there.  Acceptance: warm >= 10x
   faster than cold.

Runs standalone (``PYTHONPATH=../src python bench_value_search.py``,
add ``--smoke`` for the CI-sized corpus) or under pytest with the
``slow`` marker.
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
import time
from collections import defaultdict
from pathlib import Path

import pytest

from _util import print_table
from repro.db import Database
from repro.index import IndexRegistry, InvertedIndex, SimilaritySearcher
from repro.schema import Column, ColumnType, Schema, Table
from repro.spider import CorpusConfig, generate_corpus
from repro.text.distance import damerau_levenshtein

pytestmark = pytest.mark.slow

MAX_DISTANCE = 2


# ----------------------------------------------------- strategy baselines


class _LengthBandPool:
    """The pre-q-gram ``BlockedValuePool``: first-char bucket union ±k
    length band (kept here as the benchmark baseline)."""

    def __init__(self, values):
        self._values = list(values)
        self._by_first = defaultdict(list)
        self._by_length = defaultdict(list)
        for i, value in enumerate(self._values):
            lowered = value.lower()
            if lowered:
                self._by_first[lowered[0]].append(i)
            self._by_length[len(lowered)].append(i)

    def candidates(self, query, *, max_distance):
        lowered = query.lower()
        picked = set()
        if lowered:
            picked.update(self._by_first.get(lowered[0], ()))
        for length in range(
            max(0, len(lowered) - max_distance), len(lowered) + max_distance + 1
        ):
            picked.update(self._by_length.get(length, ()))
        return [self._values[i] for i in sorted(picked)]


def _naive_scan(pairs, queries):
    """Full DP against every (value, location) pair."""
    dp_calls = 0
    start = time.perf_counter()
    for query in queries:
        for value, _location in pairs:
            dp_calls += 1
            damerau_levenshtein(query, value.lower(), max_distance=MAX_DISTANCE)
    return dp_calls, time.perf_counter() - start


def _length_band_scan(index, queries):
    """The previous searcher: per-column pools, band blocking, full DP."""
    pools = {
        location: _LengthBandPool(index.values_in_column(location))
        for location in index.text_locations()
    }
    dp_calls = 0
    start = time.perf_counter()
    for query in queries:
        for pool in pools.values():
            for value in pool.candidates(query, max_distance=MAX_DISTANCE):
                dp_calls += 1
                damerau_levenshtein(query, value.lower(), max_distance=MAX_DISTANCE)
    return dp_calls, time.perf_counter() - start


def _qgram_scan(searcher, queries):
    """The current searcher (memo cleared of reuse: queries are unique)."""
    before = searcher.stats.dp_calls
    start = time.perf_counter()
    for query in queries:
        searcher.search(query, max_distance=MAX_DISTANCE, max_results=100)
    return searcher.stats.dp_calls - before, time.perf_counter() - start


def _query_workload(index, per_database):
    """Deterministic near-miss queries derived from indexed values."""
    values = sorted({value.lower() for value, _ in index.iter_text_values()})
    sample = values[:: max(1, len(values) // per_database)]
    queries = []
    for v in sample:
        if len(v) >= 3:
            queries.append(v[1:] + v[0])
            queries.append(v[:-1])
            mid = len(v) // 2
            queries.append(v[:mid] + "z" + v[mid + 1:])
        queries.append(v)
    return list(dict.fromkeys(queries))


# ------------------------------------------------------------- benchmark


def bench_blocking_strategies(corpus, *, queries_per_db=20):
    rows = []
    totals = {"naive": [0, 0.0], "band": [0, 0.0], "qgram": [0, 0.0]}
    for domain in sorted(corpus.domains):
        database = corpus.database(domain)
        index = InvertedIndex.build(database)
        searcher = SimilaritySearcher(index)
        pairs = list(index.iter_text_values())
        queries = _query_workload(index, queries_per_db)

        naive_calls, naive_s = _naive_scan(pairs, queries)
        band_calls, band_s = _length_band_scan(index, queries)
        qgram_calls, qgram_s = _qgram_scan(searcher, queries)
        for key, calls, seconds in (
            ("naive", naive_calls, naive_s),
            ("band", band_calls, band_s),
            ("qgram", qgram_calls, qgram_s),
        ):
            totals[key][0] += calls
            totals[key][1] += seconds
        rows.append((
            domain, len(pairs), len(queries),
            naive_calls, band_calls, qgram_calls,
            f"{band_calls / max(1, qgram_calls):.1f}x",
        ))

    print_table(
        f"DP calls per blocking strategy (k={MAX_DISTANCE})",
        rows,
        ("database", "pairs", "queries", "naive", "length-band", "q-gram", "band/qgram"),
    )
    naive_calls, naive_s = totals["naive"]
    band_calls, band_s = totals["band"]
    qgram_calls, qgram_s = totals["qgram"]
    reduction = band_calls / max(1, qgram_calls)
    print_table(
        "Totals",
        [
            ("naive full scan", naive_calls, f"{naive_s * 1e3:.1f} ms", "1.0x"),
            ("length-band", band_calls, f"{band_s * 1e3:.1f} ms",
             f"{naive_calls / max(1, band_calls):.1f}x"),
            ("q-gram", qgram_calls, f"{qgram_s * 1e3:.1f} ms",
             f"{naive_calls / max(1, qgram_calls):.1f}x"),
        ],
        ("strategy", "DP calls", "wall clock", "calls vs naive"),
    )
    print(f"\n  q-gram vs length-band DP-call reduction: {reduction:.1f}x "
          f"(acceptance: >= 5x)")
    return reduction


_SYLLABLES = (
    "an ber cor dan el fen gor hal in jor kel lum mar nor ol per qui ran "
    "sel tor ul ver win xan yor zel"
).split()


def _scaled_database(n_rows, *, seed):
    """A deterministic entity-style database with ``n_rows`` rows across
    three text columns (names, titles, addresses) — the string-length and
    pool-size regime the index actually serves, which the toy corpus
    databases (tens of values) cannot exercise."""
    rng = random.Random(seed)

    def word():
        return "".join(
            rng.choice(_SYLLABLES) for _ in range(rng.randint(2, 4))
        ).capitalize()

    def phrase(low, high):
        return " ".join(word() for _ in range(rng.randint(low, high)))

    columns = [Column("id", "entity", ColumnType.NUMBER, is_primary_key=True)]
    columns.append(Column("name", "entity", ColumnType.TEXT))
    columns.append(Column("title", "entity", ColumnType.TEXT))
    columns.append(Column("address", "entity", ColumnType.TEXT))
    schema = Schema(f"scaled_{n_rows}", [Table("entity", tuple(columns))], [])
    database = Database.create(schema)
    database.insert_rows("entity", [
        (i, phrase(1, 2), phrase(2, 4), phrase(3, 5) + f" {rng.randint(1, 999)}")
        for i in range(n_rows)
    ])
    return database


def bench_persistence(sizes):
    """Cold registry start vs warm registry start per database size.

    Cold pays fingerprint + column scans + q-gram derivation + bundle
    save; warm pays fingerprint + bundle load.  Both go through
    ``IndexRegistry.get`` — the exact code path ``repro serve`` runs on
    (re)start.  The raw in-memory build is reported alongside for scale.
    """
    rows = []
    cold_total = warm_total = 0.0
    for n_rows in sizes:
        database = _scaled_database(n_rows, seed=n_rows)

        start = time.perf_counter()
        index = InvertedIndex.build(database)
        searcher = SimilaritySearcher(index)
        build_s = time.perf_counter() - start
        pool_size = len(searcher._pool)

        with tempfile.TemporaryDirectory(prefix="repro-index-cache-") as cache_dir:
            start = time.perf_counter()
            entry = IndexRegistry(cache_dir=cache_dir).get(database)
            cold_s = time.perf_counter() - start
            assert entry.source == "built"

            warm_s = float("inf")
            for _ in range(3):  # best-of-3: the load is disk-I/O noisy
                start = time.perf_counter()
                entry = IndexRegistry(cache_dir=cache_dir).get(database)
                warm_s = min(warm_s, time.perf_counter() - start)
                assert entry.source == "disk", "warm start fell back to a build"

        cold_total += cold_s
        warm_total += warm_s
        rows.append((
            n_rows, pool_size, f"{build_s * 1e3:.1f} ms",
            f"{cold_s * 1e3:.1f} ms", f"{warm_s * 1e3:.1f} ms",
            f"{cold_s / max(warm_s, 1e-9):.1f}x",
        ))
    speedup = cold_total / max(warm_total, 1e-9)
    rows.append(("TOTAL", "", "", f"{cold_total * 1e3:.1f} ms",
                 f"{warm_total * 1e3:.1f} ms", f"{speedup:.1f}x"))
    print_table(
        "Cold vs warm registry start (scaled databases)",
        rows,
        ("rows", "pool", "raw build", "cold start", "warm start", "speedup"),
    )
    print(f"\n  warm-load speedup: {speedup:.1f}x (acceptance: >= 10x)")
    return speedup


def _corpus(smoke: bool):
    if smoke:
        return generate_corpus(CorpusConfig(train_per_domain=4, dev_per_domain=2))
    return generate_corpus(CorpusConfig(train_per_domain=30, dev_per_domain=10))


# Pools cap at max_values_per_column x 3 text columns; the largest size
# shows cold cost still growing with table scans while warm stays flat.
_SCALED_SIZES = (2_000, 10_000, 30_000)
_SCALED_SIZES_SMOKE = (15_000,)


def bench_value_search_smoke():
    """Pytest entry point (slow marker): assert both acceptance bars."""
    corpus = _corpus(smoke=True)
    assert bench_blocking_strategies(corpus, queries_per_db=10) >= 5.0
    assert bench_persistence(_SCALED_SIZES_SMOKE) >= 10.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus (CI-sized run)")
    parser.add_argument("--queries-per-db", type=int, default=20)
    args = parser.parse_args(argv)

    corpus = _corpus(args.smoke)
    reduction = bench_blocking_strategies(
        corpus, queries_per_db=args.queries_per_db
    )
    speedup = bench_persistence(
        _SCALED_SIZES_SMOKE if args.smoke else _SCALED_SIZES
    )
    ok = reduction >= 5.0 and speedup >= 10.0
    print(f"\n{'PASS' if ok else 'FAIL'}: DP-call reduction "
          f"{reduction:.1f}x (>=5x), warm-load speedup {speedup:.1f}x (>=10x)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent))
    sys.exit(main())
