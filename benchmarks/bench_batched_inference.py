"""Batched-inference benchmark: fused encoder + no-grad fast path.

Measures the two speedups the serving micro-batcher relies on:

* ``encode_batch`` (one padded transformer forward + grouped BiLSTM span
  summarization) versus per-example ``encode`` calls — the acceptance
  bar is >= 2x throughput at batch 8;
* ``inference_mode`` versus grad-mode forwards — skipping backward
  closure construction and graph bookkeeping on the same computation.

Unlike the paper-figure benchmarks, this file does not use the trained
session fixtures: an untrained model exercises exactly the same numeric
path, so the module builds its own small corpus and model and stays
runnable standalone::

    PYTHONPATH=src python benchmarks/bench_batched_inference.py
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _util import print_table
from repro.config import ModelConfig
from repro.model import ValueNetModel, build_vocabulary
from repro.nn import Tensor, inference_mode
from repro.pipeline import ValueNetPipeline
from repro.preprocessing import Preprocessor
from repro.spider import CorpusConfig, generate_corpus

BENCH_MODEL = ModelConfig(
    dim=64, num_layers=2, num_heads=4, ff_dim=128, summary_hidden=32,
    decoder_hidden=64, pointer_hidden=48, dropout=0.0, word_dropout=0.0,
)
BATCH_SIZES = (2, 4, 8)
pytestmark = pytest.mark.slow


def _build():
    corpus = generate_corpus(CorpusConfig(train_per_domain=8, dev_per_domain=2))
    vocab = build_vocabulary(
        [e.question for e in corpus.train],
        [corpus.schema(d) for d in corpus.train_domains],
        [str(v) for e in corpus.train for v in e.values],
        vocab_size=600,
    )
    model = ValueNetModel(vocab, BENCH_MODEL)
    model.eval()
    domain = corpus.train_domains[0]
    db = corpus.database(domain)
    questions = [e.question for e in corpus.train if e.db_id == domain][:max(BATCH_SIZES)]
    preprocessor = Preprocessor(db)
    pres = [preprocessor.run(q) for q in questions]
    return corpus, model, db, questions, pres


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def setup():
    corpus, model, db, questions, pres = _build()
    yield model, db, questions, pres
    corpus.close()


def test_bench_batched_encode_speedup(setup):
    model, db, questions, pres = setup
    rows = []
    speedups = {}
    for size in BATCH_SIZES:
        batch = pres[:size]

        def sequential():
            with inference_mode():
                for pre in batch:
                    model.encode(pre, db.schema)

        def batched():
            model.encode_batch(batch, db.schema)

        sequential()  # warm caches (schema features, position encodings)
        batched()
        seq = _best_of(3, sequential)
        bat = _best_of(3, batched)
        speedups[size] = seq / bat
        rows.append((
            f"batch {size}",
            f"{1000.0 * seq:.1f} ms",
            f"{1000.0 * bat:.1f} ms",
            f"{speedups[size]:.2f}x",
        ))
    print_table(
        "Batched encode vs sequential (same inputs, inference_mode)",
        rows,
        ("batch", "sequential", "batched", "speedup"),
    )
    assert speedups[8] >= 2.0, (
        f"batch-8 fused encode must be >= 2x sequential, got {speedups[8]:.2f}x"
    )
    assert speedups[4] > 1.0


def test_bench_pipeline_translate_batch(setup):
    model, db, questions, pres = setup
    pipeline = ValueNetPipeline(model, db)

    def sequential():
        for question in questions:
            pipeline.translate(question)

    def batched():
        pipeline.translate_batch(questions)

    sequential()
    batched()
    seq = _best_of(3, sequential)
    bat = _best_of(3, batched)
    print_table(
        f"End-to-end pipeline, {len(questions)} questions",
        [(
            f"{1000.0 * seq:.1f} ms",
            f"{1000.0 * bat:.1f} ms",
            f"{seq / bat:.2f}x",
        )],
        ("sequential translate", "translate_batch", "speedup"),
    )
    # Decoding stays sequential, so the end-to-end win is smaller than
    # the encoder-only win — but the batched path must never be slower.
    assert bat <= seq * 1.05


def test_bench_inference_mode_overhead(setup):
    model, db, questions, pres = setup
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(64, BENCH_MODEL.dim)), requires_grad=True)

    def forward():
        return model.encoder.transformer(x).sum()

    def grad_mode():
        forward()

    def no_grad():
        with inference_mode():
            forward()

    grad_mode()
    no_grad()
    grad = _best_of(5, grad_mode)
    fast = _best_of(5, no_grad)
    print_table(
        "Transformer forward (64 x dim), grad vs inference_mode",
        [(f"{1000.0 * grad:.2f} ms", f"{1000.0 * fast:.2f} ms",
          f"{grad / fast:.2f}x")],
        ("with graph", "inference_mode", "speedup"),
    )
    with inference_mode():
        out = forward()
    assert out._parents == ()
    # Skipping closure construction must not cost anything.
    assert fast <= grad * 1.05


if __name__ == "__main__":
    corpus, model, db, questions, pres = _build()
    setup_value = (model, db, questions, pres)
    test_bench_batched_encode_speedup(setup_value)
    test_bench_pipeline_translate_batch(setup_value)
    test_bench_inference_mode_overhead(setup_value)
    corpus.close()
