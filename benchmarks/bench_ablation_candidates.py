"""Ablation — value-candidate validation (paper Section IV-B3).

The paper argues that "the number of candidates has a direct impact on
the accuracy of the model — too many of them makes it harder for the
model to choose the correct one", which is why candidates are validated
against the database.  This ablation disables the exact-match validation
(every generated candidate survives, up to a high cap) and re-measures
ValueNet's dev accuracy and the candidate-list sizes.
"""

from __future__ import annotations

import pytest

from _util import print_table
from repro.candidates import ValidationConfig
from repro.evaluation import evaluate_pipeline
from repro.ner import ValueExtractor
from repro.pipeline import ValueNetPipeline
from repro.preprocessing import Preprocessor


class _NoValidationConfig(ValidationConfig):
    pass


@pytest.fixture()
def unvalidated_preprocessors(bench):
    """Preprocessors whose validator keeps every candidate."""
    from repro.candidates.validation import CandidateValidator

    class KeepAllValidator(CandidateValidator):
        def validate(self, candidates, *, quoted_values=frozenset()):
            located = []
            for candidate in candidates:
                locations = tuple(sorted(
                    self._index.lookup(candidate.value),
                    key=lambda loc: (loc.table, loc.column),
                ))
                located.append(candidate.with_locations(locations))
            return located[:48]

    wrapped = {}
    for db_id, preprocessor in bench.preprocessors.items():
        clone = Preprocessor(
            preprocessor.database,
            extractor=bench.extractor,
            index=preprocessor.index,
        )
        clone._validator = KeepAllValidator(preprocessor.index)
        wrapped[db_id] = clone
    return wrapped


def test_ablation_candidate_validation(bench, valuenet_report,
                                       unvalidated_preprocessors, benchmark):
    corpus = bench.corpus
    pipelines = {
        db_id: ValueNetPipeline(
            bench.valuenet_model, corpus.database(db_id),
            preprocessor=unvalidated_preprocessors[db_id],
        )
        for db_id in corpus.dev_domains
    }
    unvalidated = evaluate_pipeline(pipelines, corpus.dev, corpus, light=False)

    def candidate_stats(report):
        sizes = [len(s.result.candidates) for s in report.samples]
        return sum(sizes) / max(len(sizes), 1)

    print_table(
        "Ablation: candidate validation (ValueNet, dev split)",
        [
            ("validated (paper's design)", f"{valuenet_report.accuracy:.1%}",
             f"{candidate_stats(valuenet_report):.1f}"),
            ("validation disabled", f"{unvalidated.accuracy:.1%}",
             f"{candidate_stats(unvalidated):.1f}"),
        ],
        ("condition", "execution accuracy", "avg candidates/question"),
    )

    example = next(e for e in corpus.dev if e.values)
    benchmark(unvalidated_preprocessors[example.db_id].run, example.question)

    # Shape: disabling validation inflates the candidate lists and must
    # not *improve* accuracy (paper: more candidates make selection harder).
    assert candidate_stats(unvalidated) > candidate_stats(valuenet_report)
    assert unvalidated.accuracy <= valuenet_report.accuracy + 0.03
