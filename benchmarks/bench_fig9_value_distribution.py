"""Fig. 9 — value distribution in the train split.

Paper: of 7,000 train questions, 3,469 contain no values, 2,494 one value,
945 two, 62 three and 30 four; 3,531 samples contain 4,690 values total.
We regenerate the same histogram over the synthetic train split and check
the *shape*: no-value and one-value dominate, with a thin >=3 tail.
"""

from __future__ import annotations

from _util import print_table
from repro.spider import (
    PAPER_SAMPLES_WITH_VALUES,
    PAPER_TOTAL_VALUES,
    PAPER_VALUE_DISTRIBUTION,
    value_distribution,
)

PAPER_TOTAL = sum(PAPER_VALUE_DISTRIBUTION.values())


def test_fig9_value_distribution(bench, benchmark):
    distribution = benchmark(value_distribution, bench.corpus.train)

    rows = []
    for count in range(0, 5):
        paper = PAPER_VALUE_DISTRIBUTION.get(count, 0)
        measured = distribution.counts.get(count, 0)
        rows.append((
            f"{count} values",
            f"{paper} ({paper / PAPER_TOTAL:.1%})",
            f"{measured} ({measured / distribution.total_samples:.1%})",
        ))
    rows.append((
        "samples w/ values",
        f"{PAPER_SAMPLES_WITH_VALUES} ({PAPER_SAMPLES_WITH_VALUES / PAPER_TOTAL:.1%})",
        f"{distribution.samples_with_values} "
        f"({distribution.samples_with_values / distribution.total_samples:.1%})",
    ))
    rows.append(("total values", str(PAPER_TOTAL_VALUES), str(distribution.total_values)))
    print_table(
        "Fig. 9: value distribution in the train split",
        rows,
        ("bucket", "paper (Spider)", "measured (synthetic)"),
    )

    # Shape assertions: same ordering and a thin tail.
    assert distribution.fraction(0) > 0.25
    assert distribution.fraction(1) > 0.25
    assert distribution.fraction(0) + distribution.fraction(1) > 0.65
    assert distribution.fraction(2) < 0.30
    assert distribution.fraction(3) < 0.05
    assert distribution.samples_with_values > 0.3 * distribution.total_samples
