"""Shared benchmark fixtures: corpus, trained models, evaluation reports.

Training a model is the expensive step, so it happens once per *profile*
and is cached on disk under ``benchmarks/_artifacts/<profile>/``; later
benchmark runs load the checkpoints.  The corpus itself is regenerated
deterministically (stable seeds) and never cached.

Profiles (select with ``REPRO_BENCH_PROFILE``):

* ``quick`` (default) — scaled down so a cold run of the full benchmark
  suite finishes in roughly ten minutes on a laptop CPU.
* ``full`` — the configuration used for the numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from _util import print_table  # noqa: F401  (re-export for bench files)

from repro.config import ModelConfig, TrainingConfig
from repro.evaluation import AccuracyReport, evaluate_pipeline
from repro.model import (
    Trainer,
    ValueNetModel,
    build_preprocessors,
    build_vocabulary,
    prepare_samples,
)
from repro.ner import GazetteerRecognizer, PerceptronTagger, ValueExtractor
from repro.pipeline import ValueNetLightPipeline, ValueNetPipeline
from repro.spider import CorpusConfig, SpiderCorpus, generate_corpus

ARTIFACTS = Path(__file__).parent / "_artifacts"


@dataclass(frozen=True)
class BenchProfile:
    name: str
    train_per_domain: int
    dev_per_domain: int
    epochs: int
    model: ModelConfig


PROFILES = {
    "quick": BenchProfile(
        name="quick",
        train_per_domain=100,
        dev_per_domain=50,
        epochs=6,
        model=ModelConfig(dim=48, ff_dim=96, summary_hidden=32,
                          decoder_hidden=96, pointer_hidden=48),
    ),
    "full": BenchProfile(
        name="full",
        train_per_domain=150,
        dev_per_domain=80,
        epochs=12,
        model=ModelConfig(dim=48, ff_dim=96, summary_hidden=32,
                          decoder_hidden=96, pointer_hidden=48),
    ),
}


def active_profile() -> BenchProfile:
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name not in PROFILES:
        raise ValueError(f"unknown REPRO_BENCH_PROFILE {name!r}")
    return PROFILES[name]


def _value_spans(example):
    spans = []
    for value in example.values:
        text = str(value)
        index = example.question.lower().find(text.lower())
        if index >= 0:
            spans.append((index, index + len(text)))
    return spans


def build_extractor(corpus: SpiderCorpus) -> ValueExtractor:
    """Heuristics + gazetteer + a perceptron tagger trained on the train
    split (the paper's 'custom NER model')."""
    tagger = PerceptronTagger()
    tagger.train(
        [(e.question, _value_spans(e)) for e in corpus.train if e.values],
        epochs=3,
    )
    return ValueExtractor(tagger=tagger, gazetteer=GazetteerRecognizer())


@dataclass
class BenchSetup:
    """Everything the benchmark files share."""

    profile: BenchProfile
    corpus: SpiderCorpus
    extractor: ValueExtractor
    preprocessors: dict
    light_model: ValueNetModel
    valuenet_model: ValueNetModel
    valuenet_dropped: int

    def light_pipelines(self) -> dict:
        return {
            db_id: ValueNetLightPipeline(
                self.light_model, self.corpus.database(db_id),
                preprocessor=self.preprocessors[db_id],
            )
            for db_id in self.corpus.dev_domains
        }

    def valuenet_pipelines(self) -> dict:
        return {
            db_id: ValueNetPipeline(
                self.valuenet_model, self.corpus.database(db_id),
                preprocessor=self.preprocessors[db_id],
            )
            for db_id in self.corpus.dev_domains
        }


def _train_model(
    mode: str,
    corpus: SpiderCorpus,
    preprocessors: dict,
    profile: BenchProfile,
) -> tuple[ValueNetModel, int]:
    vocab = build_vocabulary(
        [e.question for e in corpus.train],
        [corpus.schema(d) for d in corpus.domains],
        [str(v) for e in corpus.train for v in e.values],
        vocab_size=profile.model.vocab_size,
    )
    model = ValueNetModel(vocab, profile.model)
    samples, dropped = prepare_samples(corpus.train, preprocessors, model, mode=mode)
    trainer = Trainer(model, TrainingConfig(epochs=profile.epochs, batch_size=16))
    trainer.train(samples)
    return model, dropped


@pytest.fixture(scope="session")
def bench(request) -> BenchSetup:
    profile = active_profile()
    corpus = generate_corpus(CorpusConfig(
        train_per_domain=profile.train_per_domain,
        dev_per_domain=profile.dev_per_domain,
    ))
    extractor = build_extractor(corpus)
    preprocessors = build_preprocessors(corpus, extractor)

    cache = ARTIFACTS / profile.name
    manifest_path = cache / "manifest.json"
    manifest = {
        "train_per_domain": profile.train_per_domain,
        "epochs": profile.epochs,
        "dim": profile.model.dim,
    }

    if manifest_path.exists() and json.loads(manifest_path.read_text()) == manifest:
        light_model = ValueNetModel.load(cache / "light")
        valuenet_model = ValueNetModel.load(cache / "valuenet")
        dropped = json.loads((cache / "stats.json").read_text())["valuenet_dropped"]
    else:
        light_model, _ = _train_model("light", corpus, preprocessors, profile)
        valuenet_model, dropped = _train_model(
            "valuenet", corpus, preprocessors, profile
        )
        cache.mkdir(parents=True, exist_ok=True)
        light_model.save(cache / "light")
        valuenet_model.save(cache / "valuenet")
        (cache / "stats.json").write_text(json.dumps({"valuenet_dropped": dropped}))
        manifest_path.write_text(json.dumps(manifest))

    setup = BenchSetup(
        profile=profile,
        corpus=corpus,
        extractor=extractor,
        preprocessors=preprocessors,
        light_model=light_model,
        valuenet_model=valuenet_model,
        valuenet_dropped=dropped,
    )
    request.session.__dict__.setdefault("_bench_setup", setup)
    return setup


@pytest.fixture(scope="session")
def light_report(bench) -> AccuracyReport:
    return evaluate_pipeline(
        bench.light_pipelines(), bench.corpus.dev, bench.corpus, light=True
    )


@pytest.fixture(scope="session")
def valuenet_report(bench) -> AccuracyReport:
    return evaluate_pipeline(
        bench.valuenet_pipelines(), bench.corpus.dev, bench.corpus, light=False
    )

