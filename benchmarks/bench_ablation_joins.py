"""Ablation — JOIN inference over the schema graph (paper Section III-C2).

The paper extends the classic table-graph approach with (a) bridge-table
completion via shortest-path / Steiner-tree search and (b) PK/FK columns
on every edge so complete ``ON`` clauses are emitted.  This bench compares
three post-processing variants on the dev split's gold SemQL trees:

* full (paper's design): Steiner completion + ON clauses,
* no bridge completion: only directly-connected tables can join,
* no ON clauses: joins become cross joins (what Exact Matching Accuracy
  would tolerate but Execution Accuracy punishes).
"""

from __future__ import annotations

from _util import print_table
from repro.db.executor import execute_and_compare, gold_orders_rows
from repro.errors import ReproError
from repro.postprocessing import SqlBuilder


def _evaluate(builder_for, corpus) -> tuple[int, int, int]:
    correct = failed = total = 0
    for example in corpus.dev:
        total += 1
        database = corpus.database(example.db_id)
        try:
            sql = builder_for(example.db_id).build(example.gold_semql)
        except ReproError:
            failed += 1
            continue
        outcome = execute_and_compare(
            database, sql, example.gold_sql,
            order_matters=gold_orders_rows(example.gold_sql),
        )
        if outcome.correct:
            correct += 1
        elif outcome.predicted_error is not None:
            failed += 1
    return correct, failed, total


def test_ablation_join_inference(bench, benchmark):
    corpus = bench.corpus
    schemas = {db_id: corpus.schema(db_id) for db_id in corpus.dev_domains}

    # Full design.
    full_builders = {db_id: SqlBuilder(schema) for db_id, schema in schemas.items()}

    # No bridge completion: plan joins only over the requested tables,
    # attaching via direct edges (bridge tables are never added).
    import repro.schema.joins as joins_module

    original_steiner = joins_module.steiner_join_tables

    def no_bridge_steiner(graph, tables):
        return {graph.original_name(t.lower()) for t in tables}

    # No ON clauses: join conditions dropped from the rendered SQL.
    from repro.sql.render import SqlRenderer

    class CrossJoinRenderer(SqlRenderer):
        def _render_from_clause(self, plan, aliases):
            first = plan.tables[0]
            if len(plan.tables) == 1:
                return f"FROM {first}"
            rendered = [f"FROM {first} AS {aliases[first.lower()]}"]
            for table in plan.tables[1:]:
                rendered.append(f"JOIN {table} AS {aliases[table.lower()]}")
            return " ".join(rendered)

    cross_builders = {}
    for db_id, schema in schemas.items():
        builder = SqlBuilder(schema)
        builder._renderer = CrossJoinRenderer(builder.graph)
        cross_builders[db_id] = builder

    full = _evaluate(lambda d: full_builders[d], corpus)
    joins_module.steiner_join_tables = no_bridge_steiner
    try:
        no_bridge = _evaluate(lambda d: full_builders[d], corpus)
    finally:
        joins_module.steiner_join_tables = original_steiner
    cross = _evaluate(lambda d: cross_builders[d], corpus)

    def fmt(result):
        correct, failed, total = result
        return f"{correct / total:.1%} correct, {failed} failed"

    print_table(
        "Ablation: JOIN inference on gold SemQL trees (dev split)",
        [
            ("Steiner completion + ON clauses (paper)", fmt(full)),
            ("no bridge-table completion", fmt(no_bridge)),
            ("no ON clauses (cross joins)", fmt(cross)),
        ],
        ("post-processing variant", "execution vs gold"),
    )

    example = corpus.dev[0]
    benchmark(full_builders[example.db_id].build, example.gold_semql)

    full_acc = full[0] / full[2]
    assert full_acc > 0.95, "gold trees must round-trip almost perfectly"
    assert no_bridge[0] < full[0], "bridge completion must matter"
    assert cross[0] < full[0], "ON clauses must matter under Execution Accuracy"
