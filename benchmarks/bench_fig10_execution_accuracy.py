"""Fig. 10 — Execution Accuracy of ValueNet light and ValueNet.

Paper (Spider dev, BERT-Base encoder, average of five runs):
ValueNet light ~= 67%, ValueNet ~= 62%; the unpublished leaderboard
competitors are single reported points (GAZP+BERT 53.5%, BRIDGE+BERT
59.9%, AuxNet+BART 62%).

Our substrate is a from-scratch encoder on a synthetic corpus, so the
absolute numbers differ; the *shape* criteria checked here are the paper's
conclusions: (1) ValueNet light beats ValueNet by a small margin — "the
difference in performance ... is relatively small given a strong
generative approach for the candidate generation" — and (2) both neural
systems beat the non-neural heuristic baseline by a wide margin.
"""

from __future__ import annotations

from _util import print_table
from repro.baselines import (
    HeuristicBaseline,
    PAPER_VALUENET_ACCURACY,
    PAPER_VALUENET_LIGHT_ACCURACY,
    REPORTED_SYSTEMS,
)
from repro.evaluation import evaluate_pipeline


def test_fig10_execution_accuracy(bench, light_report, valuenet_report, benchmark):
    corpus = bench.corpus

    # Non-neural reference system, evaluated on the same dev split.
    heuristic_pipelines = {
        db_id: HeuristicBaseline(
            corpus.database(db_id), preprocessor=bench.preprocessors[db_id]
        )
        for db_id in corpus.dev_domains
    }
    heuristic_report = evaluate_pipeline(
        heuristic_pipelines, corpus.dev, corpus, light=False
    )

    rows = [
        ("ValueNet light", f"{PAPER_VALUENET_LIGHT_ACCURACY:.1%}",
         f"{light_report.accuracy:.1%} ({light_report.num_correct}/{light_report.total})"),
        ("ValueNet", f"{PAPER_VALUENET_ACCURACY:.1%}",
         f"{valuenet_report.accuracy:.1%} ({valuenet_report.num_correct}/{valuenet_report.total})"),
        ("heuristic baseline (ours)", "-",
         f"{heuristic_report.accuracy:.1%}"),
    ]
    for entry in REPORTED_SYSTEMS:
        rows.append((f"{entry.name} (reported, unpublished)",
                     f"{entry.accuracy:.1%}", "-"))
    print_table(
        "Fig. 10: Execution Accuracy on the unseen dev databases",
        rows,
        ("system", "paper", "measured"),
    )

    # Benchmark one end-to-end translation (the pipeline's hot path).
    pipelines = bench.valuenet_pipelines()
    example = corpus.dev[0]
    benchmark(pipelines[example.db_id].translate, example.question)

    # Shape criteria.
    assert light_report.accuracy >= valuenet_report.accuracy - 0.02, (
        "ValueNet light should not trail the end-to-end system"
    )
    gap = light_report.accuracy - valuenet_report.accuracy
    assert gap < 0.20, f"light-vs-full gap should be modest, got {gap:.1%}"
    assert valuenet_report.accuracy > heuristic_report.accuracy + 0.10, (
        "the neural system must clearly beat the rule-based baseline"
    )
