"""Cluster scaling benchmark: worker processes vs the in-process service.

The single-process service is GIL-bound: its worker threads overlap I/O
and the few GIL-releasing kernels, but the pure-Python encode / beam
decode / value-search stages serialize.  Cluster mode forks worker
*processes*, so those stages genuinely run in parallel.  This benchmark
drives an identical closed-loop workload through

* ``workers=0`` — one in-process :class:`TranslationService`, and
* ``workers=1/2/4`` — :class:`ClusterService` with that many processes,

and reports throughput for each.  The workload uses a small
randomly-initialized neural model (weights don't matter for throughput;
the encode + beam-decode compute is identical to a trained checkpoint)
so each request costs ~8 ms of pure-Python/numpy compute — enough that
the ~1 ms of IPC framing is noise and process scaling can show through.
Every question is unique and value-heavy (misspellings force the
similarity search) so the result cache never answers.

The acceptance bar is **>= 1.8x** for 2 workers over the in-process
baseline on a machine with >= 2 cores; on fewer cores the bench still
runs (the numbers document per-request IPC overhead) but the assertion
is skipped because process parallelism is physically unavailable.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import multiprocessing
import sqlite3
import tempfile
import threading
import time
from pathlib import Path

import pytest

from _util import print_table
from repro.cluster import ClusterConfig, ClusterService
from repro.config import ModelConfig
from repro.db import Database
from repro.model import ValueNetModel, build_vocabulary
from repro.serving import DatabaseRuntime, TranslationCache, TranslationService

pytestmark = pytest.mark.slow

NAMES = (
    "alexandria", "birmingham", "carthagena", "dusseldorf", "eindhoven",
    "fortaleza", "guadalajara", "heidelberg", "innsbruck", "jacksonville",
)
CLIENTS = 8
REQUESTS_PER_CLIENT = 15
WORKER_COUNTS = (1, 2, 4)
THREADS = 4
BEAM = 2  # widens per-request compute so IPC framing stays noise
# Small but real: the encode/decode shape (two transformer layers, beam
# decode, pointer networks) matches production, just narrower.
MODEL = ModelConfig(
    dim=48, num_layers=2, num_heads=2, ff_dim=96, summary_hidden=32,
    decoder_hidden=96, pointer_hidden=48, dropout=0.0, word_dropout=0.0,
)


def make_db(path: Path, table: str, rows: int = 400) -> None:
    connection = sqlite3.connect(path)
    connection.executescript(
        f"""
        CREATE TABLE {table} (
            {table}_id INTEGER PRIMARY KEY,
            name VARCHAR(60),
            label VARCHAR(60),
            score INTEGER
        );
        """
    )
    connection.executemany(
        f"INSERT INTO {table} VALUES (?, ?, ?, ?)",
        [
            (
                i,
                f"{NAMES[i % len(NAMES)]} {i}",
                f"{table} {NAMES[(i * 3) % len(NAMES)]}",
                i * 13 % 997,
            )
            for i in range(1, rows + 1)
        ],
    )
    connection.commit()
    connection.close()


def make_questions(count: int) -> list[str]:
    """Unique, value-heavy questions (misspellings force similarity search)."""
    questions = []
    for i in range(count):
        name = NAMES[i % len(NAMES)]
        # A fresh typo per question: drop one letter, vary the row number.
        typo = name[: 2 + i % 4] + name[3 + i % 4:]
        questions.append(f"How many rows have name {typo} {i}?")
    return questions


def build_corpus(root: Path) -> tuple[list[tuple[str, str]], str]:
    """Create the databases and a saved random-init model; returns
    ``(databases, model_path)``."""
    # These ids shard 2/2 on a 2-worker ring and 1/1/1/1 on a 4-worker
    # ring, so the uniform client workload also spreads uniformly.
    tables = ("city", "song", "team", "store")
    for table in tables:
        make_db(root / f"{table}.sqlite", table)
    databases = [(table, str(root / f"{table}.sqlite")) for table in tables]
    questions = make_questions(CLIENTS * REQUESTS_PER_CLIENT)
    schemas = []
    for _, path in databases:
        db = Database.open(path)
        schemas.append(db.schema)
        db.close()
    vocab = build_vocabulary(
        questions,
        schemas,
        [f"{name} {i}" for i, name in enumerate(NAMES)],
        vocab_size=600,
    )
    model_path = root / "model"
    ValueNetModel(vocab, MODEL).save(model_path)
    return databases, str(model_path)


def drive(translate, db_ids: list[str], questions: list[str]) -> float:
    """Closed-loop clients; returns requests/second."""
    errors: list[str] = []

    def client(index: int) -> None:
        for i in range(REQUESTS_PER_CLIENT):
            n = index * REQUESTS_PER_CLIENT + i
            try:
                translate(
                    questions[n % len(questions)],
                    db_ids[n % len(db_ids)],
                    timeout_ms=120_000,
                )
            except Exception as exc:  # pragma: no cover - report, don't hang
                errors.append(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[:5]
    return CLIENTS * REQUESTS_PER_CLIENT / elapsed


@pytest.fixture(scope="module")
def corpus():
    with tempfile.TemporaryDirectory() as tmp:
        yield build_corpus(Path(tmp))


def run_inprocess(
    databases: list[tuple[str, str]], model_path: str, questions: list[str]
) -> float:
    opened = {db_id: Database.open(path) for db_id, path in databases}
    # One model instance per runtime: predict mutates decoder caches, and
    # runtime locks only serialize within a runtime, not across them.
    runtimes = [
        DatabaseRuntime(
            db, ValueNetModel.load(model_path),
            database_id=db_id, beam_size=BEAM,
        )
        for db_id, db in opened.items()
    ]
    service = TranslationService(
        runtimes,
        workers=THREADS,
        queue_size=256,
        cache=TranslationCache(capacity=2, ttl_s=0.001),  # effectively off
    ).start()
    try:
        return drive(service.translate, list(opened), questions)
    finally:
        service.stop()
        for db in opened.values():
            db.close()


def run_cluster(
    databases: list[tuple[str, str]],
    model_path: str,
    questions: list[str],
    workers: int,
) -> float:
    cluster = ClusterService(
        databases,
        model_path=model_path,
        config=ClusterConfig(workers=workers, default_timeout_ms=120_000.0),
        beam_size=BEAM,
        threads=THREADS,
        queue_size=256,
        cache_size=2,
        cache_ttl_s=0.001,
    ).start()
    try:
        assert cluster.wait_ready(timeout=120.0), cluster.worker_states()
        return drive(
            cluster.translate, [db_id for db_id, _ in databases], questions
        )
    finally:
        cluster.stop()


def test_bench_cluster_scaling(corpus):
    databases, model_path = corpus
    questions = make_questions(CLIENTS * REQUESTS_PER_CLIENT)
    baseline = run_inprocess(databases, model_path, questions)
    rows = [("in-process (workers=0)", f"{baseline:.1f} req/s", "1.00x")]
    speedups = {}
    for workers in WORKER_COUNTS:
        throughput = run_cluster(databases, model_path, questions, workers)
        speedups[workers] = throughput / baseline
        rows.append((
            f"cluster workers={workers}",
            f"{throughput:.1f} req/s",
            f"{speedups[workers]:.2f}x",
        ))
    print_table(
        f"Cluster scaling ({CLIENTS} closed-loop clients, "
        f"{CLIENTS * REQUESTS_PER_CLIENT} unique neural requests)",
        rows,
        ("configuration", "throughput", "speedup"),
    )
    if multiprocessing.cpu_count() >= 2:
        assert speedups[2] >= 1.8, (
            f"2 workers must beat the in-process service by >= 1.8x, "
            f"got {speedups[2]:.2f}x"
        )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        databases, model_path = build_corpus(Path(tmp))
        test_bench_cluster_scaling((databases, model_path))
