"""Developer calibration: train both variants, print dev Execution Accuracy.

A lighter-weight companion to run_experiments.py used while tuning
hyper-parameters: ``python scripts/calibrate.py [train_per_domain] [epochs]
[dim]``.  Saves checkpoints under _artifacts/ for post-hoc error analysis.
"""
import sys, time
from repro.spider import generate_corpus, CorpusConfig
from repro.model import ValueNetModel, Trainer, build_preprocessors, prepare_samples, build_vocabulary
from repro.config import ModelConfig, TrainingConfig
from repro.ner import ValueExtractor, GazetteerRecognizer, PerceptronTagger
from repro.pipeline import ValueNetPipeline, ValueNetLightPipeline
from repro.evaluation import evaluate_pipeline

train_n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 8
dim = int(sys.argv[3]) if len(sys.argv) > 3 else 48

t0 = time.time()
corpus = generate_corpus(CorpusConfig(train_per_domain=train_n, dev_per_domain=60))
print(f"corpus train={corpus.num_train} dev={corpus.num_dev}", flush=True)

questions = [e.question for e in corpus.train]
schemas = [corpus.schema(d) for d in corpus.train_domains]
vocab = build_vocabulary(questions, schemas, [str(v) for e in corpus.train for v in e.values], vocab_size=2000)

# custom NER tagger trained on train-split value spans
def spans_for(e):
    spans = []
    for v in e.values:
        text = str(v)
        idx = e.question.lower().find(text.lower())
        if idx >= 0:
            spans.append((idx, idx + len(text)))
    return spans
tagger = PerceptronTagger()
tagger.train([(e.question, spans_for(e)) for e in corpus.train if e.values], epochs=3)
extractor = ValueExtractor(tagger=tagger, gazetteer=GazetteerRecognizer())

mc = ModelConfig(dim=dim, num_layers=2, num_heads=4, ff_dim=2*dim, summary_hidden=32, decoder_hidden=96, pointer_hidden=48, dropout=0.1)
tc = TrainingConfig(epochs=epochs, batch_size=16)

pres = build_preprocessors(corpus, extractor)

for mode in ("light", "valuenet"):
    model = ValueNetModel(vocab, mc)
    samples, dropped = prepare_samples(corpus.train, pres, model, mode=mode)
    print(f"[{mode}] prepared={len(samples)} dropped={dropped}", flush=True)
    trainer = Trainer(model, tc)
    hist = trainer.train(samples)
    print(f"[{mode}] losses:", [f"{e.mean_loss:.2f}" for e in hist.epochs], flush=True)
    pipes = {}
    for db_id in corpus.dev_domains:
        db = corpus.database(db_id)
        pre = pres[db_id]
        if mode == "light":
            pipes[db_id] = ValueNetLightPipeline(model, db, preprocessor=pre)
        else:
            pipes[db_id] = ValueNetPipeline(model, db, preprocessor=pre)
    rep = evaluate_pipeline(pipes, corpus.dev, corpus, light=(mode=="light"))
    print(f"[{mode}] DEV exec acc = {rep.accuracy:.3f} ({rep.num_correct}/{rep.total})", flush=True)
    byh = rep.accuracy_by_hardness()
    print(f"[{mode}] by hardness:", {h.value: f"{a:.2f}({n})" for h,(a,n) in byh.items()}, flush=True)
    # train-split accuracy (seen domains) for reference
    pipes_t = {}
    for db_id in corpus.train_domains:
        db = corpus.database(db_id)
        if mode == "light":
            pipes_t[db_id] = ValueNetLightPipeline(model, db, preprocessor=pres[db_id])
        else:
            pipes_t[db_id] = ValueNetPipeline(model, db, preprocessor=pres[db_id])
    rep_t = evaluate_pipeline(pipes_t, corpus.train[:200], corpus, light=(mode=="light"))
    print(f"[{mode}] TRAIN exec acc = {rep_t.accuracy:.3f}", flush=True)
    model.save(f"/root/repo/_artifacts/calib_{mode}")
print(f"total {time.time()-t0:.0f}s")
