#!/usr/bin/env python
"""Closed-loop load generator for ``repro serve`` (single or cluster).

Spawns N client threads; each sends its share of requests back-to-back
(closed loop: a client waits for each response before sending the next),
then reports throughput, latency percentiles (p50/p95/p99), and an
error-type breakdown that matches the serving contract:

* ``timeout``    — the client-side socket timeout expired (the server
  may still be working; the answer is lost to this client).
* ``rejection``  — HTTP 503 with ``"retriable": true``: deliberate load
  shedding (queue full, warming up, draining, no live worker).  These
  are part of the contract, not drops.
* ``failure``    — anything else: non-503 5xx, connection resets, or a
  200 whose body carries an ``error``.

``--seed`` makes the question order (and the failure-injection pattern)
deterministic across runs, so two configurations see identical
workloads.  Against a cluster front-end (``repro serve --workers N``)
use ``--database-id`` per shard or repeat ``--database-id`` to spread
load across shards round-robin.

Example::

    PYTHONPATH=src python -m repro serve --database demo.sqlite --workers 2 &
    python scripts/load_test.py --clients 8 --requests 25 --seed 7

Exit code is non-zero when any request *failed* (timeouts and retriable
rejections are reported but do not fail the run unless
``--fail-on-rejection`` is given), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

DEFAULT_QUESTIONS = [
    "How many rows are there?",
    "List all names.",
    "How many entries are in the table?",
    "Show everything.",
]


@dataclass
class ClientStats:
    latencies_s: list[float] = field(default_factory=list)
    ok: int = 0
    degraded: int = 0
    cache_hits: int = 0
    timeouts: int = 0
    rejections: int = 0
    failures: int = 0
    attempted: int = 0
    engines: dict[str, int] = field(default_factory=dict)
    client_errors: list[str] = field(default_factory=list)


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_client(
    args: argparse.Namespace,
    client_index: int,
    count: int,
    stats: ClientStats,
) -> None:
    # Per-client RNG derived from the base seed: deterministic workload,
    # no cross-thread lock contention on one shared Random.
    rng = random.Random(f"{args.seed}:{client_index}")
    for i in range(count):
        stats.attempted += 1
        question = rng.choice(args.questions)
        body = {"question": question, "execute": args.execute}
        if args.database_ids:
            body["database_id"] = args.database_ids[
                (client_index + i) % len(args.database_ids)
            ]
        if args.timeout_ms is not None:
            body["timeout_ms"] = args.timeout_ms
        if args.failure_rate > 0 and rng.random() < args.failure_rate:
            body["inject_failure"] = True
        request = urllib.request.Request(
            args.url.rstrip("/") + "/translate",
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(request, timeout=args.client_timeout) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            stats.latencies_s.append(time.perf_counter() - start)
            if exc.code == 503:
                stats.rejections += 1
            else:
                stats.failures += 1
            continue
        except TimeoutError:
            stats.timeouts += 1
            continue
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, TimeoutError):
                stats.timeouts += 1
            else:
                stats.failures += 1
            continue
        except OSError:
            stats.failures += 1
            continue
        except Exception as exc:  # client bug: count it, don't lose requests
            stats.failures += 1
            stats.client_errors.append(f"{type(exc).__name__}: {exc}")
            continue
        stats.latencies_s.append(time.perf_counter() - start)
        if payload.get("sql") and not payload.get("error"):
            stats.ok += 1
        elif payload.get("error"):
            stats.failures += 1
        if payload.get("degraded"):
            stats.degraded += 1
        if payload.get("cache_hit"):
            stats.cache_hits += 1
        engine = payload.get("engine", "?")
        stats.engines[engine] = stats.engines.get(engine, 0) + 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8765")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=25, help="requests per client")
    parser.add_argument(
        "--database-id", action="append", dest="database_ids", default=None,
        help="database to target (repeatable; clients round-robin across "
             "them, which spreads load across cluster shards)")
    parser.add_argument(
        "--question", action="append", dest="questions", default=None,
        help="question to cycle through (repeatable)")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload RNG seed (question choice + injection pattern)")
    parser.add_argument("--timeout-ms", type=float, default=None)
    parser.add_argument("--client-timeout", type=float, default=60.0)
    parser.add_argument(
        "--failure-rate", type=float, default=0.0,
        help="fraction of requests sent with inject_failure "
             "(server must run with --allow-injection)")
    parser.add_argument("--execute", action="store_true")
    parser.add_argument(
        "--fail-on-rejection", action="store_true",
        help="also exit non-zero when any request was shed with a 503")
    args = parser.parse_args(argv)
    if not args.questions:
        args.questions = DEFAULT_QUESTIONS

    per_client = [ClientStats() for _ in range(args.clients)]
    threads = [
        threading.Thread(
            target=run_client, args=(args, i, args.requests, per_client[i])
        )
        for i in range(args.clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = sorted(x for s in per_client for x in s.latencies_s)
    total_sent = args.clients * args.requests
    completed = len(latencies)
    ok = sum(s.ok for s in per_client)
    degraded = sum(s.degraded for s in per_client)
    cache_hits = sum(s.cache_hits for s in per_client)
    timeouts = sum(s.timeouts for s in per_client)
    rejections = sum(s.rejections for s in per_client)
    failures = sum(s.failures for s in per_client)
    engines: dict[str, int] = {}
    for s in per_client:
        for engine, n in s.engines.items():
            engines[engine] = engines.get(engine, 0) + n

    print(f"clients={args.clients} requests/client={args.requests} "
          f"total={total_sent} seed={args.seed}")
    print(f"wall time        {elapsed:.2f} s")
    print(f"throughput       {completed / elapsed:.1f} req/s")
    print(f"completed        {completed}  (ok={ok} degraded={degraded} "
          f"cache_hits={cache_hits})")
    print(f"engines          {engines}")
    print(f"errors           timeout={timeouts} rejection={rejections} "
          f"failure={failures}")
    if latencies:
        print(f"latency p50      {1000 * percentile(latencies, 50):.1f} ms")
        print(f"latency p95      {1000 * percentile(latencies, 95):.1f} ms")
        print(f"latency p99      {1000 * percentile(latencies, 99):.1f} ms")
        print(f"latency max      {1000 * latencies[-1]:.1f} ms")
    attempted = sum(s.attempted for s in per_client)
    for s in per_client:
        for error in s.client_errors[:3]:
            print("  client error:", error)
    if attempted != total_sent:
        print(f"FAIL: {total_sent - attempted} requests never attempted "
              "(client thread crashed?)")
        return 1
    if failures:
        print(f"FAIL: {failures} requests failed")
        return 1
    if args.fail_on_rejection and rejections:
        print(f"FAIL: {rejections} requests rejected (--fail-on-rejection)")
        return 1
    print("OK: zero failed requests")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
