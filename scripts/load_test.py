#!/usr/bin/env python
"""Closed-loop load generator for ``repro serve`` (single or cluster).

Spawns N client threads; each sends its share of requests back-to-back
(closed loop: a client waits for each response before sending the next)
over ONE persistent keep-alive connection — the harness measures the
server, not TCP setup — then reports throughput, latency percentiles
(p50/p95/p99), the connection-reuse rate (requests per TCP connection;
reconnects after a server-side close count against it), and an
error-type breakdown that matches the serving contract:

* ``timeout``    — the client-side socket timeout expired (the server
  may still be working; the answer is lost to this client).
* ``rejection``  — HTTP 503 with ``"retriable": true``: deliberate load
  shedding (queue full, warming up, draining, no live worker).  These
  are part of the contract, not drops.
* ``failure``    — anything else: non-503 5xx, connection resets, or a
  200 whose body carries an ``error``.

``--seed`` makes the question order (and the failure-injection pattern)
deterministic across runs, so two configurations see identical
workloads.  Against a cluster front-end (``repro serve --workers N``)
use ``--database-id`` per shard or repeat ``--database-id`` to spread
load across shards round-robin.

Multi-tenant mode: repeat ``--tenant ID=KEY@RATE`` (requires the server
to run with ``--tenants``) to drive one *paced open-loop* client per
tenant at RATE requests/second for ``--duration`` seconds, then print a
per-tenant breakdown — achieved rate, ok/degraded counts, rejects split
by reason (401 auth, 429 rate-limited, 429 quota, 503 shed), and
latency percentiles.  Tenant rejects (401/429) never fail the run: they
are the enforcement being exercised; what fails it is real failures.

Examples::

    PYTHONPATH=src python -m repro serve --database demo.sqlite --workers 2 &
    python scripts/load_test.py --clients 8 --requests 25 --seed 7

    PYTHONPATH=src python -m repro serve --database demo.sqlite \
        --tenants tenants.json &
    python scripts/load_test.py --duration 10 \
        --tenant acme=acme-secret-key@50 \
        --tenant blip=blip-secret-key@5

Exit code is non-zero when any request *failed* (timeouts and retriable
rejections are reported but do not fail the run unless
``--fail-on-rejection`` is given), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import threading
import time
import urllib.parse
from dataclasses import dataclass, field

DEFAULT_QUESTIONS = [
    "How many rows are there?",
    "List all names.",
    "How many entries are in the table?",
    "Show everything.",
]


@dataclass
class ClientStats:
    latencies_s: list[float] = field(default_factory=list)
    ok: int = 0
    degraded: int = 0
    cache_hits: int = 0
    timeouts: int = 0
    rejections: int = 0
    auth_errors: int = 0      # HTTP 401 (missing/unknown API key)
    rate_limited: int = 0     # HTTP 429 reason=rate_limited
    quota_rejected: int = 0   # HTTP 429 reason=quota
    failures: int = 0
    attempted: int = 0
    connections: int = 0      # TCP connections this client opened
    engines: dict[str, int] = field(default_factory=dict)
    client_errors: list[str] = field(default_factory=list)


class KeepAliveClient:
    """One persistent HTTP/1.1 connection, reconnecting transparently.

    The harness should measure the server, not TCP/connection setup, so
    each load-test client keeps a single keep-alive connection and reuses
    it across requests.  A server-side close (drain, error path, idle
    reaping) triggers exactly one reconnect-and-retry; the opened-
    connection count feeds the reuse-rate report.
    """

    def __init__(self, url: str, timeout: float):
        parsed = urllib.parse.urlsplit(url)
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        self.connections = 0

    def post(self, path: str, data: bytes, headers: dict) -> tuple[int, bytes]:
        """POST once; returns ``(status, body)``.  Retries a single time
        when the server closed the keep-alive connection between
        requests (a legitimate race, not an error)."""
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
                self._conn.connect()
                self.connections += 1
            try:
                self._conn.request("POST", path, body=data, headers=headers)
                response = self._conn.getresponse()
                body = response.read()
            except (http.client.RemoteDisconnected, http.client.BadStatusLine,
                    BrokenPipeError, ConnectionResetError):
                self.close()
                if attempt:
                    raise
                continue
            except BaseException:
                # Timeout or transport failure mid-exchange: the stream
                # state is unknowable, so the connection cannot be reused.
                self.close()
                raise
            if response.will_close:
                self.close()
            return response.status, body
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


@dataclass(frozen=True)
class TenantSpec:
    """One ``--tenant ID=KEY@RATE`` client."""

    tenant_id: str
    api_key: str
    rate: float  # target requests/second

    @classmethod
    def parse(cls, text: str) -> "TenantSpec":
        try:
            tenant_id, rest = text.split("=", 1)
            api_key, rate = rest.rsplit("@", 1)
            spec = cls(tenant_id.strip(), api_key, float(rate))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected ID=KEY@RATE, got {text!r}"
            ) from None
        if not spec.tenant_id or not spec.api_key or spec.rate <= 0:
            raise argparse.ArgumentTypeError(
                f"expected non-empty ID, KEY and RATE > 0 in {text!r}"
            )
        return spec


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _count_status(status: int, body: bytes, stats: ClientStats) -> None:
    """Attribute one non-2xx answer to the matching reject counter."""
    if status == 503:
        stats.rejections += 1
    elif status == 401:
        stats.auth_errors += 1
    elif status == 429:
        try:
            reason = json.loads(body.decode("utf-8")).get("reason")
        except Exception:  # body is diagnostic only; the 429 still counts
            reason = None
        if reason == "quota":
            stats.quota_rejected += 1
        else:
            stats.rate_limited += 1
    else:
        stats.failures += 1


def send_one(
    args: argparse.Namespace,
    body: dict,
    stats: ClientStats,
    conn: KeepAliveClient,
    *,
    api_key: str | None = None,
) -> None:
    """POST one /translate request and record the outcome in ``stats``."""
    stats.attempted += 1
    headers = {"Content-Type": "application/json"}
    if api_key is not None:
        headers["Authorization"] = f"Bearer {api_key}"
    data = json.dumps(body).encode("utf-8")
    start = time.perf_counter()
    try:
        status, raw = conn.post("/translate", data, headers)
    except TimeoutError:
        stats.timeouts += 1
        return
    except OSError:
        stats.failures += 1
        return
    except Exception as exc:  # client bug: count it, don't lose requests
        stats.failures += 1
        stats.client_errors.append(f"{type(exc).__name__}: {exc}")
        return
    stats.latencies_s.append(time.perf_counter() - start)
    if status != 200:
        _count_status(status, raw, stats)
        return
    try:
        payload = json.loads(raw.decode("utf-8"))
    except ValueError:
        stats.failures += 1
        return
    if payload.get("sql") and not payload.get("error"):
        stats.ok += 1
    elif payload.get("error"):
        stats.failures += 1
    if payload.get("degraded"):
        stats.degraded += 1
    if payload.get("cache_hit"):
        stats.cache_hits += 1
    engine = payload.get("engine", "?")
    stats.engines[engine] = stats.engines.get(engine, 0) + 1


def _make_body(args: argparse.Namespace, rng: random.Random, index: int) -> dict:
    body = {"question": rng.choice(args.questions), "execute": args.execute}
    if args.database_ids:
        body["database_id"] = args.database_ids[index % len(args.database_ids)]
    if args.timeout_ms is not None:
        body["timeout_ms"] = args.timeout_ms
    if args.failure_rate > 0 and rng.random() < args.failure_rate:
        body["inject_failure"] = True
    return body


def run_client(
    args: argparse.Namespace,
    client_index: int,
    count: int,
    stats: ClientStats,
) -> None:
    # Per-client RNG derived from the base seed: deterministic workload,
    # no cross-thread lock contention on one shared Random.
    rng = random.Random(f"{args.seed}:{client_index}")
    conn = KeepAliveClient(args.url, args.client_timeout)
    try:
        for i in range(count):
            send_one(args, _make_body(args, rng, client_index + i), stats, conn)
    finally:
        stats.connections = conn.connections
        conn.close()


def run_tenant_client(
    args: argparse.Namespace,
    spec: TenantSpec,
    stats: ClientStats,
) -> None:
    """Open-loop client paced at ``spec.rate`` until ``--duration`` ends.

    Ticks are scheduled on absolute time so the achieved send rate stays
    at the target regardless of response latency (until one response
    takes longer than the whole remaining schedule, which the summary
    shows as a low achieved rate).
    """
    rng = random.Random(f"{args.seed}:{spec.tenant_id}")
    interval = 1.0 / spec.rate
    conn = KeepAliveClient(args.url, args.client_timeout)
    started = time.perf_counter()
    deadline = started + args.duration
    tick = 0
    try:
        while True:
            target = started + tick * interval
            now = time.perf_counter()
            if target >= deadline:
                return
            if target > now:
                time.sleep(target - now)
            send_one(
                args, _make_body(args, rng, tick), stats, conn,
                api_key=spec.api_key,
            )
            tick += 1
    finally:
        stats.connections = conn.connections
        conn.close()


# Stats of the most recent run_tenant_mode call, for callers embedding
# this script as a library (scripts/fairness_smoke.py asserts on them).
LAST_RUN_STATS: dict[str, ClientStats] | None = None


def run_tenant_mode(args: argparse.Namespace) -> int:
    """Drive one paced client per ``--tenant`` and print the breakdown."""
    global LAST_RUN_STATS
    stats = {spec.tenant_id: ClientStats() for spec in args.tenants}
    LAST_RUN_STATS = stats
    threads = [
        threading.Thread(
            target=run_tenant_client,
            args=(args, spec, stats[spec.tenant_id]),
            name=f"tenant-{spec.tenant_id}",
        )
        for spec in args.tenants
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    print(f"tenants={len(args.tenants)} duration={args.duration:.1f}s "
          f"seed={args.seed} (wall {elapsed:.2f}s)")
    header = (f"{'tenant':<12} {'target':>7} {'sent':>6} {'ok':>6} "
              f"{'degr':>5} {'429rate':>7} {'429quota':>8} {'401':>4} "
              f"{'503':>4} {'fail':>5} {'p50ms':>7} {'p99ms':>7} {'req/s':>7}")
    print(header)
    print("-" * len(header))
    failures = 0
    for spec in args.tenants:
        s = stats[spec.tenant_id]
        lat = sorted(s.latencies_s)
        achieved = s.ok / elapsed if elapsed > 0 else 0.0
        failures += s.failures
        print(f"{spec.tenant_id:<12} {spec.rate:>7.1f} {s.attempted:>6} "
              f"{s.ok:>6} {s.degraded:>5} {s.rate_limited:>7} "
              f"{s.quota_rejected:>8} {s.auth_errors:>4} {s.rejections:>4} "
              f"{s.failures:>5} {1000 * percentile(lat, 50):>7.1f} "
              f"{1000 * percentile(lat, 99):>7.1f} {achieved:>7.1f}")
        for error in s.client_errors[:3]:
            print("  client error:", error)
    timeouts = sum(s.timeouts for s in stats.values())
    rejections = sum(s.rejections for s in stats.values())
    attempted = sum(s.attempted for s in stats.values())
    connections = sum(s.connections for s in stats.values())
    reuse = 1.0 - connections / attempted if attempted else 0.0
    print(f"connections      {connections} for {attempted} requests "
          f"(reuse rate {reuse:.1%})")
    if timeouts:
        print(f"timeouts         {timeouts}")
    if failures:
        print(f"FAIL: {failures} requests failed")
        return 1
    if args.fail_on_rejection and rejections:
        print(f"FAIL: {rejections} requests rejected (--fail-on-rejection)")
        return 1
    print("OK: zero failed requests")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8765")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=25, help="requests per client")
    parser.add_argument(
        "--database-id", action="append", dest="database_ids", default=None,
        help="database to target (repeatable; clients round-robin across "
             "them, which spreads load across cluster shards)")
    parser.add_argument(
        "--question", action="append", dest="questions", default=None,
        help="question to cycle through (repeatable)")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload RNG seed (question choice + injection pattern)")
    parser.add_argument("--timeout-ms", type=float, default=None)
    parser.add_argument("--client-timeout", type=float, default=60.0)
    parser.add_argument(
        "--failure-rate", type=float, default=0.0,
        help="fraction of requests sent with inject_failure "
             "(server must run with --allow-injection)")
    parser.add_argument("--execute", action="store_true")
    parser.add_argument(
        "--fail-on-rejection", action="store_true",
        help="also exit non-zero when any request was shed with a 503")
    parser.add_argument(
        "--tenant", action="append", dest="tenants", default=None,
        type=TenantSpec.parse, metavar="ID=KEY@RATE",
        help="run in multi-tenant mode: one paced client per tenant at "
             "RATE req/s authenticated with KEY (repeatable)")
    parser.add_argument(
        "--duration", type=float, default=10.0,
        help="seconds each tenant client sends for (tenant mode only)")
    args = parser.parse_args(argv)
    if not args.questions:
        args.questions = DEFAULT_QUESTIONS

    if args.tenants:
        return run_tenant_mode(args)

    per_client = [ClientStats() for _ in range(args.clients)]
    threads = [
        threading.Thread(
            target=run_client, args=(args, i, args.requests, per_client[i])
        )
        for i in range(args.clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = sorted(x for s in per_client for x in s.latencies_s)
    total_sent = args.clients * args.requests
    completed = len(latencies)
    ok = sum(s.ok for s in per_client)
    degraded = sum(s.degraded for s in per_client)
    cache_hits = sum(s.cache_hits for s in per_client)
    timeouts = sum(s.timeouts for s in per_client)
    rejections = sum(s.rejections for s in per_client)
    failures = sum(s.failures for s in per_client)
    engines: dict[str, int] = {}
    for s in per_client:
        for engine, n in s.engines.items():
            engines[engine] = engines.get(engine, 0) + n

    print(f"clients={args.clients} requests/client={args.requests} "
          f"total={total_sent} seed={args.seed}")
    print(f"wall time        {elapsed:.2f} s")
    print(f"throughput       {completed / elapsed:.1f} req/s")
    print(f"completed        {completed}  (ok={ok} degraded={degraded} "
          f"cache_hits={cache_hits})")
    print(f"engines          {engines}")
    attempted = sum(s.attempted for s in per_client)
    connections = sum(s.connections for s in per_client)
    reuse = 1.0 - connections / attempted if attempted else 0.0
    print(f"connections      {connections} for {attempted} requests "
          f"(reuse rate {reuse:.1%})")
    print(f"errors           timeout={timeouts} rejection={rejections} "
          f"failure={failures}")
    auth_errors = sum(s.auth_errors for s in per_client)
    limited = sum(s.rate_limited + s.quota_rejected for s in per_client)
    if auth_errors or limited:
        print(f"tenancy          auth=401 x{auth_errors} "
              f"limited=429 x{limited} (use --tenant for per-tenant stats)")
    if latencies:
        print(f"latency p50      {1000 * percentile(latencies, 50):.1f} ms")
        print(f"latency p95      {1000 * percentile(latencies, 95):.1f} ms")
        print(f"latency p99      {1000 * percentile(latencies, 99):.1f} ms")
        print(f"latency max      {1000 * latencies[-1]:.1f} ms")
    for s in per_client:
        for error in s.client_errors[:3]:
            print("  client error:", error)
    if attempted != total_sent:
        print(f"FAIL: {total_sent - attempted} requests never attempted "
              "(client thread crashed?)")
        return 1
    if failures:
        print(f"FAIL: {failures} requests failed")
        return 1
    if args.fail_on_rejection and rejections:
        print(f"FAIL: {rejections} requests rejected (--fail-on-rejection)")
        return 1
    print("OK: zero failed requests")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
