#!/usr/bin/env python
"""Closed-loop load generator for ``repro serve``.

Spawns N client threads; each sends its share of requests back-to-back
(closed loop: a client waits for each response before sending the next),
then reports throughput, latency percentiles (p50/p95/p99), and the
serving-contract counters: cache hits, degraded fallbacks, and errors.

Example::

    PYTHONPATH=src python -m repro serve --database demo.sqlite &
    python scripts/load_test.py --clients 8 --requests 25

Exit code is non-zero when any request was dropped (connection error or
5xx other than deliberate 503 shedding), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

DEFAULT_QUESTIONS = [
    "How many rows are there?",
    "List all names.",
    "How many entries are in the table?",
    "Show everything.",
]


@dataclass
class ClientStats:
    latencies_s: list[float] = field(default_factory=list)
    ok: int = 0
    degraded: int = 0
    cache_hits: int = 0
    http_errors: int = 0
    dropped: int = 0
    engines: dict[str, int] = field(default_factory=dict)


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_client(
    args: argparse.Namespace,
    client_index: int,
    count: int,
    stats: ClientStats,
) -> None:
    for i in range(count):
        question = args.questions[(client_index + i) % len(args.questions)]
        body = {"question": question, "execute": args.execute}
        if args.database_id:
            body["database_id"] = args.database_id
        if args.timeout_ms is not None:
            body["timeout_ms"] = args.timeout_ms
        # Deterministic injection pattern so runs are reproducible.
        if args.failure_rate > 0 and (i % max(1, round(1 / args.failure_rate))) == 0:
            body["inject_failure"] = True
        request = urllib.request.Request(
            args.url.rstrip("/") + "/translate",
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(request, timeout=args.client_timeout) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            stats.latencies_s.append(time.perf_counter() - start)
            stats.http_errors += 1
            if exc.code >= 500 and exc.code != 503:
                stats.dropped += 1
            continue
        except (urllib.error.URLError, TimeoutError, OSError):
            stats.dropped += 1
            continue
        stats.latencies_s.append(time.perf_counter() - start)
        if payload.get("sql") and not payload.get("error"):
            stats.ok += 1
        if payload.get("degraded"):
            stats.degraded += 1
        if payload.get("cache_hit"):
            stats.cache_hits += 1
        engine = payload.get("engine", "?")
        stats.engines[engine] = stats.engines.get(engine, 0) + 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8765")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=25, help="requests per client")
    parser.add_argument("--database-id", default=None)
    parser.add_argument(
        "--question", action="append", dest="questions", default=None,
        help="question to cycle through (repeatable)")
    parser.add_argument("--timeout-ms", type=float, default=None)
    parser.add_argument("--client-timeout", type=float, default=60.0)
    parser.add_argument(
        "--failure-rate", type=float, default=0.0,
        help="fraction of requests sent with inject_failure "
             "(server must run with --allow-injection)")
    parser.add_argument("--execute", action="store_true")
    args = parser.parse_args(argv)
    if not args.questions:
        args.questions = DEFAULT_QUESTIONS

    per_client = [ClientStats() for _ in range(args.clients)]
    threads = [
        threading.Thread(
            target=run_client, args=(args, i, args.requests, per_client[i])
        )
        for i in range(args.clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = sorted(x for s in per_client for x in s.latencies_s)
    total_sent = args.clients * args.requests
    completed = len(latencies)
    ok = sum(s.ok for s in per_client)
    degraded = sum(s.degraded for s in per_client)
    cache_hits = sum(s.cache_hits for s in per_client)
    http_errors = sum(s.http_errors for s in per_client)
    dropped = sum(s.dropped for s in per_client)
    engines: dict[str, int] = {}
    for s in per_client:
        for engine, n in s.engines.items():
            engines[engine] = engines.get(engine, 0) + n

    print(f"clients={args.clients} requests/client={args.requests} "
          f"total={total_sent}")
    print(f"wall time        {elapsed:.2f} s")
    print(f"throughput       {completed / elapsed:.1f} req/s")
    print(f"completed        {completed}  (ok={ok} degraded={degraded} "
          f"cache_hits={cache_hits})")
    print(f"engines          {engines}")
    print(f"http errors      {http_errors}  dropped={dropped}")
    if latencies:
        print(f"latency p50      {1000 * percentile(latencies, 50):.1f} ms")
        print(f"latency p95      {1000 * percentile(latencies, 95):.1f} ms")
        print(f"latency p99      {1000 * percentile(latencies, 99):.1f} ms")
        print(f"latency max      {1000 * latencies[-1]:.1f} ms")
    if dropped:
        print(f"FAIL: {dropped} requests dropped")
        return 1
    print("OK: zero dropped requests")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
