#!/usr/bin/env python
"""Serve smoke test: start the service in-process, one /translate
round-trip against a throwaway database, clean shutdown.

Run with ``PYTHONPATH=src python scripts/serve_smoke.py``; exits 0 on
success.  CI runs this after the tier-1 suite to catch wiring breaks in
the HTTP layer that unit tests (which call the service directly) miss.
"""

from __future__ import annotations

import json
import sqlite3
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.db import Database
from repro.serving import DatabaseRuntime, ServingServer, TranslationService


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.sqlite"
        connection = sqlite3.connect(path)
        connection.executescript(
            """
            CREATE TABLE city (
                city_id INTEGER PRIMARY KEY,
                city_name VARCHAR(40),
                country VARCHAR(40),
                population INTEGER
            );
            INSERT INTO city VALUES (1, 'Paris', 'France', 21);
            INSERT INTO city VALUES (2, 'Rome', 'Italy', 28);
            """
        )
        connection.commit()
        connection.close()

        database = Database.open(path)
        service = TranslationService(
            [DatabaseRuntime(database, database_id="smoke")], workers=2
        ).start()
        server = ServingServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            health = json.loads(
                urllib.request.urlopen(server.url + "/healthz", timeout=10).read()
            )
            assert health["status"] == "ok", health

            request = urllib.request.Request(
                server.url + "/translate",
                data=json.dumps(
                    {"question": "How many cities are there?", "execute": True}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            payload = json.loads(urllib.request.urlopen(request, timeout=30).read())
            assert payload["sql"], payload
            assert payload["error"] is None, payload
            assert payload["rows"] == [[2]], payload

            metrics = urllib.request.urlopen(
                server.url + "/metrics", timeout=10
            ).read().decode("utf-8")
            assert "serving_responses_ok_total 1" in metrics, metrics
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
            database.close()
    print("serve smoke test OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
