#!/usr/bin/env python
"""Drift smoke test: live schema evolution under sustained load.

Starts the serving stack in-process with a background KB refresher, then
mutates the watched database — DDL (a new table) *and* content (rows
with a value that did not exist at index-build time) — while client
threads hammer /translate.  Passes only if:

* zero requests fail (no 5xx — the swap is zero-downtime);
* the index version visibly bumps in /healthz and the ``evolve_*``
  refresh counters appear in the /metrics exposition;
* ``POST /admin/refresh`` answers 200 with the refresh report;
* a post-drift value query resolves against the NEW content (the
  question names a value only the drifted rows contain);
* the corpus file grew with validated examples referencing the new
  table.

Run with ``PYTHONPATH=src python scripts/drift_smoke.py``; exits 0 on
success.
"""

from __future__ import annotations

import json
import sqlite3
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.db import Database
from repro.evolve import KBRefresher
from repro.index import IndexRegistry, set_default_registry
from repro.serving import (
    DatabaseRuntime,
    ServingServer,
    TranslationCache,
    TranslationService,
)

LOAD_THREADS = 4
LOAD_SECONDS = 4.0
REFRESH_INTERVAL_S = 0.25

QUESTIONS = (
    "How many students are there?",
    "List the name of all students.",
    "Which students are from France?",
    "What is the average age of students?",
    "pets heavier than 10",
)


def make_database(path: Path) -> None:
    connection = sqlite3.connect(path)
    connection.executescript(
        """
        CREATE TABLE student (
            stuid INTEGER PRIMARY KEY, name TEXT, age INTEGER,
            home_country TEXT);
        CREATE TABLE pet (
            petid INTEGER PRIMARY KEY, pet_type TEXT, weight REAL);
        INSERT INTO student VALUES
            (1,'Ann Miller',22,'France'),(2,'Bob Smith',19,'France'),
            (3,'Cid Rossi',25,'Italy'),(4,'Dana Levi',21,'Spain');
        INSERT INTO pet VALUES (10,'Dog',12.0),(11,'Cat',3.5);
        """
    )
    connection.commit()
    connection.close()


def post(url: str, route: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + route,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get(url: str, route: str) -> str:
    with urllib.request.urlopen(url + route, timeout=10) as response:
        return response.read().decode("utf-8")


class LoadGenerator:
    """Client threads that hammer /translate and tally status codes."""

    def __init__(self, url: str):
        self.url = url
        self.stop = threading.Event()
        self.counts: dict[int, int] = {}
        self.errors: list[str] = []
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._run, args=(i,), daemon=True)
            for i in range(LOAD_THREADS)
        ]

    def _run(self, seed: int) -> None:
        i = seed
        while not self.stop.is_set():
            question = QUESTIONS[i % len(QUESTIONS)]
            i += 1
            try:
                status, _body = post(self.url, "/translate", {
                    "question": question, "database_id": "pets",
                })
            except Exception as exc:  # noqa: BLE001 - any transport failure fails the smoke
                with self._lock:
                    self.errors.append(repr(exc))
                continue
            with self._lock:
                self.counts[status] = self.counts.get(status, 0) + 1
            time.sleep(0.005)

    def __enter__(self) -> "LoadGenerator":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop.set()
        for thread in self._threads:
            thread.join(timeout=10.0)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pets.sqlite"
        corpus_path = Path(tmp) / "corpus.jsonl"
        make_database(path)

        registry = IndexRegistry()
        set_default_registry(registry)
        database = Database.open(path)
        service = TranslationService(
            [DatabaseRuntime(database, database_id="pets")],
            workers=4,
            queue_size=256,
            cache=TranslationCache(capacity=128, ttl_s=300.0),
        ).start()
        refresher = KBRefresher(
            registry=registry,
            interval_s=REFRESH_INTERVAL_S,
            metrics=service.metrics,
            corpus_path=corpus_path,
        )
        refresher.watch(database, database_id="pets")
        refresher.attach_service(service)
        refresher.start()
        server = ServingServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            health = json.loads(get(server.url, "/healthz"))
            version_before = health["evolve"]["versions"]["pets"]

            with LoadGenerator(server.url) as load:
                time.sleep(0.5)
                # Drift arrives through a separate writer connection,
                # exactly like an external ETL job: DDL + new content.
                writer = sqlite3.connect(path)
                writer.executescript(
                    """
                    CREATE TABLE clinic (
                        clinicid INTEGER PRIMARY KEY, city TEXT,
                        capacity INTEGER);
                    INSERT INTO clinic VALUES (1,'Zurich',40),(2,'Basel',25);
                    INSERT INTO student VALUES (5,'Gil Tembo',24,'Zanzibar');
                    """
                )
                writer.commit()
                writer.close()

                # The background refresher must notice and swap on its own.
                deadline = time.monotonic() + 20.0
                version_after = version_before
                while time.monotonic() < deadline:
                    health = json.loads(get(server.url, "/healthz"))
                    version_after = health["evolve"]["versions"]["pets"]
                    if version_after > version_before:
                        break
                    time.sleep(0.1)
                assert version_after > version_before, (
                    f"index version never bumped (still {version_after})"
                )
                # Keep the load running across the post-swap window too.
                time.sleep(max(0.0, LOAD_SECONDS - 2.0))

            assert not load.errors, f"transport errors: {load.errors[:5]}"
            bad = {s: n for s, n in load.counts.items() if s >= 500}
            total = sum(load.counts.values())
            assert not bad, f"5xx during drift: {bad} (of {total})"
            assert total > 0, "load generator sent nothing"

            # The new value resolves: 'Zanzibar' entered the database
            # after the index was first built.
            status, body = post(server.url, "/translate", {
                "question": "Which students are from Zanzibar?",
                "database_id": "pets", "execute": True,
            })
            assert status == 200, (status, body)
            assert "Zanzibar" in body["sql"], body["sql"]
            assert body["rows"], body
            # And the new table is queryable end to end.
            status, body = post(server.url, "/translate", {
                "question": "How many rows are in clinic?",
                "database_id": "pets", "execute": True,
            })
            assert status == 200, (status, body)

            # The admin route forces a synchronous refresh and reports it.
            status, body = post(server.url, "/admin/refresh", {})
            assert status == 200, (status, body)
            assert body["status"] == "ok", body
            assert body["evolve"]["swaps"] >= 1, body

            metrics = get(server.url, "/metrics")
            for name in ("evolve_refresh_runs_total",
                         "evolve_index_swap_seconds",
                         "evolve_corpus_examples_total"):
                assert name in metrics, f"{name} missing from /metrics"
            runs = next(
                float(line.rsplit(" ", 1)[1])
                for line in metrics.splitlines()
                if line.startswith("evolve_refresh_runs_total")
            )
            assert runs >= 1, metrics

            # Corpus growth: validated examples referencing the new table.
            lines = [
                json.loads(line)
                for line in corpus_path.read_text().splitlines()
            ]
            clinic = [line for line in lines if line["table"] == "clinic"]
            assert clinic, f"no clinic examples in corpus ({len(lines)} lines)"
            assert all(line["validated"] for line in lines), lines

            print(
                f"drift smoke OK: {total} requests, 0 failures, "
                f"version {version_before}->{version_after}, "
                f"{len(lines)} corpus examples ({len(clinic)} for clinic)"
            )
        finally:
            server.shutdown()
            server.server_close()
            refresher.stop()
            service.stop()
            database.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
