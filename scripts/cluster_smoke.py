#!/usr/bin/env python
"""Cluster fault-injection smoke: SIGKILL a worker mid-load, lose nothing.

Builds two throwaway SQLite databases, starts a 2-worker
:class:`~repro.cluster.ClusterService` (heuristic-only), drives
closed-loop load from client threads, and — mid-load — SIGKILLs one
worker.  The run passes when:

* **zero accepted requests are dropped** — every ``translate`` call
  terminates with either a response or a *retriable* rejection
  (``QueueFullError``); nothing hangs, nothing vanishes;
* the supervisor **restarts** the killed worker (it returns to READY and
  the restart is visible in ``/metrics`` as
  ``cluster_worker_restarts_total``);
* requests keep succeeding after the kill (failover + recovery).

Run with ``PYTHONPATH=src python scripts/cluster_smoke.py``; exits 0 on
success.  CI runs this after the tier-1 suite.
"""

from __future__ import annotations

import sqlite3
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster import ClusterConfig, ClusterService, WorkerStatus
from repro.serving import QueueFullError

def make_question(index: int) -> str:
    """Unique, value-heavy questions: the misspelling forces the (slow)
    similarity search and uniqueness defeats the result cache, so requests
    take long enough that the kill genuinely lands mid-load."""
    return f"How many rows have name citty_{index} or pett_{index + 1}?"


def make_db(path: Path, table: str, rows: int) -> None:
    connection = sqlite3.connect(path)
    connection.executescript(
        f"""
        CREATE TABLE {table} (
            {table}_id INTEGER PRIMARY KEY,
            name VARCHAR(40),
            score INTEGER
        );
        """
    )
    connection.executemany(
        f"INSERT INTO {table} VALUES (?, ?, ?)",
        [(i, f"{table}_{i}", i * 7 % 100) for i in range(1, rows + 1)],
    )
    connection.commit()
    connection.close()


@dataclass
class LoadStats:
    answered: int = 0
    rejected: int = 0
    lost: int = 0
    errors: list[str] = field(default_factory=list)


def run_client(
    cluster: ClusterService,
    db_ids: list[str],
    index: int,
    count: int,
    stats: LoadStats,
) -> None:
    for i in range(count):
        question = make_question(index * count + i)
        db_id = db_ids[(index + i) % len(db_ids)]
        try:
            response = cluster.translate(
                question, db_id, execute=True, timeout_ms=30_000
            )
        except QueueFullError:
            stats.rejected += 1  # retriable shedding: allowed, not a drop
            continue
        except Exception as exc:  # anything else is a contract violation
            stats.lost += 1
            stats.errors.append(f"{type(exc).__name__}: {exc}")
            continue
        if response.sql is None and response.error is None:
            stats.lost += 1
            stats.errors.append("empty response")
        else:
            stats.answered += 1


def wait_for(predicate, timeout_s: float, label: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {label}")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        make_db(root / "left.sqlite", "city", 1500)
        make_db(root / "right.sqlite", "pet", 1500)
        databases = [
            ("left", str(root / "left.sqlite")),
            ("right", str(root / "right.sqlite")),
        ]
        cluster = ClusterService(
            databases,
            config=ClusterConfig(
                workers=2,
                heartbeat_interval_s=0.2,
                restart_backoff_initial_s=0.2,
            ),
            verbose=True,
            cache_size=2,
            cache_ttl_s=0.001,  # effectively no result cache: real load
        )
        cluster.start()
        try:
            wait_for(cluster.is_ready, 60.0, "cluster readiness")
            print("cluster ready:", {
                w: s["status"] for w, s in cluster.worker_states().items()
            })

            clients, per_client = 8, 150
            db_ids = [db_id for db_id, _ in databases]
            stats = [LoadStats() for _ in range(clients)]
            threads = [
                threading.Thread(
                    target=run_client,
                    args=(cluster, db_ids, i, per_client, stats[i]),
                )
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()

            # Let load build up, then murder one worker mid-flight.
            time.sleep(0.3)
            if not any(thread.is_alive() for thread in threads):
                print("FAIL: load already finished before the kill "
                      "(workload too small to exercise failover)")
                return 1
            victim = 0
            pid = cluster.kill_worker(victim)
            print(f"killed worker {victim} (pid={pid}) under load")

            for thread in threads:
                thread.join(timeout=120.0)
            if any(thread.is_alive() for thread in threads):
                print("FAIL: client threads hung (requests lost in cluster)")
                return 1

            answered = sum(s.answered for s in stats)
            rejected = sum(s.rejected for s in stats)
            lost = sum(s.lost for s in stats)
            total = clients * per_client
            print(f"requests: total={total} answered={answered} "
                  f"rejected(retriable)={rejected} lost={lost}")
            for s in stats:
                for error in s.errors[:3]:
                    print("  error:", error)
            if lost or answered + rejected != total:
                print("FAIL: accepted requests were dropped")
                return 1

            # The supervisor must bring the victim back with backoff.
            # (restart_count check first: the slot still *looks* READY for
            # a beat after the SIGKILL, until the receiver sees the EOF.)
            wait_for(
                lambda: (
                    cluster.handles[victim].restart_count >= 1
                    and cluster.handles[victim].status is WorkerStatus.READY
                ),
                30.0,
                "killed worker restart",
            )
            restarts = cluster.handles[victim].restart_count
            print(f"worker {victim} restarted (restart_count={restarts})")
            if restarts < 1:
                print("FAIL: no restart recorded")
                return 1

            exposition = cluster.metrics.render_text()
            if "cluster_worker_restarts_total" not in exposition:
                print("FAIL: restart counter missing from /metrics exposition")
                return 1

            # Post-recovery sanity: the restarted worker serves again.
            response = cluster.translate(
                "How many rows are there?", db_ids[0], execute=True,
                timeout_ms=30_000,
            )
            if response.sql is None:
                print("FAIL: post-recovery request failed:", response.error)
                return 1
        finally:
            clean = cluster.stop(timeout=15.0)
            print("drain clean:", clean)
    print("cluster smoke test OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
