#!/usr/bin/env python
"""Fairness smoke test: a hot tenant must not hurt background tenants.

Starts the full multi-tenant serving stack in-process (TenancyController
+ fair-queue TranslationService + HTTP server) against a throwaway
database, then drives it with the load_test tenant clients:

* one **hot** tenant sending at 10x its configured rate, and
* three **background** tenants sending politely (80% of their rate).

Asserts the two properties the tenancy subsystem exists for:

1. **Isolation** — every background request succeeds: no failures, no
   429s, no 503s.  The hot tenant's flood must delay only itself.
2. **Enforcement** — the hot tenant's *successful* throughput lands
   within +/-10% of its configured budget (``burst + rate * duration``);
   everything beyond that was rejected with 429, not served and not
   errored.

Run with ``PYTHONPATH=src python scripts/fairness_smoke.py``; exits 0 on
success.  CI runs this as the ``fairness-smoke`` job.
"""

from __future__ import annotations

import argparse
import json
import sqlite3
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import load_test  # noqa: E402  (sibling script, reused as a library)

from repro.db import Database  # noqa: E402
from repro.serving import DatabaseRuntime, ServingServer, TranslationService  # noqa: E402
from repro.tenancy import QuotaLedger, TenancyController, TenantRegistry  # noqa: E402

HOT_RATE = 20.0    # requests/second the hot tenant is *allowed*
HOT_BURST = 5.0
BG_RATE = 5.0      # per background tenant
BG_COUNT = 3

TENANTS_CONFIG = {
    "version": 1,
    "tenants": [
        {
            "id": "hot",
            "api_key": "hot-tenant-key-0001",
            "class": "gold",
            "rate": HOT_RATE,
            "burst": HOT_BURST,
        },
        *[
            {
                "id": f"bg{i}",
                "api_key": f"bg{i}-tenant-key-0001",
                "class": "bronze",
                "rate": BG_RATE,
                "burst": 2 * BG_RATE,
            }
            for i in range(BG_COUNT)
        ],
    ],
}


def make_database(tmp: str) -> Path:
    path = Path(tmp) / "fairness.sqlite"
    connection = sqlite3.connect(path)
    connection.executescript(
        """
        CREATE TABLE city (
            city_id INTEGER PRIMARY KEY,
            city_name VARCHAR(40),
            population INTEGER
        );
        INSERT INTO city VALUES (1, 'Paris', 21);
        INSERT INTO city VALUES (2, 'Rome', 28);
        """
    )
    connection.commit()
    connection.close()
    return path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=8.0)
    args = parser.parse_args()
    duration = args.duration

    with tempfile.TemporaryDirectory() as tmp:
        config_path = Path(tmp) / "tenants.json"
        config_path.write_text(json.dumps(TENANTS_CONFIG))
        registry = TenantRegistry.from_file(config_path)
        tenancy = TenancyController(
            registry, ledger=QuotaLedger(Path(tmp) / "quota.json")
        )

        database = Database.open(make_database(tmp))
        service = TranslationService(
            [DatabaseRuntime(database, database_id="fairness")],
            workers=2,
            queue_size=256,
            per_tenant_depth=64,
            tenancy=tenancy,
        ).start()
        server = ServingServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

        specs = [
            # Hot tenant floods at 10x its allowance.
            load_test.TenantSpec("hot", "hot-tenant-key-0001", 10 * HOT_RATE),
            *[
                # Background tenants stay inside their allowance (80%).
                load_test.TenantSpec(
                    f"bg{i}", f"bg{i}-tenant-key-0001", 0.8 * BG_RATE
                )
                for i in range(BG_COUNT)
            ],
        ]
        rc = 0
        try:
            rc = load_test.run_tenant_mode(
                argparse.Namespace(
                    url=server.url,
                    tenants=specs,
                    duration=duration,
                    seed=0,
                    questions=load_test.DEFAULT_QUESTIONS,
                    database_ids=None,
                    timeout_ms=None,
                    client_timeout=30.0,
                    failure_rate=0.0,
                    execute=False,
                    fail_on_rejection=False,
                )
            )
            stats = load_test.LAST_RUN_STATS
            assert stats is not None, "run_tenant_mode recorded no stats"

            failures = []
            for i in range(BG_COUNT):
                bg = stats[f"bg{i}"]
                bad = (bg.failures + bg.rate_limited + bg.quota_rejected
                       + bg.rejections + bg.auth_errors + bg.timeouts)
                if bad:
                    failures.append(
                        f"background tenant bg{i} was hurt: "
                        f"{bad}/{bg.attempted} requests did not succeed"
                    )
                if bg.ok < 0.8 * (0.8 * BG_RATE) * duration:
                    failures.append(
                        f"background tenant bg{i} starved: only {bg.ok} ok "
                        f"of ~{0.8 * BG_RATE * duration:.0f} sent"
                    )

            hot = stats["hot"]
            budget = HOT_BURST + HOT_RATE * duration
            if not 0.9 * budget <= hot.ok <= 1.1 * budget:
                failures.append(
                    f"hot tenant served {hot.ok} requests; expected within "
                    f"10% of its budget {budget:.0f} "
                    f"(rate {HOT_RATE}/s, burst {HOT_BURST}, {duration}s)"
                )
            if hot.failures:
                failures.append(
                    f"hot tenant saw {hot.failures} hard failures "
                    "(overload must answer 429, not errors)"
                )

            if failures:
                for line in failures:
                    print("FAIL:", line)
                return 1
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
            tenancy.close()
            database.close()
    if rc != 0:
        return rc
    print("fairness smoke test OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
