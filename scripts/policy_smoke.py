#!/usr/bin/env python
"""Policy smoke test: the defense-in-depth gate, exercised over HTTP.

Starts the service in-process with a policy engine wired in, then checks
the whole contract end to end:

* forbidden raw statements (DDL/DML, PRAGMA, multi-statement piggyback)
  are blocked by the engine with machine-readable rule ids, while their
  closest legitimate twins pass;
* a /translate against a policy-restricted database returns a structured
  403 carrying the rule id; the same question against an unrestricted
  database returns 200 with rows;
* blocks increment the tenant-labeled ``policy_blocked_total`` counter
  visible in the /metrics exposition;
* per-request dialect selection returns the rendered dialect.

Run with ``PYTHONPATH=src python scripts/policy_smoke.py``; exits 0 on
success.
"""

from __future__ import annotations

import json
import sqlite3
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

from repro.db import Database
from repro.policy import PolicyConfigStore, PolicyEngine, PolicyViolationError
from repro.serving import DatabaseRuntime, ServingServer, TranslationService

# (forbidden statement, rule id that must fire, legitimate quiet twin)
FORBIDDEN = [
    ("DROP TABLE city", "blocked-keyword",
     "SELECT city_name FROM city WHERE country = 'DROP TABLE'"),
    ("PRAGMA writable_schema = 1", "blocked-keyword",
     "SELECT city_name FROM city"),
    ("UPDATE city SET population = 0", "blocked-keyword",
     "SELECT population FROM city"),
    ("SELECT city_name FROM city; DELETE FROM city", "multi-statement",
     "SELECT city_name FROM city;"),
    ("VACUUM", "read-only",
     "SELECT COUNT(*) FROM city"),
]


def post(url: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + "/translate",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def check_engine_corpus(engine: PolicyEngine, schema) -> None:
    """Raw forbidden statements block with the right rule; twins pass."""
    for forbidden, rule_id, twin in FORBIDDEN:
        try:
            engine.check_sql(forbidden, database_id="open", schema=schema)
        except PolicyViolationError as error:
            fired = {v.rule_id for v in error.violations}
            assert rule_id in fired, (forbidden, rule_id, fired)
        else:
            raise AssertionError(f"not blocked: {forbidden!r}")
        engine.check_sql(twin, database_id="open", schema=schema)  # must pass


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.sqlite"
        connection = sqlite3.connect(path)
        connection.executescript(
            """
            CREATE TABLE city (
                city_id INTEGER PRIMARY KEY,
                city_name VARCHAR(40),
                country VARCHAR(40),
                population INTEGER
            );
            INSERT INTO city VALUES (1, 'Paris', 'France', 21);
            INSERT INTO city VALUES (2, 'Rome', 'Italy', 28);
            """
        )
        connection.commit()
        connection.close()

        # The "locked" database allows zero tables per query — every
        # generated SELECT trips the max-tables cost rule, which is how
        # a policy block is provoked through /translate (the HTTP layer
        # takes questions, not SQL).
        policy_path = Path(tmp) / "policy.json"
        policy_path.write_text(json.dumps({
            "version": 1,
            "default": {"read_only": True},
            "databases": {"locked": {"max_tables": 0}},
        }))
        engine = PolicyEngine(PolicyConfigStore.load(policy_path))

        open_db = Database.open(path)
        locked_db = Database.open(path)
        check_engine_corpus(engine, open_db.schema)

        service = TranslationService(
            [
                DatabaseRuntime(open_db, database_id="open", policy=engine),
                DatabaseRuntime(locked_db, database_id="locked", policy=engine),
            ],
            workers=2,
            policy=engine,
        ).start()
        server = ServingServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            question = "How many cities are there?"

            status, body = post(server.url, {
                "question": question, "database_id": "open", "execute": True,
            })
            assert status == 200, (status, body)
            assert body["rows"] == [[2]], body
            assert body["policy"] is None, body

            status, body = post(server.url, {
                "question": question, "database_id": "locked", "execute": True,
            })
            assert status == 403, (status, body)
            assert body["reason"] == "policy", body
            assert body["rule_id"] == "max-tables", body
            assert body["policy"]["violations"], body
            assert body["rows"] is None, body

            status, body = post(server.url, {
                "question": question, "database_id": "open",
                "dialect": "postgres",
            })
            assert status == 200, (status, body)
            assert body["dialect"] == "postgres", body

            status, body = post(server.url, {
                "question": question, "database_id": "open",
                "dialect": "oracle",
            })
            assert status == 400, (status, body)

            metrics = urllib.request.urlopen(
                server.url + "/metrics", timeout=10
            ).read().decode("utf-8")
            assert 'policy_blocked_total{tenant="anonymous"} 1' in metrics, (
                metrics
            )
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
            open_db.close()
            locked_db.close()
    print("policy smoke test OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
