"""Policy configuration: built-in defaults with per-database / per-tenant overrides.

The config file is a versioned JSON document loaded alongside the tenant
registry::

    {
      "version": 1,
      "default":   {"read_only": true, "max_subquery_depth": 3},
      "databases": {"concerts": {"require_limit": 500}},
      "tenants":   {"acme": {"max_tables": 4, "disabled_rules": ["limit-required"]}}
    }

Resolution is field-level with precedence **tenant > database > default >
built-in**: a tenant override only replaces the fields it names, so a
tenant that caps ``max_tables`` still inherits the database's
``require_limit``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ReproError

#: Statement-leading keywords that are never allowed to execute.  The set is
#: deliberately wider than what SQLite can parse — defense in depth means the
#: corpus is blocked even if the backend grows new capabilities.
DEFAULT_BLOCKED_KEYWORDS: tuple[str, ...] = (
    "insert", "update", "delete", "drop", "create", "alter", "truncate",
    "replace", "pragma", "attach", "detach", "vacuum", "reindex",
    "grant", "revoke", "begin", "commit", "rollback", "savepoint",
)


class PolicyConfigError(ReproError):
    """The policy config file is malformed."""


@dataclass(frozen=True)
class PolicyConfig:
    """Effective policy for one (database, tenant) pair.

    Attributes:
        read_only: only ``SELECT`` statements may execute.
        blocked_keywords: keywords that block a query wherever they appear
            outside string literals.
        require_limit: when set, any non-aggregate query must carry
            ``LIMIT <= require_limit`` (aggregate-only queries return a
            bounded row count by construction and are exempt).
        max_subquery_depth: maximum nesting depth of subqueries
            (``None`` = unbounded; the top-level query is depth 0).
        max_tables: maximum number of distinct tables per SELECT
            (``None`` = unbounded) — a cost bound on the join fan-out.
        disabled_rules: rule ids skipped entirely for this scope.
    """

    read_only: bool = True
    blocked_keywords: tuple[str, ...] = DEFAULT_BLOCKED_KEYWORDS
    require_limit: int | None = None
    max_subquery_depth: int | None = 3
    max_tables: int | None = None
    disabled_rules: tuple[str, ...] = ()

    def rule_disabled(self, rule_id: str) -> bool:
        return rule_id in self.disabled_rules

    def override(self, overrides: Mapping[str, Any]) -> "PolicyConfig":
        """Return a copy with ``overrides`` applied field-by-field."""
        known = {f.name for f in fields(PolicyConfig)}
        cleaned: dict[str, Any] = {}
        for key, value in overrides.items():
            if key not in known:
                raise PolicyConfigError(f"unknown policy field {key!r}")
            if key in ("blocked_keywords", "disabled_rules"):
                if not isinstance(value, (list, tuple)) or not all(
                    isinstance(v, str) for v in value
                ):
                    raise PolicyConfigError(f"policy field {key!r} must be a list of strings")
                value = tuple(v.lower() for v in value)
            elif key == "read_only":
                if not isinstance(value, bool):
                    raise PolicyConfigError("policy field 'read_only' must be a boolean")
            elif value is not None:
                if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                    raise PolicyConfigError(
                        f"policy field {key!r} must be a non-negative integer or null"
                    )
            cleaned[key] = value
        return replace(self, **cleaned)


class PolicyConfigStore:
    """Resolves effective :class:`PolicyConfig` per database and tenant."""

    def __init__(
        self,
        default: PolicyConfig | None = None,
        databases: Mapping[str, Mapping[str, Any]] | None = None,
        tenants: Mapping[str, Mapping[str, Any]] | None = None,
    ):
        self._default = default if default is not None else PolicyConfig()
        self._databases = {k: dict(v) for k, v in (databases or {}).items()}
        self._tenants = {k: dict(v) for k, v in (tenants or {}).items()}

    @property
    def default(self) -> PolicyConfig:
        return self._default

    def resolve(
        self, database_id: str | None = None, tenant_id: str | None = None
    ) -> PolicyConfig:
        """Effective config: built-in < default < database < tenant."""
        config = self._default
        if database_id is not None and database_id in self._databases:
            config = config.override(self._databases[database_id])
        if tenant_id is not None and tenant_id in self._tenants:
            config = config.override(self._tenants[tenant_id])
        return config

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PolicyConfigStore":
        if not isinstance(payload, Mapping):
            raise PolicyConfigError("policy config must be a JSON object")
        version = payload.get("version", 1)
        if version != 1:
            raise PolicyConfigError(f"unsupported policy config version {version!r}")
        for section in ("default", "databases", "tenants"):
            value = payload.get(section, {})
            if not isinstance(value, Mapping):
                raise PolicyConfigError(f"policy section {section!r} must be an object")
        default = PolicyConfig().override(payload.get("default", {}))
        databases = payload.get("databases", {})
        tenants = payload.get("tenants", {})
        for name, scoped in (("databases", databases), ("tenants", tenants)):
            for key, overrides in scoped.items():
                if not isinstance(overrides, Mapping):
                    raise PolicyConfigError(
                        f"policy override {name}[{key!r}] must be an object"
                    )
                # Validate eagerly so a bad config fails at load, not at
                # the first request that happens to hit the bad scope.
                default.override(overrides)
        return cls(default=default, databases=databases, tenants=tenants)

    @classmethod
    def load(cls, path: str | Path) -> "PolicyConfigStore":
        """Load and validate a policy config file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise PolicyConfigError(f"cannot read policy config {path}: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PolicyConfigError(f"policy config {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)
