"""Policy engine: the validator between SQL synthesis and execution.

The engine sits at the trust boundary — model-synthesized SQL is untrusted
input to the user's database.  ``check_sql`` resolves the effective
:class:`~repro.policy.config.PolicyConfig` for the (database, tenant)
pair, runs every registered rule and raises
:class:`PolicyViolationError` carrying the structured violations when any
fire.  Raw rules always run; AST rules run whenever the statement parses
in our Spider subset (a statement that does *not* parse is already blocked
by ``read-only`` unless it is a SELECT shape we simply cannot analyze,
in which case raw defenses still hold).

Blocked queries increment the tenant-labeled ``policy_blocked_total``
counter so noisy or hostile tenants are visible on /metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReproError, SqlParseError
from repro.schema.graph import SchemaGraph

from repro.policy.config import PolicyConfig, PolicyConfigStore
from repro.policy.rules import PolicyContext, PolicyViolation, all_rules, mask_strings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schema.model import Schema
    from repro.metrics import MetricsRegistry

#: Metric label used when a request carries no tenant identity.
ANONYMOUS_TENANT = "anonymous"


class PolicyViolationError(ReproError):
    """One or more policy rules rejected a query.

    Attributes:
        violations: structured violations, first rule to fire first.
        rule_id: the first violation's rule id (the machine-readable
            summary surfaced in HTTP error bodies).
    """

    def __init__(self, violations: list[PolicyViolation]):
        if not violations:
            raise ValueError("PolicyViolationError requires at least one violation")
        self.violations = list(violations)
        self.rule_id = self.violations[0].rule_id
        summary = "; ".join(v.message for v in self.violations)
        super().__init__(f"policy blocked query [{self.rule_id}]: {summary}")

    def as_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "violations": [v.as_dict() for v in self.violations],
        }


class PolicyEngine:
    """Evaluates the rule registry against SQL bound for execution."""

    def __init__(
        self,
        store: PolicyConfigStore | None = None,
        *,
        metrics: "MetricsRegistry | None" = None,
    ):
        self._store = store if store is not None else PolicyConfigStore()
        self._rules = all_rules()
        self._graphs: dict[int, SchemaGraph] = {}
        self._blocked = None
        if metrics is not None:
            self.bind_metrics(metrics)

    @property
    def store(self) -> PolicyConfigStore:
        return self._store

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Attach the tenant-labeled blocked counter to ``metrics``."""
        self._blocked = metrics.labeled_counter(
            "policy_blocked_total",
            "Queries blocked by the SQL policy engine.",
            label="tenant",
        )

    def resolve_config(
        self, database_id: str | None = None, tenant_id: str | None = None
    ) -> PolicyConfig:
        return self._store.resolve(database_id, tenant_id)

    # ------------------------------------------------------------ checking

    def evaluate(
        self,
        sql: str,
        *,
        database_id: str | None = None,
        tenant_id: str | None = None,
        schema: "Schema | None" = None,
        graph: SchemaGraph | None = None,
    ) -> list[PolicyViolation]:
        """Run every enabled rule; return the violations (no metrics)."""
        config = self._store.resolve(database_id, tenant_id)
        query = None
        if graph is None and schema is not None:
            graph = self._graph_for(schema)
        if schema is not None:
            from repro.sql.parser import parse_sql

            try:
                query = parse_sql(sql, schema)
            except SqlParseError:
                # Raw rules still run; an unparseable statement that is
                # not a SELECT is blocked by read-only regardless.
                query = None
        ctx = PolicyContext(
            sql=sql,
            masked_sql=mask_strings(sql),
            config=config,
            query=query,
            graph=graph,
            database_id=database_id,
            tenant_id=tenant_id,
        )
        violations: list[PolicyViolation] = []
        for rule in self._rules:
            if config.rule_disabled(rule.rule_id):
                continue
            if rule.requires_ast and query is None:
                continue
            violations.extend(rule.check(ctx))
        return violations

    # taint: sanitizer via raise (rejects disallowed SQL by raising PolicyViolationError; nothing flows past a failure)
    def check_sql(
        self,
        sql: str,
        *,
        database_id: str | None = None,
        tenant_id: str | None = None,
        schema: "Schema | None" = None,
        graph: SchemaGraph | None = None,
    ) -> None:
        """Raise :class:`PolicyViolationError` if any rule fires."""
        violations = self.evaluate(
            sql,
            database_id=database_id,
            tenant_id=tenant_id,
            schema=schema,
            graph=graph,
        )
        if violations:
            if self._blocked is not None:
                self._blocked.labels(tenant_id or ANONYMOUS_TENANT).inc()
            raise PolicyViolationError(violations)

    # ------------------------------------------------------------- helpers

    def _graph_for(self, schema: "Schema") -> SchemaGraph:
        """Cache one SchemaGraph per schema object (schemas are immutable)."""
        key = id(schema)
        graph = self._graphs.get(key)
        if graph is None:
            graph = SchemaGraph(schema)
            if len(self._graphs) > 64:
                self._graphs.clear()
            self._graphs[key] = graph
        return graph
