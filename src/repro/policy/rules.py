"""Policy rules: one class per named check, mirroring ``repro.analysis.rules``.

Two families share one interface:

* **raw rules** inspect the SQL text with a quote-aware scanner, so they
  still fire when the string does not parse in our Spider subset — the
  whole point of ``blocked-keyword`` is to reject statements the parser
  would refuse anyway;
* **AST rules** inspect the parsed :class:`repro.sql.ast.Query` (and the
  schema graph) and are skipped when no parse is available.

Every violation carries the machine-readable ``rule_id`` that the serving
layer surfaces in its structured 4xx body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import TranslationError
from repro.schema.graph import SchemaGraph
from repro.schema.joins import plan_joins
from repro.sql.ast import (
    AggregateFunction,
    Query,
    SelectQuery,
    iter_conditions,
)

from repro.policy.config import PolicyConfig


@dataclass(frozen=True)
class PolicyViolation:
    """One structured rule violation."""

    rule_id: str
    message: str
    detail: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"rule_id": self.rule_id, "message": self.message}
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload


@dataclass(frozen=True)
class PolicyContext:
    """Everything a rule may look at for one query."""

    sql: str
    masked_sql: str
    config: PolicyConfig
    query: Query | None = None
    graph: SchemaGraph | None = None
    database_id: str | None = None
    tenant_id: str | None = None


def mask_strings(sql: str) -> str:
    """Replace string-literal / quoted-identifier contents with spaces.

    Keeps the delimiting quotes and the overall length, so offsets in the
    masked text line up with the original.  Understands ``''`` doubling
    inside single quotes, ``""`` inside double quotes and MySQL-style
    backtick identifiers.  An unterminated literal masks to end-of-string,
    which errs on the safe side: text that *might* be inside a string is
    never keyword-matched, while the statement itself will fail to parse
    and be caught by ``read-only``.
    """
    out = list(sql)
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch in ("'", '"', "`"):
            i += 1
            while i < length:
                if sql[i] == ch:
                    if ch != "`" and i + 1 < length and sql[i + 1] == ch:
                        out[i] = " "
                        out[i + 1] = " "
                        i += 2
                        continue
                    break
                out[i] = " "
                i += 1
        i += 1
    return "".join(out)


def _iter_select_bodies(query: Query) -> Iterator[SelectQuery]:
    """Every SELECT body: compound branches and condition subqueries."""
    for body in query.all_select_queries():
        yield body
        for expr in (body.where, body.having):
            for condition in iter_conditions(expr):
                if isinstance(condition.rhs, Query):
                    yield from _iter_select_bodies(condition.rhs)


def subquery_depth(query: Query) -> int:
    """Maximum subquery nesting depth (top level = 0)."""
    deepest = 0
    for body in query.all_select_queries():
        for expr in (body.where, body.having):
            for condition in iter_conditions(expr):
                if isinstance(condition.rhs, Query):
                    deepest = max(deepest, 1 + subquery_depth(condition.rhs))
    return deepest


class PolicyRule:
    """Base class; subclasses set ``rule_id``/``description`` and ``check``."""

    rule_id = "policy-rule"
    description = ""
    #: AST rules need a parsed query (and are skipped without one).
    requires_ast = False

    def check(self, ctx: PolicyContext) -> Iterable[PolicyViolation]:
        raise NotImplementedError

    def _violation(self, message: str, **detail: Any) -> PolicyViolation:
        return PolicyViolation(self.rule_id, message, dict(detail))


class MultiStatementRule(PolicyRule):
    """A request must contain exactly one SQL statement."""

    rule_id = "multi-statement"
    description = "Reject SQL containing more than one statement."

    def check(self, ctx: PolicyContext) -> Iterable[PolicyViolation]:
        masked = ctx.masked_sql
        for offset, ch in enumerate(masked):
            if ch == ";" and masked[offset + 1 :].strip():
                yield self._violation(
                    "SQL contains multiple statements", offset=offset
                )
                return


class BlockedKeywordRule(PolicyRule):
    """No DDL/DML/admin keyword may appear outside string literals."""

    rule_id = "blocked-keyword"
    description = "Reject SQL containing DDL/DML/admin keywords (DROP, PRAGMA, ...)."

    def check(self, ctx: PolicyContext) -> Iterable[PolicyViolation]:
        blocked = set(ctx.config.blocked_keywords)
        if not blocked:
            return
        word = []
        seen: set[str] = set()
        for ch in ctx.masked_sql + " ":
            if ch.isalnum() or ch == "_":
                word.append(ch)
                continue
            if word:
                token = "".join(word).lower()
                word.clear()
                if token in blocked and token not in seen:
                    seen.add(token)
                    yield self._violation(
                        f"blocked keyword {token.upper()!r}", keyword=token.upper()
                    )


class ReadOnlyRule(PolicyRule):
    """Only SELECT statements may execute."""

    rule_id = "read-only"
    description = "Reject any statement that is not a SELECT."

    def check(self, ctx: PolicyContext) -> Iterable[PolicyViolation]:
        if not ctx.config.read_only:
            return
        stripped = ctx.masked_sql.strip()
        first = ""
        for ch in stripped:
            if not (ch.isalnum() or ch == "_"):
                break
            first += ch
        if first.lower() != "select":
            yield self._violation(
                "only SELECT statements are allowed",
                statement=first.upper() or stripped[:20],
            )


class JoinSanityRule(PolicyRule):
    """Every joined table must be reachable over the PK/FK graph."""

    rule_id = "join-sanity"
    description = "Reject joins whose tables are not connected by a FK path (cross joins)."
    requires_ast = True

    def check(self, ctx: PolicyContext) -> Iterable[PolicyViolation]:
        if ctx.query is None or ctx.graph is None:
            return
        for body in _iter_select_bodies(ctx.query):
            if len(set(t.lower() for t in body.tables)) < 2:
                continue
            try:
                plan_joins(ctx.graph, body.tables)
            except TranslationError as exc:
                yield self._violation(
                    f"join is not FK-connected: {exc}", tables=list(body.tables)
                )
                return


class LimitRequiredRule(PolicyRule):
    """Non-aggregate queries must be row-bounded by an explicit LIMIT."""

    rule_id = "limit-required"
    description = "Require LIMIT <= threshold on queries that can return unbounded rows."
    requires_ast = True

    def check(self, ctx: PolicyContext) -> Iterable[PolicyViolation]:
        threshold = ctx.config.require_limit
        if threshold is None or ctx.query is None:
            return
        for body in ctx.query.all_select_queries():
            if self._aggregate_only(body):
                continue
            if body.limit is None:
                yield self._violation(
                    f"query must carry LIMIT <= {threshold}", threshold=threshold
                )
                return
            if body.limit > threshold:
                yield self._violation(
                    f"LIMIT {body.limit} exceeds the allowed maximum {threshold}",
                    threshold=threshold,
                    limit=body.limit,
                )
                return

    @staticmethod
    def _aggregate_only(body: SelectQuery) -> bool:
        """Aggregates without GROUP BY return exactly one row."""
        if body.group_by:
            return False
        return all(
            item.aggregate is not AggregateFunction.NONE for item in body.select
        )


class SubqueryDepthRule(PolicyRule):
    """Bound subquery nesting depth (cost policy)."""

    rule_id = "subquery-depth"
    description = "Bound the maximum subquery nesting depth."
    requires_ast = True

    def check(self, ctx: PolicyContext) -> Iterable[PolicyViolation]:
        maximum = ctx.config.max_subquery_depth
        if maximum is None or ctx.query is None:
            return
        depth = subquery_depth(ctx.query)
        if depth > maximum:
            yield self._violation(
                f"subquery nesting depth {depth} exceeds the allowed maximum {maximum}",
                depth=depth,
                maximum=maximum,
            )


class MaxTablesRule(PolicyRule):
    """Bound the number of tables per SELECT (join fan-out cost policy)."""

    rule_id = "max-tables"
    description = "Bound the number of distinct tables joined in one SELECT."
    requires_ast = True

    def check(self, ctx: PolicyContext) -> Iterable[PolicyViolation]:
        maximum = ctx.config.max_tables
        if maximum is None or ctx.query is None:
            return
        for body in _iter_select_bodies(ctx.query):
            count = len(set(t.lower() for t in body.tables))
            if count > maximum:
                yield self._violation(
                    f"query joins {count} tables, more than the allowed {maximum}",
                    tables=count,
                    maximum=maximum,
                )
                return


_RULE_CLASSES: list[type[PolicyRule]] = [
    MultiStatementRule,
    BlockedKeywordRule,
    ReadOnlyRule,
    JoinSanityRule,
    LimitRequiredRule,
    SubqueryDepthRule,
    MaxTablesRule,
]


def all_rules() -> list[PolicyRule]:
    """Fresh rule instances for one engine."""
    return [cls() for cls in _RULE_CLASSES]


def rule_catalog() -> list[tuple[str, str]]:
    """(rule_id, description) pairs, registry order."""
    return [(cls.rule_id, cls.description) for cls in _RULE_CLASSES]
