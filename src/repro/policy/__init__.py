"""Defense-in-depth SQL policy engine.

An AST-level validator that runs between synthesis and execution: a rule
registry (blocked keywords, multi-statement, read-only enforcement, join
sanity, LIMIT and subquery-depth cost policies) with per-database and
per-tenant config overrides.  See ``docs/policy.md`` for the rule catalog
and the config format.
"""

from repro.policy.config import (
    DEFAULT_BLOCKED_KEYWORDS,
    PolicyConfig,
    PolicyConfigError,
    PolicyConfigStore,
)
from repro.policy.engine import ANONYMOUS_TENANT, PolicyEngine, PolicyViolationError
from repro.policy.rules import (
    PolicyContext,
    PolicyRule,
    PolicyViolation,
    all_rules,
    mask_strings,
    rule_catalog,
    subquery_depth,
)

__all__ = [
    "ANONYMOUS_TENANT",
    "DEFAULT_BLOCKED_KEYWORDS",
    "PolicyConfig",
    "PolicyConfigError",
    "PolicyConfigStore",
    "PolicyContext",
    "PolicyEngine",
    "PolicyRule",
    "PolicyViolation",
    "PolicyViolationError",
    "all_rules",
    "mask_strings",
    "rule_catalog",
    "subquery_depth",
]
