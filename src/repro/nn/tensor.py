"""Reverse-mode automatic differentiation over numpy arrays.

PyTorch is unavailable offline, so the ValueNet model runs on this
from-scratch autograd engine.  A :class:`Tensor` wraps an ``ndarray``,
records the operation that produced it, and :meth:`Tensor.backward`
propagates gradients through the recorded graph in reverse topological
order.

Design notes:

* float64 everywhere — the models are small, and double precision makes
  gradient checking in the test suite tight.
* Broadcasting is supported for elementwise ops; gradients are summed back
  over broadcast axes (:func:`_unbroadcast`).
* The graph is built dynamically per forward pass (define-by-run), which
  the sequential LSTM decoder requires.
* Graph construction is skipped entirely when no input requires a
  gradient, and :func:`inference_mode` turns it off wholesale (per
  thread) for the serving fast path — a forward pass under it allocates
  no backward closures and keeps no parent references.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence

import numpy as np

_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Whether ops record the autograd graph on the current thread."""
    return getattr(_GRAD_STATE, "enabled", True)


class inference_mode:
    """Context manager that disables autograd graph construction.

    Inside the context, op outputs never require gradients, record no
    parents, and build no backward closures — the forward pass is pure
    numpy work.  The flag is *per-thread*, so serving workers can run
    inference while another thread trains.  Nesting is supported; the
    previous state is restored on exit.
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> "inference_mode":
        self._previous = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        _GRAD_STATE.enabled = self._previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        *,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        if parents and not is_grad_enabled():
            # Op output under inference_mode: drop the graph entirely.
            parents = ()
            requires_grad = False
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None
        self.name = name

    # ----------------------------------------------------------- plumbing

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            grad: upstream gradient; defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)

        # Topological order via iterative DFS (deep LSTM graphs overflow
        # Python's recursion limit).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -------------------------------------------------------- construction

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    # ---------------------------------------------------------- operators

    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = _as_tensor(other)
        out = Tensor(self.data + other.data, parents=(self, other))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        out._backward = backward
        return out

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other: float) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = _as_tensor(other)
        out = Tensor(self.data * other.data, parents=(self, other))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = _as_tensor(other)
        out = Tensor(self.data / other.data, parents=(self, other))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        out._backward = backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        out = Tensor(self.data @ other.data, parents=(self, other))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2
                                     else grad * other.data)
                else:
                    g = grad if grad.ndim > 0 else grad.reshape(1)
                    if self.data.ndim == 1:
                        self._accumulate(g @ other.data.T)
                    else:
                        self._accumulate(
                            _unbroadcast(g @ other.data.swapaxes(-1, -2), self.shape)
                        )
            if other.requires_grad:
                if self.data.ndim == 1:
                    if other.data.ndim == 2:
                        other._accumulate(np.outer(self.data, grad))
                    else:
                        other._accumulate(grad * self.data)
                else:
                    # Batched (..., n, k) @ (k, m): sum the gradient over
                    # the broadcast batch axes back to ``other``'s shape.
                    other._accumulate(
                        _unbroadcast(
                            self.data.swapaxes(-1, -2) @ grad, other.shape
                        )
                    )

        out._backward = backward
        return out

    def __getitem__(self, key) -> "Tensor":
        out = Tensor(self.data[key], parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        out._backward = backward
        return out

    # -------------------------------------------------------- elementwise

    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = Tensor(value, parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = Tensor(value, parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value ** 2))

        out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor(value, parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        out._backward = backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(self.data * mask, parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        out._backward = backward
        return out

    def pow(self, exponent: float) -> "Tensor":
        value = self.data ** exponent
        out = Tensor(value, parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward = backward
        return out

    # --------------------------------------------------------- reductions

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims), parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        out._backward = backward
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -------------------------------------------------------------- shape

    def reshape(self, *shape: int) -> "Tensor":
        out = Tensor(self.data.reshape(shape), parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        out._backward = backward
        return out

    def transpose(self) -> "Tensor":
        out = Tensor(self.data.T, parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        out._backward = backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Swap two axes (needed for batched attention: ``k.swapaxes(-1, -2)``)."""
        out = Tensor(self.data.swapaxes(axis1, axis2), parents=(self,))
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.swapaxes(axis1, axis2))

        out._backward = backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, grad={self.requires_grad}{label})"


def _as_tensor(value: "Tensor | float | int | np.ndarray") -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor(data, parents=tuple(tensors))
    if not out.requires_grad:
        return out
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        offset = 0
        for tensor, size in zip(tensors, sizes):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(offset, offset + size)
                tensor._accumulate(grad[tuple(slicer)])
            offset += size

    out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor(data, parents=tuple(tensors))
    if not out.requires_grad:
        return out

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    out._backward = backward
    return out
