"""Parameter initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> Tensor:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) matrix."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(
        rng.uniform(-bound, bound, size=(fan_in, fan_out)), requires_grad=True
    )


def normal_embedding(
    rng: np.random.Generator, vocab_size: int, dim: int, *, scale: float = 0.1
) -> Tensor:
    """Small-normal initialization for embedding tables."""
    return Tensor(
        rng.normal(0.0, scale, size=(vocab_size, dim)), requires_grad=True
    )


def zeros(*shape: int) -> Tensor:
    """Zero-initialized trainable parameter (biases)."""
    return Tensor(np.zeros(shape), requires_grad=True)
