"""Neural network modules (Linear, Embedding, LayerNorm, Dropout, MLP).

A tiny module system in the PyTorch style: modules register parameters
and sub-modules simply by attribute assignment; ``named_parameters``
walks the tree.  Training/eval mode is a flag propagated by ``train()``
and ``eval()`` (dropout is the only mode-dependent layer).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.nn.functional import dropout
from repro.nn.init import xavier_uniform, zeros
from repro.nn.tensor import Tensor, concat


class Module:
    """Base class: parameter/submodule discovery and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------- registration

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` for the whole subtree."""
        for name, value in vars(self).items():
            if name.startswith("_module_cache"):
                continue
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Tensor]:
        return [p for _name, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # --------------------------------------------------------------- mode

    def _submodules(self) -> Iterator["Module"]:
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def train(self) -> "Module":
        self.training = True
        for module in self._submodules():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._submodules():
            module.eval()
        return self


class Linear(Module):
    """Affine map ``x @ W + b`` (W is (in, out))."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        bias: bool = True,
    ):
        super().__init__()
        self.weight = xavier_uniform(rng, in_features, out_features)
        self.bias = zeros(out_features) if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table: integer ids -> dense rows."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        super().__init__()
        from repro.nn.init import normal_embedding

        self.weight = normal_embedding(rng, vocab_size, dim)

    def __call__(self, ids: list[int] | np.ndarray) -> Tensor:
        index = np.asarray(ids, dtype=np.int64)
        return self.weight[index]


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, *, eps: float = 1e-5):
        super().__init__()
        self.gain = Tensor(np.ones(dim), requires_grad=True)
        self.shift = zeros(dim)
        self._eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mean = x.data.mean(axis=-1, keepdims=True)
        var = x.data.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self._eps)
        normalized = (x.data - mean) * inv_std
        out = Tensor(normalized, parents=(x,))
        if out.requires_grad:

            def backward(grad: np.ndarray) -> None:
                if x.requires_grad:
                    dx = (
                        grad
                        - grad.mean(axis=-1, keepdims=True)
                        - normalized * (grad * normalized).mean(axis=-1, keepdims=True)
                    ) * inv_std
                    x._accumulate(dx)

            out._backward = backward
        return out * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout module (identity in eval mode)."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        self.rate = rate
        self._rng = rng

    def __call__(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, training=self.training, rng=self._rng)


class MLP(Module):
    """Two-layer perceptron with tanh, used as attention scorer head."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        out_features: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.layer1 = Linear(in_features, hidden, rng)
        self.layer2 = Linear(hidden, out_features, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.layer2(self.layer1(x).tanh())


def concat_features(parts: list[Tensor]) -> Tensor:
    """Concatenate feature vectors/matrices along the last axis."""
    return concat(parts, axis=-1)
