"""Checkpoint save/load for modules (npz files)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Module


def save_module(module: Module, path: str | Path) -> None:
    """Write all named parameters of ``module`` to an ``.npz`` file."""
    arrays = {name: param.data for name, param in module.named_parameters()}
    np.savez_compressed(str(path), **arrays)


def load_module(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_module` into ``module`` in place.

    Raises:
        ModelError: on missing parameters or shape mismatches — a loud
            failure beats silently training from scratch.
    """
    with np.load(str(path)) as archive:
        stored = {name: archive[name] for name in archive.files}
    for name, parameter in module.named_parameters():
        if name not in stored:
            raise ModelError(f"checkpoint is missing parameter {name!r}")
        value = stored.pop(name)
        if value.shape != parameter.data.shape:
            raise ModelError(
                f"checkpoint parameter {name!r} has shape {value.shape}, "
                f"model expects {parameter.data.shape}"
            )
        parameter.data[...] = value
    if stored:
        raise ModelError(
            f"checkpoint contains unknown parameters: {sorted(stored)[:5]}"
        )
