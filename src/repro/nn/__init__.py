"""From-scratch numpy neural network library (autograd, layers, optim)."""

from repro.nn.attention import BilinearAttention, MultiHeadSelfAttention, PointerNetwork
from repro.nn.functional import (
    NEG_INF,
    attention_pool,
    cross_entropy,
    dropout,
    log_softmax,
    masked_log_softmax,
    nll_loss,
    softmax,
)
from repro.nn.init import normal_embedding, xavier_uniform, zeros
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    Module,
    concat_features,
)
from repro.nn.optim import Adam, ParamGroup
from repro.nn.rnn import BiLSTMSummarizer, LSTM, LSTMCell
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Tensor, concat, inference_mode, is_grad_enabled, stack
from repro.nn.transformer import TransformerEncoder, TransformerLayer, sinusoidal_positions

__all__ = [
    "Adam",
    "BiLSTMSummarizer",
    "BilinearAttention",
    "Dropout",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Linear",
    "MLP",
    "Module",
    "MultiHeadSelfAttention",
    "NEG_INF",
    "ParamGroup",
    "PointerNetwork",
    "Tensor",
    "TransformerEncoder",
    "TransformerLayer",
    "attention_pool",
    "concat",
    "concat_features",
    "cross_entropy",
    "dropout",
    "inference_mode",
    "is_grad_enabled",
    "load_module",
    "log_softmax",
    "masked_log_softmax",
    "nll_loss",
    "normal_embedding",
    "save_module",
    "sinusoidal_positions",
    "softmax",
    "stack",
    "xavier_uniform",
    "zeros",
]
