"""Recurrent modules: LSTM cell, unidirectional LSTM, BiLSTM summarizer.

The decoder is an LSTM (paper Section III-B2), and multi-token schema
items / value candidates are summarized by a bidirectional LSTM into a
single vector (Section V-C: "bi-directional LSTM networks to summarize
multi-token columns/tables/values").

The cell operates on a single (d,) input or a batched (s, d) stack of
inputs transparently (gates slice the last axis), which lets the batched
encoder summarize every same-length span across a micro-batch with one
fused matrix multiply per step instead of one vector multiply per span.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import xavier_uniform, zeros
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, concat


class LSTMCell(Module):
    """A single LSTM step.

    Gates are computed from one fused affine map of ``[x; h]`` for speed;
    the forget-gate bias starts at 1.0 (the standard trick for gradient
    flow through long sequences).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.weight = xavier_uniform(rng, input_dim + hidden_dim, 4 * hidden_dim)
        self.bias = zeros(4 * hidden_dim)
        self.bias.data[hidden_dim:2 * hidden_dim] = 1.0  # forget gate

    def __call__(
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        h, c = state
        combined = concat([x, h], axis=-1)
        gates = combined @ self.weight + self.bias
        d = self.hidden_dim
        i = gates[..., 0:d].sigmoid()
        f = gates[..., d:2 * d].sigmoid()
        g = gates[..., 2 * d:3 * d].tanh()
        o = gates[..., 3 * d:4 * d].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch: int | None = None) -> tuple[Tensor, Tensor]:
        shape = (self.hidden_dim,) if batch is None else (batch, self.hidden_dim)
        return (Tensor(np.zeros(shape)), Tensor(np.zeros(shape)))


class LSTM(Module):
    """Unidirectional LSTM over an (n, d_in) sequence, returning all hidden
    states as an (n, d_h) tensor plus the final (h, c)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng)

    def __call__(
        self, sequence: Tensor
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        state = self.cell.initial_state()
        outputs: list[Tensor] = []
        for t in range(sequence.shape[0]):
            h, c = self.cell(sequence[t], state)
            state = (h, c)
            outputs.append(h)
        from repro.nn.tensor import stack

        return stack(outputs, axis=0), state


class BiLSTMSummarizer(Module):
    """Summarize a variable-length (n, d_in) span into one vector.

    Runs an LSTM forward and another backward over the span and projects
    the concatenated final hidden states to ``output_dim``.  Used for
    multi-word column names, table names and multi-piece value candidates.
    """

    def __init__(
        self, input_dim: int, hidden_dim: int, output_dim: int, rng: np.random.Generator
    ):
        super().__init__()
        self.forward_cell = LSTMCell(input_dim, hidden_dim, rng)
        self.backward_cell = LSTMCell(input_dim, hidden_dim, rng)
        self.projection = xavier_uniform(rng, 2 * hidden_dim, output_dim)

    def __call__(self, span: Tensor) -> Tensor:
        n = span.shape[0]
        forward_state = self.forward_cell.initial_state()
        for t in range(n):
            forward_state = self.forward_cell(span[t], forward_state)
        backward_state = self.backward_cell.initial_state()
        for t in range(n - 1, -1, -1):
            backward_state = self.backward_cell(span[t], backward_state)
        combined = concat([forward_state[0], backward_state[0]], axis=-1)
        return (combined @ self.projection).tanh()

    def summarize_spans(
        self, contextual: Tensor, spans: list[tuple[int, int, int]]
    ) -> Tensor:
        """Summarize many *equal-length* spans of a padded batch at once.

        Args:
            contextual: (batch, max_len, d_in) padded encoder output.
            spans: ``(example_index, start, end)`` triples, all with the
                same ``end - start``.

        Returns:
            (len(spans), output_dim) summaries, row-aligned with ``spans``.

        Each step gathers one position of every span and runs both LSTM
        cells on the (s, d_in) stack — identical math to calling the
        summarizer per span, but one fused matmul per step.
        """
        length = spans[0][2] - spans[0][1]
        if any(end - start != length for _, start, end in spans):
            raise ValueError("summarize_spans requires equal-length spans")
        rows = np.array([example for example, _, _ in spans], dtype=np.int64)
        starts = np.array([start for _, start, _ in spans], dtype=np.int64)

        forward_state = self.forward_cell.initial_state(batch=len(spans))
        for t in range(length):
            x = contextual[(rows, starts + t)]
            forward_state = self.forward_cell(x, forward_state)
        backward_state = self.backward_cell.initial_state(batch=len(spans))
        for t in range(length - 1, -1, -1):
            x = contextual[(rows, starts + t)]
            backward_state = self.backward_cell(x, backward_state)
        combined = concat([forward_state[0], backward_state[0]], axis=-1)
        return (combined @ self.projection).tanh()
