"""Differentiable functions built on the autograd :class:`Tensor`.

Numerically-stable softmax / log-softmax, masked variants for
grammar-constrained decoding and pointer networks, cross-entropy losses,
and dropout.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

NEG_INF = -1e30


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor(value, parents=(x,))
    if not out.requires_grad:
        return out

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # dL/dx = s * (g - sum(g * s))
            dot = (grad * value).sum(axis=axis, keepdims=True)
            x._accumulate(value * (grad - dot))

    out._backward = backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_z
    out = Tensor(value, parents=(x,))
    if not out.requires_grad:
        return out
    soft = np.exp(value)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    out._backward = backward
    return out


def masked_log_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Log-softmax with illegal positions (``mask == False``) forced to
    ``-inf`` before normalization.

    Used for grammar-constrained decoding: only the productions legal in
    the current :class:`~repro.semql.tree.GrammarState` compete.
    """
    penalty = np.where(mask, 0.0, NEG_INF)
    return log_softmax(x + Tensor(penalty), axis=axis)


def nll_loss(log_probs: Tensor, target: int) -> Tensor:
    """Negative log-likelihood of ``target`` under a 1-D log-prob vector."""
    return -log_probs[target]


def cross_entropy(logits: Tensor, target: int, mask: np.ndarray | None = None) -> Tensor:
    """Cross-entropy of one target index over a 1-D logits vector."""
    if mask is not None:
        log_probs = masked_log_softmax(logits, mask)
    else:
        log_probs = log_softmax(logits)
    return nll_loss(log_probs, target)


def dropout(x: Tensor, rate: float, *, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at inference time."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep) / keep
    out = Tensor(x.data * mask, parents=(x,))
    if not out.requires_grad:
        return out

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    out._backward = backward
    return out


def attention_pool(scores: Tensor, memory: Tensor) -> Tensor:
    """Softmax-weighted pooling: ``softmax(scores) @ memory``.

    Args:
        scores: shape (n,) attention scores.
        memory: shape (n, d) memory bank.

    Returns:
        shape (d,) context vector.
    """
    weights = softmax(scores)
    return weights @ memory
