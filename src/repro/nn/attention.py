"""Attention modules: multi-head self-attention and pointer networks.

The encoder is attention-only (paper Section III-B1); the decoder selects
columns, tables and values with pointer networks (Vinyals et al., cited as
[34] in the paper) scoring each memory item against the decoder state.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.functional import NEG_INF, softmax
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor, concat


class MultiHeadSelfAttention(Module):
    """Multi-head scaled-dot-product self-attention.

    Accepts an (n, d) sequence or a padded (batch, n, d) stack; the
    optional ``mask`` (shape (n,) or (batch, n), True = real token)
    excludes padded *keys* so every real position attends exactly as it
    would unbatched.  Heads are computed with an explicit loop over
    slices — the sequences here are short (question + schema +
    candidates, typically < 150 positions) and head counts small, so
    clarity beats vectorization.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        *,
        dropout_rate: float = 0.0,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng)
        self.key = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)
        self.output = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout_rate, rng)

    def __call__(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        q = self.query(x)
        k = self.key(x)
        v = self.value(x)
        scale = 1.0 / math.sqrt(self.head_dim)

        penalty: Tensor | None = None
        if mask is not None:
            # Broadcast over the query axis: padded keys are excluded for
            # every query; padded query rows are discarded downstream.
            penalty = Tensor(np.where(mask, 0.0, NEG_INF)[..., None, :])

        heads: list[Tensor] = []
        for h in range(self.num_heads):
            lo, hi = h * self.head_dim, (h + 1) * self.head_dim
            qh = q[..., lo:hi]
            kh = k[..., lo:hi]
            vh = v[..., lo:hi]
            scores = (qh @ kh.swapaxes(-1, -2)) * scale
            if penalty is not None:
                scores = scores + penalty
            attn = softmax(scores, axis=-1)
            heads.append(attn @ vh)
        combined = concat(heads, axis=-1)
        return self.dropout(self.output(combined))


class PointerNetwork(Module):
    """Additive pointer scorer: ``score_i = v . tanh(W_q q + W_m m_i)``.

    Given the decoder state ``q`` (shape (d_q,)) and a memory bank
    (shape (n, d_m)), returns unnormalized scores (shape (n,)) that the
    decoder feeds through a (masked) softmax.
    """

    def __init__(
        self,
        query_dim: int,
        memory_dim: int,
        hidden: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.query_proj = Linear(query_dim, hidden, rng)
        self.memory_proj = Linear(memory_dim, hidden, rng, bias=False)
        self.scorer = Linear(hidden, 1, rng, bias=False)

    def __call__(self, query: Tensor, memory: Tensor) -> Tensor:
        q = self.query_proj(query)          # (hidden,)
        m = self.memory_proj(memory)        # (n, hidden)
        combined = (m + q).tanh()           # broadcast over rows
        return self.scorer(combined).reshape(memory.shape[0])


class BilinearAttention(Module):
    """Bilinear attention ``score_i = q^T W m_i`` used for the decoder's
    context attention over question encodings."""

    def __init__(self, query_dim: int, memory_dim: int, rng: np.random.Generator):
        super().__init__()
        self.proj = Linear(query_dim, memory_dim, rng, bias=False)

    def __call__(self, query: Tensor, memory: Tensor) -> Tensor:
        projected = self.proj(query)        # (d_m,)
        return memory @ projected           # (n,)
