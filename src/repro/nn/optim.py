"""Optimizers.

The paper trains with Adam and *three* learning rates: 2e-5 for the
encoder, 1e-3 for the decoder and 1e-4 for the connection parameters in
between (Section V-C).  :class:`Adam` therefore supports parameter groups
with per-group learning rates, exactly like ``torch.optim``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.tensor import Tensor


@dataclass
class ParamGroup:
    """One parameter group with its own learning rate."""

    params: list[Tensor]
    lr: float
    name: str = ""
    # per-parameter Adam state, allocated lazily
    m: list[np.ndarray] = field(default_factory=list)
    v: list[np.ndarray] = field(default_factory=list)


class Adam:
    """Adam with parameter groups, gradient clipping and weight decay."""

    def __init__(
        self,
        groups: list[ParamGroup],
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = 5.0,
    ):
        self._groups = groups
        self._beta1, self._beta2 = betas
        self._eps = eps
        self._weight_decay = weight_decay
        self._max_grad_norm = max_grad_norm
        self._step_count = 0
        for group in self._groups:
            group.m = [np.zeros_like(p.data) for p in group.params]
            group.v = [np.zeros_like(p.data) for p in group.params]

    @classmethod
    def single_group(cls, params: list[Tensor], lr: float, **kwargs) -> "Adam":
        """Convenience constructor for one uniform learning rate."""
        return cls([ParamGroup(params=params, lr=lr)], **kwargs)

    def zero_grad(self) -> None:
        for group in self._groups:
            for parameter in group.params:
                parameter.zero_grad()

    def _clip_gradients(self) -> float:
        """Global-norm gradient clipping across all groups."""
        total = 0.0
        for group in self._groups:
            for parameter in group.params:
                if parameter.grad is not None:
                    total += float((parameter.grad ** 2).sum())
        norm = total ** 0.5
        if self._max_grad_norm is not None and norm > self._max_grad_norm:
            scale = self._max_grad_norm / (norm + 1e-12)
            for group in self._groups:
                for parameter in group.params:
                    if parameter.grad is not None:
                        parameter.grad *= scale
        return norm

    def step(self) -> float:
        """Apply one update; returns the pre-clip gradient norm."""
        norm = self._clip_gradients()
        self._step_count += 1
        bias1 = 1.0 - self._beta1 ** self._step_count
        bias2 = 1.0 - self._beta2 ** self._step_count
        for group in self._groups:
            for i, parameter in enumerate(group.params):
                grad = parameter.grad
                if grad is None:
                    continue
                if self._weight_decay:
                    grad = grad + self._weight_decay * parameter.data
                group.m[i] = self._beta1 * group.m[i] + (1 - self._beta1) * grad
                group.v[i] = self._beta2 * group.v[i] + (1 - self._beta2) * grad ** 2
                m_hat = group.m[i] / bias1
                v_hat = group.v[i] / bias2
                parameter.data -= group.lr * m_hat / (np.sqrt(v_hat) + self._eps)
        return norm
