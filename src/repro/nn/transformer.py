"""Transformer encoder (paper Section III-B1).

A pre-norm transformer: each layer applies layer-normalized multi-head
self-attention and a feed-forward block, both with residual connections.
This plays the role of the paper's pre-trained BERT encoder; since
pre-trained weights are unavailable offline, the encoder is trained from
scratch on the synthetic corpus (see DESIGN.md substitution table).
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor


class TransformerLayer(Module):
    """One pre-norm transformer encoder layer."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ff_dim: int,
        rng: np.random.Generator,
        *,
        dropout_rate: float = 0.1,
    ):
        super().__init__()
        self.attention = MultiHeadSelfAttention(
            dim, num_heads, rng, dropout_rate=dropout_rate
        )
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ff1 = Linear(dim, ff_dim, rng)
        self.ff2 = Linear(ff_dim, dim, rng)
        self.dropout = Dropout(dropout_rate, rng)

    def __call__(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attention(self.norm1(x), mask=mask)
        x = x + self.dropout(self.ff2(self.ff1(self.norm2(x)).relu()))
        return x


class TransformerEncoder(Module):
    """A stack of transformer layers with a final layer norm."""

    def __init__(
        self,
        dim: int,
        num_layers: int,
        num_heads: int,
        ff_dim: int,
        rng: np.random.Generator,
        *,
        dropout_rate: float = 0.1,
    ):
        super().__init__()
        self.layers = [
            TransformerLayer(dim, num_heads, ff_dim, rng, dropout_rate=dropout_rate)
            for _ in range(num_layers)
        ]
        self.final_norm = LayerNorm(dim)

    def __call__(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Encode ``x`` ((n, d) or padded (batch, n, d) with ``mask``)."""
        for layer in self.layers:
            x = layer(x, mask=mask)
        return self.final_norm(x)


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Fixed sinusoidal position encodings (Vaswani et al.)."""
    positions = np.arange(length)[:, None]
    dims = np.arange(dim)[None, :]
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / dim)
    angles = positions * angle_rates
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding
