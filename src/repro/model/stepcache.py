"""Per-request decoder step cache (inference fast path).

The decoder's hot loop re-computed request-constant quantities on every
beam step: the pointer networks' memory projections (``memory @ W_m``
over all columns/tables/values), the feed embedding of each emitted
action, the legal-production grammar mask for each grammar state
signature, and its ``-inf`` penalty row.  :class:`StepCache` computes
each of these once per request and replays the per-step math (context
attention, LSTM cell, heads, masked log-softmax) in raw numpy over
preallocated arena buffers — no autograd ``Tensor`` wrappers, no
per-step closure allocation.

Numerical contract: the cached path performs the *same floating-point
operations in the same order* as the Tensor path, so its outputs are
bit-identical and decoding is prediction-identical with or without the
cache (locked by ``tests/test_decoder_cache.py``).  First-time values
(memory projections, feeds, masks, the initial state) are produced by
the original decoder methods themselves and memoized, which makes the
equality true by construction for everything request-constant.

Usage: construct one per request (under
:func:`repro.nn.tensor.inference_mode`) and pass it to
``ValueNetDecoder.decode(..., cache=...)`` or
``beam_decode(..., cache=...)``.  Without a cache those entry points
build a :class:`ReferenceOps` over the unchanged Tensor path — that is
the differential reference.

Greedy decoding additionally ping-pongs the LSTM ``(h, c)`` state
between two arena buffer pairs (``reuse=True``); beam search allocates
fresh state arrays per step because surviving hypotheses keep
references to them.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import NEG_INF, log_softmax, masked_log_softmax
from repro.semql.actions import ActionType, GRAMMAR_ACTION_LIST, NUM_GRAMMAR_ACTIONS

# Grammar actions that expand recursively (Filter and/or conjunctions,
# sub-query productions): the decode budget policy caps how many may be
# emitted.  Request-independent, so computed once at import.
RECURSIVE_ACTION = np.array([
    ActionType.FILTER in action.children or ActionType.R in action.children
    for action in GRAMMAR_ACTION_LIST
])
assert RECURSIVE_ACTION.shape == (NUM_GRAMMAR_ACTIONS,)


class ReferenceOps:
    """The uncached decoder ops: thin delegation to the Tensor path.

    Exists so ``decode``/``beam_decode`` are written once against one
    interface; this implementation is the differential baseline and must
    keep calling the decoder's original methods unchanged.
    """

    def __init__(self, decoder, encoded):
        self.decoder = decoder
        self.encoded = encoded

    def initial_state(self):
        return self.decoder._initial_state(self.encoded)

    def start(self):
        return self.decoder.start_embedding

    def step(self, prev, state, *, reuse: bool = False):
        return self.decoder._step(prev, state, self.encoded)

    def pointer_scores(self, kind: str, h) -> np.ndarray:
        return self.decoder._head_logits(kind, h, self.encoded).data

    def pointer_log_probs(self, kind: str, h) -> np.ndarray:
        return log_softmax(self.decoder._head_logits(kind, h, self.encoded)).data

    def grammar_mask(self, expected, **flags):
        return self.decoder._grammar_mask(
            expected, self.encoded.num_values, **flags
        )

    def sketch_log_probs(self, h, mask) -> np.ndarray:
        return masked_log_softmax(self.decoder.sketch_head(h), mask).data

    def feed(self, kind: str, index: int):
        return self.decoder._feed_embedding(kind, index, self.encoded)


class StepCache:
    """Raw-numpy decoder ops with per-request memoization and an arena.

    One instance serves exactly one request (one ``encoded``); do not
    share across requests — every memo is keyed on request-local
    indexes.
    """

    def __init__(self, decoder, encoded):
        self.decoder = decoder
        self.encoded = encoded
        config = decoder.config
        dim = config.dim
        hidden = config.decoder_hidden

        # Raw parameter views (no copies).
        self._w_ctx = decoder.context_attention.proj.weight.data
        self._w_cell = decoder.cell.weight.data
        self._b_cell = decoder.cell.bias.data
        self._w_sketch = decoder.sketch_head.weight.data
        self._b_sketch = decoder.sketch_head.bias.data
        self._question = encoded.question.data
        self._start = decoder.start_embedding.data

        # Per-request memos, all computed lazily through the original
        # Tensor methods (bit-equality by construction).
        self._pointer_memory: dict[str, np.ndarray] = {}
        self._feeds: dict[tuple[str, int], np.ndarray] = {}
        self._masks: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

        # Arena: every per-step intermediate, preallocated once.  The
        # (h, c) ping-pong pairs are for greedy (``reuse=True``); beam
        # steps allocate fresh state arrays instead.
        n_question = self._question.shape[0]
        self._projected = np.empty(dim)
        self._scores = np.empty(n_question)
        self._weights = np.empty(n_question)
        self._context = np.empty(dim)
        self._x = np.empty(2 * dim)
        self._combined = np.empty(2 * dim + hidden)
        self._gates = np.empty(4 * hidden)
        self._gate_tmp = np.empty(hidden)
        self._states = (
            (np.empty(hidden), np.empty(hidden)),
            (np.empty(hidden), np.empty(hidden)),
        )
        self._flip = 0
        self._sketch = np.empty(NUM_GRAMMAR_ACTIONS)
        self._hidden = hidden

    # --------------------------------------------------- request constants

    def initial_state(self):
        h0, c0 = self.decoder._initial_state(self.encoded)
        return h0.data, c0.data

    def start(self):
        return self._start

    def feed(self, kind: str, index: int) -> np.ndarray:
        key = (kind, index)
        value = self._feeds.get(key)
        if value is None:
            value = self.decoder._feed_embedding(kind, index, self.encoded).data
            self._feeds[key] = value
        return value

    def _memory(self, kind: str) -> np.ndarray:
        m = self._pointer_memory.get(kind)
        if m is None:
            decoder, encoded = self.decoder, self.encoded
            if kind == "C":
                pointer, bank = decoder.column_pointer, encoded.columns
            elif kind == "T":
                pointer, bank = decoder.table_pointer, encoded.tables
            else:
                pointer, bank = decoder.value_pointer, encoded.values
            # Same op the Tensor path runs every step, done once here.
            m = pointer.memory_proj(bank).data
            self._pointer_memory[kind] = m
        return m

    def grammar_mask(self, expected, **flags):
        key = (expected, tuple(sorted(flags.items())))
        entry = self._masks.get(key)
        if entry is None:
            mask = self.decoder._grammar_mask(
                expected, self.encoded.num_values, **flags
            )
            penalty = np.where(mask, 0.0, NEG_INF)
            entry = (mask, penalty)
            self._masks[key] = entry
        return entry

    # ------------------------------------------------------- per-step math

    def step(self, prev, state, *, reuse: bool = False):
        """One decoder step: context attention + LSTM cell, arena-backed.

        Mirrors ``ValueNetDecoder._step`` operation for operation
        (dropout is identity in eval mode, so it is omitted).
        """
        h, c = state
        # Bilinear context attention over the question encodings.
        np.matmul(h, self._w_ctx, out=self._projected)
        np.matmul(self._question, self._projected, out=self._scores)
        # attention_pool: softmax(scores) @ question.
        scores = self._scores
        shifted = np.subtract(
            scores, scores.max(axis=-1, keepdims=True), out=self._weights
        )
        exp = np.exp(shifted, out=shifted)
        weights = np.divide(exp, exp.sum(axis=-1, keepdims=True), out=exp)
        np.matmul(weights, self._question, out=self._context)
        # x = concat([prev_embedding, context]); combined = concat([x, h]).
        dim = self._context.shape[0]
        self._x[:dim] = prev
        self._x[dim:] = self._context
        self._combined[: 2 * dim] = self._x
        self._combined[2 * dim:] = h
        # Fused LSTM gates.
        gates = np.matmul(self._combined, self._w_cell, out=self._gates)
        np.add(gates, self._b_cell, out=gates)
        d = self._hidden
        if reuse:
            h_next, c_next = self._states[self._flip]
            self._flip ^= 1
        else:
            h_next, c_next = np.empty(d), np.empty(d)
        tmp = self._gate_tmp
        # i, f, g, o exactly as LSTMCell: sigmoid/sigmoid/tanh/sigmoid.
        i = 1.0 / (1.0 + np.exp(-gates[0:d]))
        f = 1.0 / (1.0 + np.exp(-gates[d:2 * d]))
        g = np.tanh(gates[2 * d:3 * d])
        o = 1.0 / (1.0 + np.exp(-gates[3 * d:4 * d]))
        # c_next = f * c + i * g
        np.multiply(f, c, out=c_next)
        np.multiply(i, g, out=tmp)
        np.add(c_next, tmp, out=c_next)
        # h_next = o * tanh(c_next)
        np.tanh(c_next, out=tmp)
        np.multiply(o, tmp, out=h_next)
        return h_next, (h_next, c_next)

    def pointer_scores(self, kind: str, h: np.ndarray) -> np.ndarray:
        """Additive pointer scores with the memory projection cached."""
        pointer = {
            "C": self.decoder.column_pointer,
            "T": self.decoder.table_pointer,
            "V": self.decoder.value_pointer,
        }[kind]
        if kind == "V" and self.encoded.values is None:
            from repro.errors import ModelError

            raise ModelError("value pointer invoked without candidates")
        q = np.matmul(h, pointer.query_proj.weight.data)
        q += pointer.query_proj.bias.data
        combined = np.tanh(self._memory(kind) + q)
        n = combined.shape[0]
        return np.matmul(combined, pointer.scorer.weight.data).reshape(n)

    def pointer_log_probs(self, kind: str, h: np.ndarray) -> np.ndarray:
        return self._log_softmax(self.pointer_scores(kind, h))

    def sketch_log_probs(self, h: np.ndarray, mask_entry) -> np.ndarray:
        _mask, penalty = mask_entry
        logits = np.matmul(h, self._w_sketch, out=self._sketch)
        np.add(logits, self._b_sketch, out=logits)
        return self._log_softmax(logits + penalty)

    @staticmethod
    def _log_softmax(x: np.ndarray) -> np.ndarray:
        # Same formula as repro.nn.functional.log_softmax.
        shifted = x - x.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        return shifted - log_z
