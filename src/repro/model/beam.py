"""Beam-search decoding over SemQL 2.0 actions.

The paper's greedy decoder commits to one action per step; beam search
keeps the ``beam_size`` highest-scoring partial action sequences instead
and returns the best *complete* one.  IRNet (ValueNet's base) decodes with
a beam — this module provides the same extension for our decoder, subject
to the identical grammar constraints as the greedy path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.model.decoder import DecoderStep, ValueNetDecoder
from repro.model.encoder import EncodedExample
from repro.nn.functional import masked_log_softmax, log_softmax
from repro.nn.tensor import Tensor
from repro.semql.actions import ActionType, GRAMMAR_ACTION_LIST
from repro.semql.tree import GrammarState


@dataclass
class _Hypothesis:
    """One partial decode: accumulated score plus decoder state."""

    score: float
    state: tuple[Tensor, Tensor]
    prev: Tensor
    grammar: GrammarState
    steps: list[DecoderStep] = field(default_factory=list)
    last_column: int | None = None

    @property
    def finished(self) -> bool:
        return self.grammar.finished

    def normalized_score(self) -> float:
        # Length normalization keeps short queries from always winning.
        return self.score / max(len(self.steps), 1) ** 0.7


def beam_decode(
    decoder: ValueNetDecoder,
    encoded: EncodedExample,
    *,
    beam_size: int = 4,
    column_to_table: list[int | None] | None = None,
) -> list[DecoderStep]:
    """Grammar-constrained beam search; returns the best complete steps.

    Raises:
        ModelError: if no hypothesis completes within the step budget.
    """
    if beam_size < 1:
        raise ValueError(f"beam_size must be positive, got {beam_size}")
    decoder.eval()

    initial = _Hypothesis(
        score=0.0,
        state=decoder._initial_state(encoded),
        prev=decoder.start_embedding,
        grammar=GrammarState(),
    )
    beam: list[_Hypothesis] = [initial]
    completed: list[_Hypothesis] = []

    for _step in range(decoder.config.max_decode_steps):
        candidates: list[_Hypothesis] = []
        for hypothesis in beam:
            if hypothesis.finished:
                completed.append(hypothesis)
                continue
            candidates.extend(
                _expand(decoder, encoded, hypothesis, beam_size, column_to_table)
            )
        if not candidates:
            break
        candidates.sort(key=lambda h: h.score, reverse=True)
        beam = candidates[:beam_size]
        if len(completed) >= beam_size:
            break

    completed.extend(h for h in beam if h.finished)
    if not completed:
        raise ModelError("beam search found no complete hypothesis")
    best = max(completed, key=lambda h: h.normalized_score())
    return best.steps


def _expand(
    decoder: ValueNetDecoder,
    encoded: EncodedExample,
    hypothesis: _Hypothesis,
    beam_size: int,
    column_to_table: list[int | None] | None = None,
) -> list[_Hypothesis]:
    h, state = decoder._step(hypothesis.prev, hypothesis.state, encoded)
    grammar = hypothesis.grammar
    expected = grammar.expected_type()

    expansions: list[_Hypothesis] = []
    if expected in (ActionType.C, ActionType.T, ActionType.V):
        kind = expected.value
        if expected is ActionType.V and encoded.num_values == 0:
            return []
        logits = decoder._head_logits(kind, h, encoded)
        log_probs = log_softmax(logits).data
        if (
            expected is ActionType.T
            and column_to_table is not None
            and hypothesis.last_column is not None
            and column_to_table[hypothesis.last_column] is not None
        ):
            forced = column_to_table[hypothesis.last_column]
            constrained = np.full_like(log_probs, -1e30)
            constrained[forced] = log_probs[forced]
            log_probs = constrained
        # Stable descending sort: ties resolve to the lowest index, the
        # same choice np.argmax makes in the greedy decoder (a reversed
        # plain argsort would pick the highest index instead, making
        # beam_size=1 diverge from greedy on exact ties).
        for index in np.argsort(-log_probs, kind="stable")[:beam_size]:
            if log_probs[index] < -1e20:
                continue
            fork = grammar.clone()
            fork.advance_pointer(expected)
            next_column = hypothesis.last_column
            if expected is ActionType.C:
                next_column = int(index)
            elif expected is ActionType.T:
                next_column = None
            expansions.append(
                _Hypothesis(
                    score=hypothesis.score + float(log_probs[index]),
                    state=state,
                    prev=decoder._feed_embedding(kind, int(index), encoded),
                    grammar=fork,
                    steps=hypothesis.steps + [DecoderStep(kind, int(index))],
                    last_column=next_column,
                )
            )
        return expansions

    logits = decoder.sketch_head(h)
    remaining = decoder.config.max_decode_steps - len(hypothesis.steps)
    # Mirror the greedy decoder's budget policy exactly, including its
    # hard cap on recursive expansions — beam_size=1 must reproduce
    # greedy decoding step for step.
    recursive_so_far = sum(
        1 for s in hypothesis.steps
        if s.kind == "grammar" and (
            ActionType.FILTER in GRAMMAR_ACTION_LIST[s.target].children
            or ActionType.R in GRAMMAR_ACTION_LIST[s.target].children
        )
    )
    mask = decoder._grammar_mask(
        expected,
        encoded.num_values,
        conserve_budget=(
            remaining < 6 * grammar.pending + 12 or recursive_so_far >= 8
        ),
        in_subquery=grammar.expected_in_subquery(),
        in_compound=grammar.expected_in_compound_branch(),
        required_arity=grammar.required_select_arity(),
    )
    log_probs = masked_log_softmax(logits, mask).data
    for action_id in np.argsort(-log_probs, kind="stable")[:beam_size]:
        if math.isinf(log_probs[action_id]) or log_probs[action_id] < -1e20:
            continue
        fork = grammar.clone()
        fork.advance_grammar(GRAMMAR_ACTION_LIST[int(action_id)])
        expansions.append(
            _Hypothesis(
                score=hypothesis.score + float(log_probs[action_id]),
                state=state,
                prev=decoder._feed_embedding("grammar", int(action_id), encoded),
                grammar=fork,
                steps=hypothesis.steps + [DecoderStep("grammar", int(action_id))],
                last_column=hypothesis.last_column,
            )
        )
    return expansions
