"""Beam-search decoding over SemQL 2.0 actions.

The paper's greedy decoder commits to one action per step; beam search
keeps the ``beam_size`` highest-scoring partial action sequences instead
and returns the best *complete* one.  IRNet (ValueNet's base) decodes with
a beam — this module provides the same extension for our decoder, subject
to the identical grammar constraints as the greedy path.

Like :meth:`ValueNetDecoder.decode`, the search runs against the decoder
ops interface: pass a per-request
:class:`~repro.model.stepcache.StepCache` to reuse memoized pointer
memory projections, feed embeddings, and grammar masks across all
hypotheses of the request — predictions are identical either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.model.decoder import DecoderStep, ValueNetDecoder
from repro.model.encoder import EncodedExample
from repro.model.stepcache import RECURSIVE_ACTION, ReferenceOps, StepCache
from repro.semql.actions import ActionType, GRAMMAR_ACTION_LIST
from repro.semql.tree import GrammarState


@dataclass
class _Hypothesis:
    """One partial decode: accumulated score plus decoder state.

    ``state``/``prev`` are Tensors on the reference path and raw numpy
    arrays on the cached path; the search never looks inside them.
    ``recursive`` counts emitted recursive productions incrementally so
    the budget policy does not rescan ``steps`` every expansion.
    """

    score: float
    state: tuple
    prev: object
    grammar: GrammarState
    steps: list[DecoderStep] = field(default_factory=list)
    last_column: int | None = None
    recursive: int = 0

    @property
    def finished(self) -> bool:
        return self.grammar.finished

    def normalized_score(self) -> float:
        # Length normalization keeps short queries from always winning.
        return self.score / max(len(self.steps), 1) ** 0.7


def beam_decode(
    decoder: ValueNetDecoder,
    encoded: EncodedExample,
    *,
    beam_size: int = 4,
    column_to_table: list[int | None] | None = None,
    cache: StepCache | None = None,
) -> list[DecoderStep]:
    """Grammar-constrained beam search; returns the best complete steps.

    Raises:
        ModelError: if no hypothesis completes within the step budget.
    """
    if beam_size < 1:
        raise ValueError(f"beam_size must be positive, got {beam_size}")
    decoder.eval()
    ops = cache if cache is not None else ReferenceOps(decoder, encoded)

    initial = _Hypothesis(
        score=0.0,
        state=ops.initial_state(),
        prev=ops.start(),
        grammar=GrammarState(),
    )
    beam: list[_Hypothesis] = [initial]
    completed: list[_Hypothesis] = []
    max_steps = decoder.config.max_decode_steps

    for _step in range(max_steps):
        candidates: list[_Hypothesis] = []
        for hypothesis in beam:
            if hypothesis.finished:
                completed.append(hypothesis)
                continue
            candidates.extend(
                _expand(ops, hypothesis, beam_size, column_to_table, max_steps)
            )
        if not candidates:
            break
        candidates.sort(key=lambda h: h.score, reverse=True)
        beam = candidates[:beam_size]
        if len(completed) >= beam_size:
            break

    completed.extend(h for h in beam if h.finished)
    if not completed:
        raise ModelError("beam search found no complete hypothesis")
    best = max(completed, key=lambda h: h.normalized_score())
    return best.steps


def _expand(
    ops,
    hypothesis: _Hypothesis,
    beam_size: int,
    column_to_table: list[int | None] | None,
    max_steps: int,
) -> list[_Hypothesis]:
    # Surviving hypotheses keep references to the returned state, so the
    # cached path must allocate fresh state arrays here (``reuse=False``).
    h, state = ops.step(hypothesis.prev, hypothesis.state)
    grammar = hypothesis.grammar
    expected = grammar.expected_type()

    expansions: list[_Hypothesis] = []
    if expected in (ActionType.C, ActionType.T, ActionType.V):
        kind = expected.value
        if expected is ActionType.V and ops.encoded.num_values == 0:
            return []
        log_probs = ops.pointer_log_probs(kind, h)
        if (
            expected is ActionType.T
            and column_to_table is not None
            and hypothesis.last_column is not None
            and column_to_table[hypothesis.last_column] is not None
        ):
            forced = column_to_table[hypothesis.last_column]
            constrained = np.full_like(log_probs, -1e30)
            constrained[forced] = log_probs[forced]
            log_probs = constrained
        # Stable descending sort: ties resolve to the lowest index, the
        # same choice np.argmax makes in the greedy decoder (a reversed
        # plain argsort would pick the highest index instead, making
        # beam_size=1 diverge from greedy on exact ties).
        for index in np.argsort(-log_probs, kind="stable")[:beam_size]:
            if log_probs[index] < -1e20:
                continue
            fork = grammar.clone()
            fork.advance_pointer(expected)
            next_column = hypothesis.last_column
            if expected is ActionType.C:
                next_column = int(index)
            elif expected is ActionType.T:
                next_column = None
            expansions.append(
                _Hypothesis(
                    score=hypothesis.score + float(log_probs[index]),
                    state=state,
                    prev=ops.feed(kind, int(index)),
                    grammar=fork,
                    steps=hypothesis.steps + [DecoderStep(kind, int(index))],
                    last_column=next_column,
                    recursive=hypothesis.recursive,
                )
            )
        return expansions

    remaining = max_steps - len(hypothesis.steps)
    # Mirror the greedy decoder's budget policy exactly, including its
    # hard cap on recursive expansions — beam_size=1 must reproduce
    # greedy decoding step for step.
    mask = ops.grammar_mask(
        expected,
        conserve_budget=(
            remaining < 6 * grammar.pending + 12 or hypothesis.recursive >= 8
        ),
        in_subquery=grammar.expected_in_subquery(),
        in_compound=grammar.expected_in_compound_branch(),
        required_arity=grammar.required_select_arity(),
    )
    log_probs = ops.sketch_log_probs(h, mask)
    for action_id in np.argsort(-log_probs, kind="stable")[:beam_size]:
        if math.isinf(log_probs[action_id]) or log_probs[action_id] < -1e20:
            continue
        fork = grammar.clone()
        fork.advance_grammar(GRAMMAR_ACTION_LIST[int(action_id)])
        expansions.append(
            _Hypothesis(
                score=hypothesis.score + float(log_probs[action_id]),
                state=state,
                prev=ops.feed("grammar", int(action_id)),
                grammar=fork,
                steps=hypothesis.steps + [DecoderStep("grammar", int(action_id))],
                last_column=hypothesis.last_column,
                recursive=hypothesis.recursive
                + (1 if RECURSIVE_ACTION[int(action_id)] else 0),
            )
        )
    return expansions
