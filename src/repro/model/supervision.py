"""Conversion between SemQL trees and decoder step sequences.

Training needs gold trees flattened into :class:`DecoderStep` targets
(grammar-action ids and pointer indices); inference needs the emitted
steps rebuilt into a SemQL tree with resolved payloads.
"""

from __future__ import annotations

from repro.candidates.types import ValueCandidate
from repro.errors import ModelError
from repro.index.inverted import normalize_value
from repro.model.decoder import DecoderStep
from repro.schema.model import Schema
from repro.semql.actions import (
    ActionType,
    GRAMMAR_ACTION_INDEX,
    GRAMMAR_ACTION_LIST,
    GrammarAction,
)
from repro.semql.tree import SemQLNode, actions_to_tree, tree_to_actions


def match_candidate(
    value: object, candidates: list[ValueCandidate]
) -> int | None:
    """Index of the candidate matching a gold value (normalized), if any."""
    key = normalize_value(value)
    for i, candidate in enumerate(candidates):
        if candidate.normalized == key:
            return i
    return None


def tree_to_steps(
    tree: SemQLNode,
    schema: Schema,
    candidates: list[ValueCandidate],
) -> list[DecoderStep] | None:
    """Flatten a gold tree into decoder targets.

    Returns ``None`` when some gold value has no matching candidate — the
    sample cannot supervise the value pointer (paper Section V-E: every
    non-extracted value is a lost sample for ValueNet).
    """
    steps: list[DecoderStep] = []
    for node in tree_to_actions(tree):
        if node.action_type is ActionType.C:
            assert node.column is not None
            steps.append(DecoderStep("C", schema.column_index(node.column)))
        elif node.action_type is ActionType.T:
            assert node.table is not None
            steps.append(DecoderStep("T", schema.table_index(node.table)))
        elif node.action_type is ActionType.V:
            index = match_candidate(node.value, candidates)
            if index is None:
                return None
            steps.append(DecoderStep("V", index))
        else:
            assert node.production is not None
            action = GrammarAction(node.action_type, node.production)
            steps.append(DecoderStep("grammar", GRAMMAR_ACTION_INDEX[action]))
    return steps


def steps_to_tree(
    steps: list[DecoderStep],
    schema: Schema,
    candidates: list[ValueCandidate],
) -> SemQLNode:
    """Rebuild a SemQL tree from emitted steps, resolving payloads."""
    columns = schema.all_columns()
    nodes: list[SemQLNode] = []
    for step in steps:
        if step.kind == "grammar":
            action = GRAMMAR_ACTION_LIST[step.target]
            nodes.append(SemQLNode(action.action_type, action.production))
        elif step.kind == "C":
            if not 0 <= step.target < len(columns):
                raise ModelError(f"column index {step.target} out of range")
            nodes.append(SemQLNode(ActionType.C, column=columns[step.target]))
        elif step.kind == "T":
            if not 0 <= step.target < len(schema.tables):
                raise ModelError(f"table index {step.target} out of range")
            nodes.append(
                SemQLNode(ActionType.T, table=schema.tables[step.target].name)
            )
        elif step.kind == "V":
            if not 0 <= step.target < len(candidates):
                raise ModelError(f"value index {step.target} out of range")
            nodes.append(
                SemQLNode(ActionType.V, value=candidates[step.target].value)
            )
        else:
            raise ModelError(f"unknown step kind {step.kind!r}")
    return actions_to_tree(nodes)
