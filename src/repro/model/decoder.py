"""The ValueNet decoder (paper Section III-B2).

An LSTM emits SemQL 2.0 actions in pre-order under the grammar's dynamic
legal-action constraint; pointer networks select columns, tables and value
candidates.  At each step the decoder attends over the question encodings
(bilinear attention), consumes the embedding of the previously emitted
action, and routes its hidden state to the head the grammar expects:

* grammar head — masked softmax over the global production vocabulary,
* column / table / value pointer networks — softmax over item encodings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ModelConfig
from repro.errors import ModelError
from repro.model.encoder import EncodedExample
from repro.model.stepcache import RECURSIVE_ACTION, ReferenceOps, StepCache
from repro.nn.attention import BilinearAttention, PointerNetwork
from repro.nn.functional import attention_pool, cross_entropy
from repro.nn.layers import Dropout, Embedding, Linear, Module
from repro.nn.rnn import LSTMCell
from repro.nn.tensor import Tensor, concat
from repro.semql.actions import (
    ActionType,
    GRAMMAR_ACTION_LIST,
    GrammarAction,
    NUM_GRAMMAR_ACTIONS,
    actions_for_type,
)
from repro.semql.tree import GrammarState


@dataclass(frozen=True)
class DecoderStep:
    """One supervised decoding step.

    ``kind`` is ``grammar`` / ``C`` / ``T`` / ``V``; ``target`` is the
    global grammar-action id or the pointer index, respectively.
    """

    kind: str
    target: int


class ValueNetDecoder(Module):
    """Grammar-constrained LSTM decoder with pointer networks."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        dim = config.dim
        hidden = config.decoder_hidden
        self.config = config

        # "decoder" parameter group
        self.action_embedding = Embedding(NUM_GRAMMAR_ACTIONS, dim, rng)
        self.start_embedding = Tensor(
            rng.normal(0.0, 0.1, size=dim), requires_grad=True
        )
        self.cell = LSTMCell(2 * dim, hidden, rng)
        self.sketch_head = Linear(hidden, NUM_GRAMMAR_ACTIONS, rng)
        self.dropout = Dropout(config.dropout, rng)

        # "connection" parameter group: everything touching encoder output
        self.context_attention = BilinearAttention(hidden, dim, rng)
        self.init_projection = Linear(dim, hidden, rng)
        self.column_pointer = PointerNetwork(hidden, dim, config.pointer_hidden, rng)
        self.table_pointer = PointerNetwork(hidden, dim, config.pointer_hidden, rng)
        self.value_pointer = PointerNetwork(hidden, dim, config.pointer_hidden, rng)
        self.column_feed = Linear(dim, dim, rng)
        self.table_feed = Linear(dim, dim, rng)
        self.value_feed = Linear(dim, dim, rng)

    # ------------------------------------------------------- param groups

    def connection_modules(self) -> list[Module]:
        """Sub-modules in the paper's "connection parameters" group."""
        return [
            self.context_attention, self.init_projection,
            self.column_pointer, self.table_pointer, self.value_pointer,
            self.column_feed, self.table_feed, self.value_feed,
        ]

    def decoder_parameters(self) -> list[Tensor]:
        connection_ids = {
            id(p) for module in self.connection_modules() for p in module.parameters()
        }
        return [p for p in self.parameters() if id(p) not in connection_ids]

    def connection_parameters(self) -> list[Tensor]:
        return [p for module in self.connection_modules() for p in module.parameters()]

    # ----------------------------------------------------------- plumbing

    def _initial_state(self, encoded: EncodedExample) -> tuple[Tensor, Tensor]:
        h0 = self.init_projection(encoded.summary).tanh()
        c0 = Tensor(np.zeros(self.config.decoder_hidden))
        return h0, c0

    def _step(
        self,
        prev_embedding: Tensor,
        state: tuple[Tensor, Tensor],
        encoded: EncodedExample,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        scores = self.context_attention(state[0], encoded.question)
        context = attention_pool(scores, encoded.question)
        x = concat([prev_embedding, context], axis=-1)
        h, c = self.cell(x, state)
        return self.dropout(h), (h, c)

    def _grammar_mask(
        self,
        expected: ActionType,
        num_values: int,
        *,
        conserve_budget: bool = False,
        in_subquery: bool = False,
        in_compound: bool = False,
        required_arity: int | None = None,
    ) -> np.ndarray:
        """Legal-production mask for the expected non-terminal.

        ``conserve_budget`` additionally disables recursive productions
        (Filter and/or, sub-query expansions) so a decode nearing the step
        cap is forced towards termination instead of aborting.
        ``in_subquery`` restricts SELECT to one projection — comparison
        operands must be scalar sub-queries.  ``required_arity`` pins the
        SELECT projection count (right branch of a compound query).
        """
        mask = np.zeros(NUM_GRAMMAR_ACTIONS, dtype=bool)
        for action_id in actions_for_type(expected):
            action = GRAMMAR_ACTION_LIST[action_id]
            if num_values == 0 and (
                ActionType.V in action.children
                # Superlative always expands to a V (its LIMIT), so it is
                # equally unusable without candidates.
                or ActionType.SUPERLATIVE in action.children
            ):
                continue  # unusable production: nothing to point at
            if conserve_budget and (
                ActionType.FILTER in action.children
                or ActionType.R in action.children
            ):
                continue
            if (
                in_subquery
                and expected is ActionType.SELECT
                and len(action.children) > 1
            ):
                continue  # scalar sub-query: exactly one projection
            if (
                required_arity is not None
                and expected is ActionType.SELECT
                and len(action.children) != required_arity
            ):
                continue  # compound branches must project equally
            if (
                in_compound
                and expected is ActionType.R
                and (
                    ActionType.ORDER in action.children
                    or ActionType.SUPERLATIVE in action.children
                )
            ):
                continue  # SQLite: no ORDER BY inside compound branches
            mask[action_id] = True
        if not mask.any():
            # Every production was excluded; fall back to the unconstrained
            # production set so decoding can continue (the sample may simply
            # fail at execution).
            for action_id in actions_for_type(expected):
                mask[action_id] = True
        return mask

    def _head_logits(
        self, kind: str, h: Tensor, encoded: EncodedExample
    ) -> Tensor:
        if kind == "C":
            return self.column_pointer(h, encoded.columns)
        if kind == "T":
            return self.table_pointer(h, encoded.tables)
        if kind == "V":
            if encoded.values is None:
                raise ModelError("value pointer invoked without candidates")
            return self.value_pointer(h, encoded.values)
        raise ModelError(f"unknown pointer kind {kind!r}")

    def _feed_embedding(
        self, kind: str, index: int, encoded: EncodedExample
    ) -> Tensor:
        if kind == "grammar":
            return self.action_embedding([index]).reshape(self.config.dim)
        if kind == "C":
            return self.column_feed(encoded.columns[index])
        if kind == "T":
            return self.table_feed(encoded.tables[index])
        assert encoded.values is not None
        return self.value_feed(encoded.values[index])

    # ------------------------------------------------------------ training

    def loss(self, encoded: EncodedExample, steps: list[DecoderStep]) -> Tensor:
        """Teacher-forced negative log-likelihood of the gold action
        sequence, grammar-masked exactly as at inference time."""
        state = self._initial_state(encoded)
        prev = self.start_embedding
        grammar = GrammarState()
        total: Tensor | None = None

        for step in steps:
            h, state = self._step(prev, state, encoded)
            expected = grammar.expected_type()
            if step.kind == "grammar":
                logits = self.sketch_head(h)
                mask = self._grammar_mask(expected, encoded.num_values)
                step_loss = cross_entropy(logits, step.target, mask)
                grammar.advance_grammar(GRAMMAR_ACTION_LIST[step.target])
            else:
                logits = self._head_logits(step.kind, h, encoded)
                step_loss = cross_entropy(logits, step.target)
                grammar.advance_pointer(ActionType(step.kind))
            total = step_loss if total is None else total + step_loss
            prev = self._feed_embedding(step.kind, step.target, encoded)

        if total is None:
            raise ModelError("empty decoder target sequence")
        if not grammar.finished:
            raise ModelError("gold action sequence does not complete the grammar")
        return total

    # ----------------------------------------------------------- inference

    def decode(
        self,
        encoded: EncodedExample,
        *,
        column_to_table: list[int | None] | None = None,
        cache: "StepCache | None" = None,
    ) -> list[DecoderStep]:
        """Greedy grammar-constrained decoding; returns the emitted steps.

        Args:
            encoded: encoder output.
            column_to_table: optional mapping from column index to owning
                table index (None for the ``*`` column).  When given, the
                T pointer that follows a C pointer is constrained to the
                chosen column's table — every gold tree satisfies this, so
                the constraint only removes inconsistent predictions.
            cache: optional per-request :class:`StepCache`; routes the hot
                loop through the memoized raw-numpy fast path.  Predictions
                are identical with or without it.
        """
        self.eval()
        ops = cache if cache is not None else ReferenceOps(self, encoded)
        state = ops.initial_state()
        prev = ops.start()
        grammar = GrammarState()
        steps: list[DecoderStep] = []
        last_column: int | None = None
        # Recursive-production count, maintained incrementally (the budget
        # policy below caps it; recomputing it per step was O(steps^2)).
        recursive_so_far = 0

        while not grammar.finished and len(steps) < self.config.max_decode_steps:
            # Greedy decoding is single-threaded through one state chain,
            # so the step may ping-pong arena buffers (``reuse=True``).
            h, state = ops.step(prev, state, reuse=True)
            expected = grammar.expected_type()
            if expected in (ActionType.C, ActionType.T, ActionType.V):
                kind = expected.value
                if expected is ActionType.V and encoded.num_values == 0:
                    raise ModelError("grammar requires a value but no candidates exist")
                scores = ops.pointer_scores(kind, h)
                if (
                    expected is ActionType.T
                    and column_to_table is not None
                    and last_column is not None
                    and column_to_table[last_column] is not None
                ):
                    forced = column_to_table[last_column]
                    masked = np.full_like(scores, -1e30)
                    masked[forced] = scores[forced]
                    scores = masked
                index = int(np.argmax(scores))
                if expected is ActionType.C:
                    last_column = index
                elif expected is ActionType.T:
                    last_column = None
                steps.append(DecoderStep(kind, index))
                grammar.advance_pointer(expected)
                prev = ops.feed(kind, index)
            else:
                # A pending non-terminal costs up to ~6 further steps
                # (Filter -> A -> C, T plus a value/sub-query); once the
                # remaining budget cannot cover that, stop recursing.  A
                # hard cap on recursive expansions (no real query nests six
                # conjunctions or sub-queries) backstops the estimate.
                remaining = self.config.max_decode_steps - len(steps)
                mask = ops.grammar_mask(
                    expected,
                    conserve_budget=(
                        remaining < 6 * grammar.pending + 12
                        or recursive_so_far >= 8
                    ),
                    in_subquery=grammar.expected_in_subquery(),
                    in_compound=grammar.expected_in_compound_branch(),
                    required_arity=grammar.required_select_arity(),
                )
                log_probs = ops.sketch_log_probs(h, mask)
                action_id = int(np.argmax(log_probs))
                steps.append(DecoderStep("grammar", action_id))
                grammar.advance_grammar(GRAMMAR_ACTION_LIST[action_id])
                if RECURSIVE_ACTION[action_id]:
                    recursive_so_far += 1
                prev = ops.feed("grammar", action_id)

        if not grammar.finished:
            raise ModelError(
                f"decoding exceeded {self.config.max_decode_steps} steps"
            )
        return steps


def grammar_action_id(action: GrammarAction) -> int:
    """Global id of a grammar action (convenience for tests)."""
    from repro.semql.actions import GRAMMAR_ACTION_INDEX

    return GRAMMAR_ACTION_INDEX[action]
