"""ValueNet neural model: featurization, encoder, decoder, training."""

from repro.model.beam import beam_decode
from repro.model.decoder import DecoderStep, ValueNetDecoder
from repro.model.encoder import EncodedExample, ValueNetEncoder
from repro.model.featurize import (
    EncoderInput,
    ItemSpan,
    SchemaFeatureCache,
    SchemaFeatures,
    build_vocabulary,
    featurize,
)
from repro.model.supervision import match_candidate, steps_to_tree, tree_to_steps
from repro.model.training import (
    EpochStats,
    Trainer,
    TrainingHistory,
    TrainSample,
    build_preprocessors,
    prepare_samples,
)
from repro.model.valuenet import ValueNetModel

__all__ = [
    "DecoderStep",
    "beam_decode",
    "EncodedExample",
    "EncoderInput",
    "EpochStats",
    "ItemSpan",
    "SchemaFeatureCache",
    "SchemaFeatures",
    "TrainSample",
    "Trainer",
    "TrainingHistory",
    "ValueNetDecoder",
    "ValueNetEncoder",
    "ValueNetModel",
    "build_preprocessors",
    "build_vocabulary",
    "featurize",
    "match_candidate",
    "prepare_samples",
    "steps_to_tree",
    "tree_to_steps",
]
