"""The ValueNet encoder (paper Sections III-B1 and IV-B4).

A transformer runs over the flat featurized sequence (question ⊕ columns ⊕
tables ⊕ value candidates with their locations); each input piece embeds
its WordPiece id plus segment, hint and column-type features and a
sinusoidal position.  Item encodings are then produced by summarizing each
item's piece span with a BiLSTM (the paper: "bi-directional LSTM networks
to summarize multi-token columns/tables/values").
"""

from __future__ import annotations

import numpy as np

from repro.config import ModelConfig
from repro.model.featurize import (
    EncoderInput,
    ItemSpan,
    NUM_COLUMN_TYPES,
    NUM_HINTS,
    NUM_SEGMENTS,
)
from repro.nn.layers import Embedding, Module
from repro.nn.rnn import BiLSTMSummarizer
from repro.nn.tensor import Tensor, stack
from repro.nn.transformer import TransformerEncoder, sinusoidal_positions


class EncodedExample:
    """Encoder output: per-item encodings ready for the decoder.

    Attributes:
        question: (n_tokens, dim) question-token encodings.
        columns: (n_columns, dim) column encodings ('*' first).
        tables: (n_tables, dim) table encodings.
        values: (n_candidates, dim) value-candidate encodings, or None
            when the candidate list is empty.
        summary: (dim,) [CLS] encoding used to initialize the decoder.
    """

    def __init__(
        self,
        question: Tensor,
        columns: Tensor,
        tables: Tensor,
        values: Tensor | None,
        summary: Tensor,
    ):
        self.question = question
        self.columns = columns
        self.tables = tables
        self.values = values
        self.summary = summary

    @property
    def num_values(self) -> int:
        return 0 if self.values is None else self.values.shape[0]


class ValueNetEncoder(Module):
    """Transformer encoder + BiLSTM span summarization."""

    def __init__(self, vocab_size: int, config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        dim = config.dim
        self.config = config
        self.piece_embedding = Embedding(vocab_size, dim, rng)
        self.segment_embedding = Embedding(NUM_SEGMENTS, dim, rng)
        self.hint_embedding = Embedding(NUM_HINTS, dim, rng)
        self.type_embedding = Embedding(NUM_COLUMN_TYPES, dim, rng)
        self.transformer = TransformerEncoder(
            dim,
            config.num_layers,
            config.num_heads,
            config.ff_dim,
            rng,
            dropout_rate=config.dropout,
        )
        self.summarizer = BiLSTMSummarizer(dim, config.summary_hidden, dim, rng)
        # Schema hints are re-injected at the *output* of the encoder: the
        # pointer networks depend heavily on the linking features, and a
        # residual hint embedding keeps them undiluted by the transformer.
        self.output_column_hint = Embedding(16, dim, rng)  # column x table hints
        self.output_table_hint = Embedding(4, dim, rng)
        self.output_value_located = Embedding(2, dim, rng)
        self._position_cache: dict[int, np.ndarray] = {}
        self._word_dropout_rng = np.random.default_rng(config.seed + 1)

    def _positions(self, length: int) -> np.ndarray:
        cached = self._position_cache.get(length)
        if cached is None:
            cached = sinusoidal_positions(length, self.config.dim)
            self._position_cache[length] = cached
        return cached

    def __call__(self, encoder_input: EncoderInput) -> EncodedExample:
        piece_ids = encoder_input.piece_ids
        if self.training and self.config.word_dropout > 0:
            # Word-level dropout: random pieces become [UNK] so the model
            # cannot rely purely on memorized surface forms — essential for
            # transfer to the unseen dev databases.
            unk = 1  # WordPieceVocab's fixed [UNK] id
            keep = self._word_dropout_rng.random(len(piece_ids))
            piece_ids = [
                pid if keep[i] >= self.config.word_dropout else unk
                for i, pid in enumerate(piece_ids)
            ]
        pieces = self.piece_embedding(piece_ids)
        segments = self.segment_embedding(encoder_input.segment_ids)
        hints = self.hint_embedding(encoder_input.hint_ids)
        types = self.type_embedding(encoder_input.type_ids)
        positions = Tensor(self._positions(encoder_input.length) * 0.1)
        embedded = pieces + segments + hints + types + positions

        contextual = self.transformer(embedded)

        question = self._summarize_spans(contextual, encoder_input.question_spans)
        columns = self._summarize_spans(contextual, encoder_input.column_spans)
        tables = self._summarize_spans(contextual, encoder_input.table_spans)
        values = (
            self._summarize_spans(contextual, encoder_input.value_spans)
            if encoder_input.value_spans
            else None
        )
        if encoder_input.column_hints:
            columns = columns + self.output_column_hint(encoder_input.column_hints)
        if encoder_input.table_hints:
            tables = tables + self.output_table_hint(encoder_input.table_hints)
        if values is not None and encoder_input.value_located:
            values = values + self.output_value_located(encoder_input.value_located)
        summary = contextual[0]
        return EncodedExample(question, columns, tables, values, summary)

    def _summarize_spans(self, contextual: Tensor, spans: list[ItemSpan]) -> Tensor:
        summaries = [
            self.summarizer(contextual[span.start:span.end]) for span in spans
        ]
        return stack(summaries, axis=0)

    # ------------------------------------------------------- batched path

    def encode_batch(self, inputs: list[EncoderInput]) -> list[EncodedExample]:
        """Encode a micro-batch with one padded transformer forward.

        Sequences are right-padded to the batch maximum and the attention
        is masked over padding, so every real position sees exactly the
        keys it would unbatched; item spans are then summarized in fused
        equal-length groups across the whole batch.  The result matches
        per-example :meth:`__call__` outputs to floating-point tolerance.

        Inference-only: word dropout is not applied (run under ``eval()``
        — the serving path does).
        """
        if not inputs:
            return []
        if len(inputs) == 1:
            return [self(inputs[0])]

        batch = len(inputs)
        max_len = max(inp.length for inp in inputs)
        piece = np.zeros((batch, max_len), dtype=np.int64)
        segment = np.zeros((batch, max_len), dtype=np.int64)
        hint = np.zeros((batch, max_len), dtype=np.int64)
        type_ = np.zeros((batch, max_len), dtype=np.int64)
        mask = np.zeros((batch, max_len), dtype=bool)
        for i, inp in enumerate(inputs):
            n = inp.length
            piece[i, :n] = inp.piece_ids
            segment[i, :n] = inp.segment_ids
            hint[i, :n] = inp.hint_ids
            type_[i, :n] = inp.type_ids
            mask[i, :n] = True

        embedded = (
            self.piece_embedding(piece)
            + self.segment_embedding(segment)
            + self.hint_embedding(hint)
            + self.type_embedding(type_)
            + Tensor(self._positions(max_len) * 0.1)
        )
        contextual = self.transformer(embedded, mask=mask)

        # Summarize every item span of every example, grouped by span
        # length so each group is one fused pass through the BiLSTM.
        categories = ("question", "column", "table", "value")
        by_length: dict[int, list[tuple[int, str, int, int, int]]] = {}
        for i, inp in enumerate(inputs):
            for kind, spans in zip(categories, (
                inp.question_spans, inp.column_spans,
                inp.table_spans, inp.value_spans,
            )):
                for j, span in enumerate(spans):
                    by_length.setdefault(span.end - span.start, []).append(
                        (i, kind, j, span.start, span.end)
                    )
        summaries: dict[tuple[int, str, int], Tensor] = {}
        for group in by_length.values():
            rows = self.summarizer.summarize_spans(
                contextual, [(i, start, end) for i, _, _, start, end in group]
            )
            for row, (i, kind, j, _, _) in enumerate(group):
                summaries[(i, kind, j)] = rows[row]

        out: list[EncodedExample] = []
        for i, inp in enumerate(inputs):
            def gather(kind: str, count: int, example: int = i) -> Tensor | None:
                if count == 0:
                    return None
                return stack(
                    [summaries[(example, kind, j)] for j in range(count)], axis=0
                )

            question = gather("question", len(inp.question_spans))
            columns = gather("column", len(inp.column_spans))
            tables = gather("table", len(inp.table_spans))
            values = gather("value", len(inp.value_spans))
            if inp.column_hints:
                columns = columns + self.output_column_hint(inp.column_hints)
            if inp.table_hints:
                tables = tables + self.output_table_hint(inp.table_hints)
            if values is not None and inp.value_located:
                values = values + self.output_value_located(inp.value_located)
            out.append(EncodedExample(
                question, columns, tables, values, contextual[(i, 0)]
            ))
        return out
