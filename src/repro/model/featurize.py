"""Featurization: pre-processed questions -> encoder input sequences.

Following the paper's Fig. 8, the encoder consumes one flat sequence:

    [CLS] question pieces [SEP]
          column pieces (one group per column) ...
          table pieces (one group per table) ...
          [SEP] value pieces + location pieces [SEP] ...  (per candidate)

Every piece carries, besides its WordPiece id, a *segment* id (question /
column / table / value), a *hint* id (the question hint of its token or
the schema hint of its item — the paper's prior-knowledge features), and
for column pieces the column's logical type.  Span boundaries of each item
are recorded so the encoder can summarize them back into one vector per
question token / column / table / candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.candidates.types import ValueCandidate
from repro.concurrency import make_lock
from repro.preprocessing.hints import QuestionHint, SchemaHint
from repro.preprocessing.pipeline import PreprocessedQuestion
from repro.schema.model import ColumnType, Schema
from repro.text.tokenizer import split_identifier
from repro.text.wordpiece import WordPieceVocab

# Segment ids
SEG_QUESTION = 0
SEG_COLUMN = 1
SEG_TABLE = 2
SEG_VALUE = 3
NUM_SEGMENTS = 4

# Hint vocabulary: question hints occupy 0..5, schema hints 6..9, and a
# neutral id for separators.
NUM_QUESTION_HINTS = len(QuestionHint)
NUM_SCHEMA_HINTS = len(SchemaHint)
HINT_NEUTRAL = NUM_QUESTION_HINTS + NUM_SCHEMA_HINTS
NUM_HINTS = HINT_NEUTRAL + 1

NUM_COLUMN_TYPES = len(ColumnType) + 1  # +1 for "not a column"
_COLUMN_TYPE_IDS = {t: i + 1 for i, t in enumerate(ColumnType)}


@dataclass(frozen=True)
class ItemSpan:
    """Half-open piece-index range of one item in the flat sequence."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty span [{self.start}, {self.end})")


@dataclass
class EncoderInput:
    """The flat featurized sequence plus per-item span bookkeeping."""

    piece_ids: list[int] = field(default_factory=list)
    segment_ids: list[int] = field(default_factory=list)
    hint_ids: list[int] = field(default_factory=list)
    type_ids: list[int] = field(default_factory=list)
    question_spans: list[ItemSpan] = field(default_factory=list)
    column_spans: list[ItemSpan] = field(default_factory=list)
    table_spans: list[ItemSpan] = field(default_factory=list)
    value_spans: list[ItemSpan] = field(default_factory=list)
    # Per-item schema hints (SchemaHint values), re-injected at the encoder
    # output so the pointer networks see the linking feature undiluted.
    column_hints: list[int] = field(default_factory=list)
    table_hints: list[int] = field(default_factory=list)
    # Per-candidate flag: 1 when validation located the candidate in some
    # column (located candidates are far likelier to be real values).
    value_located: list[int] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.piece_ids)

    def _append(self, piece: int, segment: int, hint: int, type_id: int = 0) -> None:
        self.piece_ids.append(piece)
        self.segment_ids.append(segment)
        self.hint_ids.append(hint)
        self.type_ids.append(type_id)


def _schema_hint_id(hint: SchemaHint) -> int:
    return NUM_QUESTION_HINTS + hint.value


def _question_hint_id(hint: QuestionHint) -> int:
    return hint.value


@dataclass(frozen=True)
class SchemaFeatures:
    """WordPiece encodings of one schema's tokens, computed once.

    The piece ids of a column/table name depend only on the schema and the
    vocabulary — never on the question — so re-encoding them per request
    wastes the bulk of featurization time on schema-heavy databases.  Hint
    ids *do* depend on the question and stay per-request.

    The ``schema``/``vocab`` references pin the keyed objects alive so an
    ``id()``-based cache key can never alias a collected object.
    """

    schema: Schema
    vocab: WordPieceVocab
    column_pieces: tuple[tuple[int, ...], ...]  # aligned with all_columns()
    column_type_ids: tuple[int, ...]
    table_pieces: tuple[tuple[int, ...], ...]  # aligned with schema.tables

    @staticmethod
    def build(schema: Schema, vocab: WordPieceVocab) -> "SchemaFeatures":
        column_pieces = []
        column_type_ids = []
        for column in schema.all_columns():
            words = column.words or ["all"]
            column_pieces.append(tuple(
                piece for word in words for piece in vocab.encode_word(word)
            ))
            column_type_ids.append(
                0 if column.is_star() else _COLUMN_TYPE_IDS[column.column_type]
            )
        table_pieces = tuple(
            tuple(piece for word in table.words for piece in vocab.encode_word(word))
            for table in schema.tables
        )
        return SchemaFeatures(
            schema=schema,
            vocab=vocab,
            column_pieces=tuple(column_pieces),
            column_type_ids=tuple(column_type_ids),
            table_pieces=table_pieces,
        )


class SchemaFeatureCache:
    """Thread-safe per-(schema, vocab) cache of :class:`SchemaFeatures`."""

    def __init__(self) -> None:
        self._entries: dict[tuple[int, int], SchemaFeatures] = {}  # guarded by: _lock
        self._lock = make_lock("SchemaFeatureCache._lock")

    def get(self, schema: Schema, vocab: WordPieceVocab) -> SchemaFeatures:
        key = (id(schema), id(vocab))
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None and entry.schema is schema and entry.vocab is vocab:
            return entry
        entry = SchemaFeatures.build(schema, vocab)
        with self._lock:
            self._entries[key] = entry
        return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def candidate_words(candidate: ValueCandidate) -> list[str]:
    """The words encoding a candidate: its value plus its first location.

    The location (table and column words) is the paper's key addition: the
    model attends not only to the value but to *where* it lives
    (Section IV-B4).
    """
    words = str(candidate.value).split() or [str(candidate.value)]
    if candidate.locations:
        location = candidate.locations[0]
        words = words + split_identifier(location.table) + split_identifier(location.column)
    return words


def featurize(
    pre: PreprocessedQuestion,
    schema: Schema,
    vocab: WordPieceVocab,
    *,
    cache: SchemaFeatureCache | None = None,
) -> EncoderInput:
    """Build the flat encoder input for one pre-processed question.

    When ``cache`` is given, the WordPiece encoding of schema tokens is
    taken from it (featurized once per database) instead of re-encoding
    every column/table name per request.
    """
    features = cache.get(schema, vocab) if cache is not None else None
    out = EncoderInput()
    out._append(vocab.cls_id, SEG_QUESTION, HINT_NEUTRAL)

    # Question tokens, one span per token.
    for hinted in pre.hinted_tokens:
        hint = _question_hint_id(hinted.hint)
        start = out.length
        for piece in vocab.encode_word(hinted.token.text):
            out._append(piece, SEG_QUESTION, hint)
        out.question_spans.append(ItemSpan(start, out.length))
    out._append(vocab.sep_id, SEG_QUESTION, HINT_NEUTRAL)

    # Columns, aligned with schema.all_columns() ('*' first).  The
    # re-injected column feature combines the column's own hint with its
    # owning table's hint (16 combinations): a partially-matched column of
    # an exactly-mentioned table ("name" in "names of cities" for
    # city.city_name) outranks the same partial match under an unmentioned
    # table (country.country_name).
    table_hint_by_name = {
        table.name.lower(): hint.value
        for table, hint in zip(schema.tables, pre.schema_hints.table_hints)
    }
    for index, (column, hint) in enumerate(
        zip(schema.all_columns(), pre.schema_hints.column_hints)
    ):
        owner_hint = (
            0 if column.is_star()
            else table_hint_by_name.get(column.table.lower(), 0)
        )
        out.column_hints.append(hint.value * 4 + owner_hint)
        hint_id = _schema_hint_id(hint)
        if features is not None:
            pieces = features.column_pieces[index]
            type_id = features.column_type_ids[index]
        else:
            type_id = 0 if column.is_star() else _COLUMN_TYPE_IDS[column.column_type]
            words = column.words or ["all"]
            pieces = [
                piece for word in words for piece in vocab.encode_word(word)
            ]
        start = out.length
        for piece in pieces:
            out._append(piece, SEG_COLUMN, hint_id, type_id)
        out.column_spans.append(ItemSpan(start, out.length))

    # Tables, aligned with schema.tables.
    for index, (table, hint) in enumerate(
        zip(schema.tables, pre.schema_hints.table_hints)
    ):
        out.table_hints.append(hint.value)
        hint_id = _schema_hint_id(hint)
        if features is not None:
            pieces = features.table_pieces[index]
        else:
            pieces = [
                piece for word in table.words for piece in vocab.encode_word(word)
            ]
        start = out.length
        for piece in pieces:
            out._append(piece, SEG_TABLE, hint_id)
        out.table_spans.append(ItemSpan(start, out.length))

    # Value candidates, each bracketed by separators (Fig. 8).
    for candidate in pre.candidates:
        out.value_located.append(1 if candidate.locations else 0)
        out._append(vocab.sep_id, SEG_VALUE, HINT_NEUTRAL)
        start = out.length
        for word in candidate_words(candidate):
            for piece in vocab.encode_word(word):
                out._append(piece, SEG_VALUE, HINT_NEUTRAL)
        out.value_spans.append(ItemSpan(start, out.length))
    if pre.candidates:
        out._append(vocab.sep_id, SEG_VALUE, HINT_NEUTRAL)
    return out


def build_vocabulary(
    questions: list[str],
    schemas: list[Schema],
    value_words: list[str],
    *,
    vocab_size: int = 2500,
) -> WordPieceVocab:
    """Train the WordPiece vocabulary over corpus text + schema identifiers.

    The paper reuses BERT's pre-trained vocabulary; offline we train our
    own on the training split (never on dev questions — dev words reach
    the model only through subword pieces).
    """
    from repro.text.tokenizer import tokenize_words

    corpus: list[str] = []
    for question in questions:
        corpus.extend(tokenize_words(question))
    for schema in schemas:
        for table in schema.tables:
            corpus.extend(table.words)
            for column in table.columns:
                corpus.extend(column.words)
    for word in value_words:
        corpus.extend(str(word).split())
    return WordPieceVocab.train(corpus, vocab_size=vocab_size)
