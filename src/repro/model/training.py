"""Training loop and dataset preparation for the ValueNet model.

Pre-processing is deterministic per example, so it runs once up front
(:func:`prepare_samples`); each epoch then shuffles the prepared samples,
accumulates gradients over ``batch_size`` examples (the paper trains with
batch size 20) and applies one Adam step per batch with the three-group
learning rates.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.config import TrainingConfig
from repro.logs import get_logger
from repro.model.decoder import DecoderStep
from repro.model.supervision import tree_to_steps
from repro.model.valuenet import ValueNetModel
from repro.ner.extractor import ValueExtractor
from repro.preprocessing.pipeline import PreprocessedQuestion, Preprocessor
from repro.schema.model import Schema
from repro.spider.corpus import Example, SpiderCorpus

_LOG = get_logger(__name__)


@dataclass
class TrainSample:
    """One prepared training sample (pre-processing already applied)."""

    example: Example
    pre: PreprocessedQuestion
    schema: Schema
    steps: list[DecoderStep]


@dataclass
class EpochStats:
    """Loss/coverage bookkeeping for one epoch."""

    epoch: int
    mean_loss: float
    num_samples: int
    seconds: float


@dataclass
class TrainingHistory:
    epochs: list[EpochStats] = field(default_factory=list)
    num_prepared: int = 0
    num_dropped: int = 0

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].mean_loss if self.epochs else float("nan")


def build_preprocessors(
    corpus: SpiderCorpus,
    extractor: ValueExtractor | None = None,
) -> dict[str, Preprocessor]:
    """One :class:`Preprocessor` per database (index built once each)."""
    return {
        db_id: Preprocessor(corpus.database(db_id), extractor)
        for db_id in corpus.domains
    }


def prepare_samples(
    examples: list[Example],
    preprocessors: dict[str, Preprocessor],
    model: ValueNetModel,
    *,
    mode: str = "valuenet",
) -> tuple[list[TrainSample], int]:
    """Pre-process and flatten gold trees into decoder targets.

    Args:
        examples: corpus examples.
        preprocessors: per-database preprocessors.
        model: the model (for its vocabulary-independent step derivation).
        mode: ``valuenet`` (full extraction pipeline) or ``light`` (gold
            values given as the option set, Section IV-A).

    Returns:
        (prepared samples, number dropped because a gold value was not in
        the candidate list).
    """
    if mode not in ("valuenet", "light"):
        raise ValueError(f"unknown mode {mode!r}")
    samples: list[TrainSample] = []
    dropped = 0
    for example in examples:
        preprocessor = preprocessors[example.db_id]
        if mode == "light":
            pre = preprocessor.run_light(example.question, example.values)
        else:
            pre = preprocessor.run(example.question)
        schema = preprocessor.schema
        steps = tree_to_steps(example.gold_semql, schema, pre.candidates)
        if steps is None:
            dropped += 1
            continue
        samples.append(TrainSample(example, pre, schema, steps))
    return samples, dropped


class Trainer:
    """Gradient-accumulation training loop with three-group Adam."""

    def __init__(
        self,
        model: ValueNetModel,
        config: TrainingConfig | None = None,
    ):
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = model.build_optimizer(
            encoder_lr=self.config.encoder_lr,
            decoder_lr=self.config.decoder_lr,
            connection_lr=self.config.connection_lr,
            max_grad_norm=self.config.max_grad_norm,
        )

    def train(
        self,
        samples: list[TrainSample],
        *,
        epochs: int | None = None,
    ) -> TrainingHistory:
        """Run the training loop; returns per-epoch statistics."""
        history = TrainingHistory(num_prepared=len(samples))
        rng = random.Random(self.config.seed)
        order = list(range(len(samples)))
        epochs = self.config.epochs if epochs is None else epochs

        self.model.train()
        for epoch in range(epochs):
            rng.shuffle(order)
            start = time.perf_counter()
            total_loss = 0.0
            pending = 0
            for count, index in enumerate(order, start=1):
                sample = samples[index]
                encoded = self.model.encode(sample.pre, sample.schema)
                loss = self.model.decoder.loss(encoded, sample.steps)
                scale = 1.0 / max(len(sample.steps), 1)
                (loss * scale).backward()
                total_loss += loss.item() * scale
                pending += 1
                if pending == self.config.batch_size or count == len(order):
                    self.optimizer.step()
                    self.optimizer.zero_grad()
                    pending = 0
                if (
                    self.config.log_every
                    and count % self.config.log_every == 0
                ):
                    _LOG.info(
                        "epoch %d [%d/%d] loss %.3f",
                        epoch + 1,
                        count,
                        len(order),
                        total_loss / count,
                    )
            history.epochs.append(
                EpochStats(
                    epoch=epoch + 1,
                    mean_loss=total_loss / max(len(order), 1),
                    num_samples=len(order),
                    seconds=time.perf_counter() - start,
                )
            )
        self.model.eval()
        return history
