"""The complete ValueNet neural model: encoder + decoder + vocabulary.

One :class:`ValueNetModel` serves both system variants — ValueNet and
ValueNet light differ only in *pre-processing* (where the candidate list
comes from), not in the neural architecture (paper Section IV-B5).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config import ModelConfig
from repro.errors import ModelError
from repro.model.decoder import DecoderStep, ValueNetDecoder
from repro.model.encoder import EncodedExample, ValueNetEncoder
from repro.model.featurize import SchemaFeatureCache, featurize
from repro.model.stepcache import StepCache
from repro.model.supervision import steps_to_tree, tree_to_steps
from repro.nn.layers import Module
from repro.nn.optim import Adam, ParamGroup
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Tensor, inference_mode
from repro.preprocessing.pipeline import PreprocessedQuestion
from repro.schema.model import Schema
from repro.semql.tree import SemQLNode
from repro.text.wordpiece import WordPieceVocab


class ValueNetModel(Module):
    """Encoder-decoder model over featurized questions."""

    def __init__(self, vocab: WordPieceVocab, config: ModelConfig | None = None):
        super().__init__()
        self.config = config or ModelConfig()
        self.vocab = vocab
        rng = np.random.default_rng(self.config.seed)
        self.encoder = ValueNetEncoder(len(vocab), self.config, rng)
        self.decoder = ValueNetDecoder(self.config, rng)
        # Schema token featurization is question-independent; cache it per
        # (schema, vocab) so serving featurizes each database once.
        self.schema_cache = SchemaFeatureCache()

    # ------------------------------------------------------------ forward

    def encode(self, pre: PreprocessedQuestion, schema: Schema) -> EncodedExample:
        return self.encoder(
            featurize(pre, schema, self.vocab, cache=self.schema_cache)
        )

    def encode_batch(
        self, pres: list[PreprocessedQuestion], schema: Schema
    ) -> list[EncodedExample]:
        """Encode a micro-batch of questions over one schema at once.

        Runs in eval mode under :func:`inference_mode` — one padded
        transformer forward for the whole batch, no autograd graph.
        """
        was_training = self.training
        self.eval()
        try:
            with inference_mode():
                inputs = [
                    featurize(pre, schema, self.vocab, cache=self.schema_cache)
                    for pre in pres
                ]
                return self.encoder.encode_batch(inputs)
        finally:
            if was_training:
                self.train()

    def _column_to_table(self, schema: Schema) -> list[int | None]:
        return [
            None if column.is_star() else schema.table_index(column.table)
            for column in schema.all_columns()
        ]

    def decode_encoded(
        self,
        encoded: EncodedExample,
        pre: PreprocessedQuestion,
        schema: Schema,
        *,
        beam_size: int = 1,
    ) -> SemQLNode:
        """Decode an already-encoded example into a SemQL tree.

        Used by the serving batch path: encode once per micro-batch via
        :meth:`encode_batch`, then decode per request.
        """
        was_training = self.training
        self.eval()
        try:
            with inference_mode():
                steps = self._decode_steps(
                    encoded, beam_size, self._column_to_table(schema)
                )
        finally:
            if was_training:
                self.train()
        return steps_to_tree(steps, schema, pre.candidates)

    def _decode_steps(
        self,
        encoded: EncodedExample,
        beam_size: int,
        column_to_table: list[int | None],
        *,
        use_cache: bool = True,
    ) -> list[DecoderStep]:
        # One StepCache per request: memoized pointer memory projections,
        # feed embeddings and grammar masks, plus an arena for the LSTM
        # hot loop.  Predictions are identical with or without it
        # (``use_cache=False`` exists for the benchmark baseline).
        cache = StepCache(self.decoder, encoded) if use_cache else None
        if beam_size > 1:
            from repro.model.beam import beam_decode

            return beam_decode(
                self.decoder, encoded, beam_size=beam_size,
                column_to_table=column_to_table, cache=cache,
            )
        return self.decoder.decode(
            encoded, column_to_table=column_to_table, cache=cache
        )

    def loss(
        self,
        pre: PreprocessedQuestion,
        schema: Schema,
        gold_tree: SemQLNode,
    ) -> Tensor | None:
        """Training loss for one example; ``None`` when the gold values are
        absent from the candidate list (unsupervisable sample)."""
        steps = tree_to_steps(gold_tree, schema, pre.candidates)
        if steps is None:
            return None
        encoded = self.encode(pre, schema)
        return self.decoder.loss(encoded, steps)

    def predict(
        self, pre: PreprocessedQuestion, schema: Schema, *, beam_size: int = 1
    ) -> SemQLNode:
        """Grammar-constrained prediction of a SemQL tree.

        Args:
            pre: pre-processed question.
            schema: the database schema.
            beam_size: 1 decodes greedily (the paper's setting); larger
                values run beam search over the action space.

        Raises:
            ModelError: when decoding cannot complete (e.g. a value is
                required but no candidates exist).
        """
        was_training = self.training
        self.eval()
        try:
            with inference_mode():
                encoded = self.encode(pre, schema)
                steps = self._decode_steps(
                    encoded, beam_size, self._column_to_table(schema)
                )
        finally:
            if was_training:
                self.train()
        return steps_to_tree(steps, schema, pre.candidates)

    # ------------------------------------------------------ optimization

    def build_optimizer(
        self,
        *,
        encoder_lr: float,
        decoder_lr: float,
        connection_lr: float,
        max_grad_norm: float = 5.0,
    ) -> Adam:
        """Adam with the paper's three parameter groups (Section V-C)."""
        return Adam(
            [
                ParamGroup(self.encoder.parameters(), encoder_lr, "encoder"),
                ParamGroup(self.decoder.decoder_parameters(), decoder_lr, "decoder"),
                ParamGroup(
                    self.decoder.connection_parameters(), connection_lr, "connection"
                ),
            ],
            max_grad_norm=max_grad_norm,
        )

    # ------------------------------------------------------- persistence

    def save(self, directory: str | Path) -> None:
        """Write vocabulary + weights + config to ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.vocab.save(directory / "vocab.json")
        save_module(self, directory / "weights.npz")
        import json

        (directory / "config.json").write_text(
            json.dumps(self.config.__dict__, indent=1)
        )

    @classmethod
    def load(cls, directory: str | Path) -> "ValueNetModel":
        directory = Path(directory)
        if not (directory / "weights.npz").exists():
            raise ModelError(f"no checkpoint at {directory}")
        import json

        vocab = WordPieceVocab.load(directory / "vocab.json")
        config = ModelConfig(**json.loads((directory / "config.json").read_text()))
        model = cls(vocab, config)
        load_module(model, directory / "weights.npz")
        return model
