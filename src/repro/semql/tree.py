"""SemQL 2.0 trees and their action-sequence form.

A :class:`SemQLNode` is either

* a grammar node: ``action_type`` + ``production`` + children, or
* a pointer leaf (``C``/``T``/``V``) carrying its payload: a resolved
  :class:`~repro.schema.model.Column`, a table name, or a literal value.

Trees convert losslessly to and from pre-order action sequences; the
decoder consumes and produces such sequences under the grammar's dynamic
legal-action constraint (:class:`GrammarState`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GrammarError, SemQLError
from repro.schema.model import Column
from repro.semql.actions import (
    ActionType,
    GrammarAction,
    POINTER_TYPES,
    children_of,
    production_name,
)


@dataclass
class SemQLNode:
    """One node of a SemQL 2.0 tree."""

    action_type: ActionType
    production: int | None = None
    children: list["SemQLNode"] = field(default_factory=list)
    column: Column | None = None      # payload for C leaves
    table: str | None = None          # payload for T leaves
    value: object | None = None       # payload for V leaves

    def __post_init__(self) -> None:
        is_pointer = self.action_type in POINTER_TYPES
        if is_pointer and self.production is not None:
            raise SemQLError(
                f"pointer node {self.action_type.value} cannot have a production"
            )
        if not is_pointer and self.production is None:
            raise SemQLError(
                f"grammar node {self.action_type.value} requires a production"
            )

    # --------------------------------------------------------- conveniences

    @property
    def name(self) -> str:
        """Readable label (``Filter.eq_v``, ``C[student.age]`` ...)."""
        if self.action_type is ActionType.C:
            payload = self.column.qualified_name if self.column else "?"
            return f"C[{payload}]"
        if self.action_type is ActionType.T:
            return f"T[{self.table or '?'}]"
        if self.action_type is ActionType.V:
            return f"V[{self.value!r}]"
        assert self.production is not None
        return production_name(self.action_type, self.production)

    def is_pointer(self) -> bool:
        return self.action_type in POINTER_TYPES

    def validate(self) -> None:
        """Check the node and its subtree against the grammar.

        Raises:
            SemQLError: on arity or child-type violations, or when a
                pointer leaf is missing its payload.
        """
        if self.is_pointer():
            if self.children:
                raise SemQLError(f"pointer node {self.name} cannot have children")
            if self.action_type is ActionType.C and self.column is None:
                raise SemQLError("C leaf has no column payload")
            if self.action_type is ActionType.T and self.table is None:
                raise SemQLError("T leaf has no table payload")
            if self.action_type is ActionType.V and self.value is None:
                raise SemQLError("V leaf has no value payload")
            return
        assert self.production is not None
        expected = children_of(self.action_type, self.production)
        actual = tuple(child.action_type for child in self.children)
        if expected != actual:
            raise SemQLError(
                f"{self.name} expects children {[t.value for t in expected]}, "
                f"got {[t.value for t in actual]}"
            )
        for child in self.children:
            child.validate()

    def walk(self):
        """Yield every node of the subtree in pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def pointer_leaves(self, action_type: ActionType) -> list["SemQLNode"]:
        """All pointer leaves of the given type, in pre-order."""
        return [node for node in self.walk() if node.action_type is action_type]

    def to_sexpr(self) -> str:
        """Compact s-expression rendering, for logs and tests."""
        if self.is_pointer():
            return self.name
        inner = " ".join(child.to_sexpr() for child in self.children)
        return f"({self.name} {inner})" if inner else f"({self.name})"

    def __str__(self) -> str:
        return self.to_sexpr()


# --------------------------------------------------------------------------
# Pre-order action sequences


def tree_to_actions(tree: SemQLNode) -> list[SemQLNode]:
    """The pre-order node sequence (each node *is* its action)."""
    tree.validate()
    return list(tree.walk())


def actions_to_tree(actions: list[SemQLNode]) -> SemQLNode:
    """Rebuild a tree from a pre-order node sequence.

    The input nodes' ``children`` lists are replaced; pass copies if the
    originals must stay intact.

    Raises:
        SemQLError: if the sequence does not form exactly one valid tree.
    """
    if not actions:
        raise SemQLError("empty action sequence")

    iterator = iter(actions)

    def build(expected: ActionType) -> SemQLNode:
        try:
            node = next(iterator)
        except StopIteration as exc:
            raise SemQLError("action sequence ended before the tree was complete") from exc
        if node.action_type is not expected:
            raise SemQLError(
                f"expected a {expected.value} action, got {node.name}"
            )
        if node.is_pointer():
            node.children = []
            return node
        assert node.production is not None
        node.children = [
            build(child_type)
            for child_type in children_of(node.action_type, node.production)
        ]
        return node

    root = build(actions[0].action_type)
    leftover = next(iterator, None)
    if leftover is not None:
        raise SemQLError(f"trailing actions after complete tree: {leftover.name}")
    return root


class GrammarState:
    """Tracks which action types are legal while decoding in pre-order.

    The decoder asks :meth:`expected_type` before each step; for grammar
    types it must pick one of that type's productions, for pointer types it
    must emit a pointer.  :meth:`advance` pushes the chosen production's
    children.  This realizes the paper's "options dynamically change
    depending on the preceding node in the SemQL 2.0 tree".
    """

    def __init__(self, root: ActionType = ActionType.Z):
        # stack entries: (non-terminal, inside-a-sub-query flag, tag)
        # tag marks the left/right branches of a compound query so the
        # right branch's SELECT arity can be constrained to the left's.
        self._stack: list[tuple[ActionType, bool, str | None]] = [
            (root, False, None)
        ]
        self._steps = 0
        self._left_arity: int | None = None

    @property
    def finished(self) -> bool:
        return not self._stack

    @property
    def pending(self) -> int:
        """Number of non-terminals still waiting for expansion."""
        return len(self._stack)

    @property
    def steps_taken(self) -> int:
        return self._steps

    def clone(self) -> "GrammarState":
        """An independent copy (used by beam search to fork hypotheses)."""
        copy = GrammarState.__new__(GrammarState)
        copy._stack = list(self._stack)
        copy._steps = self._steps
        copy._left_arity = self._left_arity
        return copy

    def expected_type(self) -> ActionType:
        if self.finished:
            raise GrammarError("decoding already finished")
        return self._stack[-1][0]

    def expected_in_subquery(self) -> bool:
        """Whether the expected non-terminal lives inside a sub-query.

        Sub-query SELECTs must stay scalar (one projection) for the
        generated SQL to be executable as a comparison operand.
        """
        if self.finished:
            raise GrammarError("decoding already finished")
        return self._stack[-1][1]

    def expected_in_compound_branch(self) -> bool:
        """Whether the expected non-terminal is a direct compound branch.

        SQLite forbids ORDER BY / LIMIT on the individual branches of a
        compound query, so those R productions must be masked there.
        """
        if self.finished:
            raise GrammarError("decoding already finished")
        return self._stack[-1][2] in ("left", "right")

    def required_select_arity(self) -> int | None:
        """Projection count the expected SELECT must have, if constrained.

        The right branch of a compound query (UNION/INTERSECT/EXCEPT) must
        project as many columns as the left branch did.
        """
        if self.finished:
            raise GrammarError("decoding already finished")
        _type, _sub, tag = self._stack[-1]
        if tag == "right":
            return self._left_arity
        return None

    def advance_grammar(self, action: GrammarAction) -> None:
        """Consume a grammar action (must expand the expected type)."""
        if self.finished:
            raise GrammarError("decoding already finished")
        expected, in_subquery, tag = self._stack[-1]
        if action.action_type is not expected:
            raise GrammarError(
                f"expected a {expected.value} action, got {action.name}"
            )
        if action.action_type is ActionType.SELECT and tag == "left":
            self._left_arity = len(action.children)
        self._stack.pop()

        compound = (
            action.action_type is ActionType.Z and len(action.children) == 2
        )
        r_seen = 0
        for child in reversed(action.children):
            child_in_subquery = in_subquery or (
                action.action_type is ActionType.FILTER and child is ActionType.R
            )
            child_tag: str | None = None
            if compound and child is ActionType.R:
                # children are pushed reversed: the first pushed is 'right'
                child_tag = "right" if r_seen == 0 else "left"
                r_seen += 1
            elif (
                action.action_type is ActionType.R
                and child is ActionType.SELECT
                and tag in ("left", "right")
            ):
                child_tag = tag
            self._stack.append((child, child_in_subquery, child_tag))
        self._steps += 1

    def advance_pointer(self, action_type: ActionType) -> None:
        """Consume a pointer step of the expected pointer type."""
        expected = self.expected_type()
        if action_type is not expected:
            raise GrammarError(
                f"expected a {expected.value} pointer, got {action_type.value}"
            )
        if action_type not in POINTER_TYPES:
            raise GrammarError(f"{action_type.value} is not a pointer type")
        self._stack.pop()
        self._steps += 1
