"""SemQL 2.0: grammar, trees, and conversions to/from SQL."""

from repro.semql.actions import (
    ActionType,
    GRAMMAR_ACTION_INDEX,
    GRAMMAR_ACTION_LIST,
    GrammarAction,
    NUM_GRAMMAR_ACTIONS,
    POINTER_TYPES,
    PRODUCTIONS,
    actions_for_type,
    children_of,
    num_productions,
    production_index,
    production_name,
)
from repro.semql.from_sql import query_to_semql
from repro.semql.to_sql import semql_to_query
from repro.semql.tree import (
    GrammarState,
    SemQLNode,
    actions_to_tree,
    tree_to_actions,
)

__all__ = [
    "ActionType",
    "GRAMMAR_ACTION_INDEX",
    "GRAMMAR_ACTION_LIST",
    "GrammarAction",
    "GrammarState",
    "NUM_GRAMMAR_ACTIONS",
    "POINTER_TYPES",
    "PRODUCTIONS",
    "SemQLNode",
    "actions_for_type",
    "actions_to_tree",
    "children_of",
    "num_productions",
    "production_index",
    "production_name",
    "query_to_semql",
    "semql_to_query",
    "tree_to_actions",
]
