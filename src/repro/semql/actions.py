"""SemQL 2.0 action inventory (paper Fig. 2).

SemQL 2.0 is IRNet's SemQL grammar extended with the value non-terminal
``V``.  A SemQL tree is produced action-by-action in pre-order: each
grammar action picks a *production* for the current non-terminal and pushes
its children; the leaf non-terminals ``C`` (column), ``T`` (table) and
``V`` (value) are filled by pointer networks instead of a production
choice.

The module defines the action types, the production tables (including each
production's child non-terminals), and a global enumeration of grammar
actions used as the decoder's output vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import GrammarError


class ActionType(enum.Enum):
    """The non-terminals of SemQL 2.0."""

    Z = "Z"              # root: compound operators
    R = "R"              # one SELECT block
    SELECT = "Select"    # projection list
    ORDER = "Order"      # ORDER BY without limit
    SUPERLATIVE = "Superlative"  # ORDER BY ... LIMIT n
    FILTER = "Filter"    # WHERE / HAVING predicates
    A = "A"              # aggregated column
    C = "C"              # column pointer (leaf)
    T = "T"              # table pointer (leaf)
    V = "V"              # value pointer (leaf)  -- the SemQL 2.0 extension


POINTER_TYPES = frozenset({ActionType.C, ActionType.T, ActionType.V})

# Maximum number of projections a Select production can carry.  Spider
# queries use at most 4-5; we allow 4 plus the distinct variants.
MAX_SELECT_ITEMS = 4

# (type, production) -> tuple of child ActionTypes, in left-to-right order.
_Z = ActionType.Z
_R = ActionType.R
_SEL = ActionType.SELECT
_ORD = ActionType.ORDER
_SUP = ActionType.SUPERLATIVE
_F = ActionType.FILTER
_A = ActionType.A
_C = ActionType.C
_T = ActionType.T
_V = ActionType.V

Z_PRODUCTIONS: list[tuple[str, tuple[ActionType, ...]]] = [
    ("intersect", (_R, _R)),
    ("union", (_R, _R)),
    ("except", (_R, _R)),
    ("single", (_R,)),
]

R_PRODUCTIONS: list[tuple[str, tuple[ActionType, ...]]] = [
    ("select", (_SEL,)),
    ("select_filter", (_SEL, _F)),
    ("select_order", (_SEL, _ORD)),
    ("select_superlative", (_SEL, _SUP)),
    ("select_order_filter", (_SEL, _ORD, _F)),
    ("select_superlative_filter", (_SEL, _SUP, _F)),
]

# Select productions: n projections, plain then distinct.
SELECT_PRODUCTIONS: list[tuple[str, tuple[ActionType, ...]]] = [
    (f"n{n}", tuple([_A] * n)) for n in range(1, MAX_SELECT_ITEMS + 1)
] + [
    (f"distinct_n{n}", tuple([_A] * n)) for n in range(1, MAX_SELECT_ITEMS + 1)
]

ORDER_PRODUCTIONS: list[tuple[str, tuple[ActionType, ...]]] = [
    ("asc", (_A,)),
    ("desc", (_A,)),
]

SUPERLATIVE_PRODUCTIONS: list[tuple[str, tuple[ActionType, ...]]] = [
    ("most", (_V, _A)),
    ("least", (_V, _A)),
]

FILTER_PRODUCTIONS: list[tuple[str, tuple[ActionType, ...]]] = [
    ("and", (_F, _F)),
    ("or", (_F, _F)),
    ("eq_v", (_A, _V)),
    ("eq_r", (_A, _R)),
    ("ne_v", (_A, _V)),
    ("ne_r", (_A, _R)),
    ("lt_v", (_A, _V)),
    ("lt_r", (_A, _R)),
    ("gt_v", (_A, _V)),
    ("gt_r", (_A, _R)),
    ("le_v", (_A, _V)),
    ("le_r", (_A, _R)),
    ("ge_v", (_A, _V)),
    ("ge_r", (_A, _R)),
    ("between_v", (_A, _V, _V)),
    ("between_r", (_A, _R)),
    ("like_v", (_A, _V)),
    ("not_like_v", (_A, _V)),
    ("in_r", (_A, _R)),
    ("not_in_r", (_A, _R)),
]

A_PRODUCTIONS: list[tuple[str, tuple[ActionType, ...]]] = [
    ("max", (_C, _T)),
    ("min", (_C, _T)),
    ("count", (_C, _T)),
    ("sum", (_C, _T)),
    ("avg", (_C, _T)),
    ("none", (_C, _T)),
]

PRODUCTIONS: dict[ActionType, list[tuple[str, tuple[ActionType, ...]]]] = {
    ActionType.Z: Z_PRODUCTIONS,
    ActionType.R: R_PRODUCTIONS,
    ActionType.SELECT: SELECT_PRODUCTIONS,
    ActionType.ORDER: ORDER_PRODUCTIONS,
    ActionType.SUPERLATIVE: SUPERLATIVE_PRODUCTIONS,
    ActionType.FILTER: FILTER_PRODUCTIONS,
    ActionType.A: A_PRODUCTIONS,
}


def production_name(action_type: ActionType, production: int) -> str:
    """Human-readable name of a production (``Filter.eq_v`` ...)."""
    return f"{action_type.value}.{PRODUCTIONS[action_type][production][0]}"


def production_index(action_type: ActionType, name: str) -> int:
    """Inverse of :func:`production_name` for one action type."""
    for i, (candidate, _children) in enumerate(PRODUCTIONS[action_type]):
        if candidate == name:
            return i
    raise GrammarError(f"{action_type.value} has no production {name!r}")


def children_of(action_type: ActionType, production: int) -> tuple[ActionType, ...]:
    """Child non-terminals of a production."""
    if action_type in POINTER_TYPES:
        return ()
    try:
        return PRODUCTIONS[action_type][production][1]
    except (KeyError, IndexError) as exc:
        raise GrammarError(
            f"no production {production} for {action_type.value}"
        ) from exc


def num_productions(action_type: ActionType) -> int:
    if action_type in POINTER_TYPES:
        return 0
    return len(PRODUCTIONS[action_type])


@dataclass(frozen=True)
class GrammarAction:
    """A grammar action: choose ``production`` for ``action_type``."""

    action_type: ActionType
    production: int

    def __post_init__(self) -> None:
        if self.action_type in POINTER_TYPES:
            raise GrammarError(
                f"{self.action_type.value} is a pointer type, not a grammar action"
            )
        if not 0 <= self.production < num_productions(self.action_type):
            raise GrammarError(
                f"production {self.production} out of range for "
                f"{self.action_type.value}"
            )

    @property
    def name(self) -> str:
        return production_name(self.action_type, self.production)

    @property
    def children(self) -> tuple[ActionType, ...]:
        return children_of(self.action_type, self.production)

    def __str__(self) -> str:
        return self.name


# --------------------------------------------------------------------------
# Global grammar-action vocabulary (the decoder's softmax space for sketch
# actions).  Stable ordering: the types in declaration order, productions in
# table order.

GRAMMAR_ACTION_LIST: list[GrammarAction] = [
    GrammarAction(action_type, production)
    for action_type in (
        ActionType.Z, ActionType.R, ActionType.SELECT, ActionType.ORDER,
        ActionType.SUPERLATIVE, ActionType.FILTER, ActionType.A,
    )
    for production in range(num_productions(action_type))
]

GRAMMAR_ACTION_INDEX: dict[GrammarAction, int] = {
    action: i for i, action in enumerate(GRAMMAR_ACTION_LIST)
}

NUM_GRAMMAR_ACTIONS = len(GRAMMAR_ACTION_LIST)


def actions_for_type(action_type: ActionType) -> list[int]:
    """Global ids of all grammar actions expanding ``action_type``."""
    return [
        GRAMMAR_ACTION_INDEX[GrammarAction(action_type, production)]
        for production in range(num_productions(action_type))
    ]
