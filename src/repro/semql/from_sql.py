"""SQL -> SemQL 2.0 conversion (training-data preparation).

Gold SQL queries are parsed into the :mod:`repro.sql.ast` form and then
lowered into SemQL 2.0 trees, which are the supervision signal for the
decoder.  The conversion implements the paper's abstractions:

* JOIN structure disappears — SemQL only records the tables used by
  Select/Filter/Order/Superlative actions (Section III-C2); bridge tables
  are re-inferred at post-processing time.
* GROUP BY disappears — it is re-inferred from the projection shape.
* ORDER BY + LIMIT becomes a ``Superlative`` (most/least); a bare ORDER BY
  becomes ``Order``.
* WHERE and HAVING merge into a single ``Filter`` tree (HAVING conditions
  keep their aggregate on the A node).
"""

from __future__ import annotations

from repro.errors import SemQLError
from repro.schema.model import Schema
from repro.semql.actions import ActionType, production_index
from repro.semql.tree import SemQLNode
from repro.sql.ast import (
    AggregateFunction,
    BooleanExpr,
    ColumnRef,
    Condition,
    ConditionExpr,
    Literal,
    Operator,
    OrderDirection,
    Query,
    SelectItem,
    SelectQuery,
    SetOperator,
)

_AGG_TO_PRODUCTION = {
    AggregateFunction.MAX: "max",
    AggregateFunction.MIN: "min",
    AggregateFunction.COUNT: "count",
    AggregateFunction.SUM: "sum",
    AggregateFunction.AVG: "avg",
    AggregateFunction.NONE: "none",
}

_SET_TO_PRODUCTION = {
    SetOperator.INTERSECT: "intersect",
    SetOperator.UNION: "union",
    SetOperator.EXCEPT: "except",
}

_OPERATOR_TO_FILTER = {
    Operator.EQ: ("eq_v", "eq_r"),
    Operator.NE: ("ne_v", "ne_r"),
    Operator.LT: ("lt_v", "lt_r"),
    Operator.GT: ("gt_v", "gt_r"),
    Operator.LE: ("le_v", "le_r"),
    Operator.GE: ("ge_v", "ge_r"),
    Operator.LIKE: ("like_v", None),
    Operator.NOT_LIKE: ("not_like_v", None),
    Operator.IN: (None, "in_r"),
    Operator.NOT_IN: (None, "not_in_r"),
}


def query_to_semql(query: Query, schema: Schema) -> SemQLNode:
    """Convert a resolved SQL :class:`Query` into a SemQL 2.0 tree."""
    if query.is_compound():
        assert query.set_operator is not None and query.compound is not None
        if query.compound.is_compound():
            raise SemQLError("chained compound queries are not supported by SemQL")
        root = SemQLNode(
            ActionType.Z,
            production_index(ActionType.Z, _SET_TO_PRODUCTION[query.set_operator]),
            children=[
                _select_query_to_r(query.body, schema),
                _select_query_to_r(query.compound.body, schema),
            ],
        )
    else:
        root = SemQLNode(
            ActionType.Z,
            production_index(ActionType.Z, "single"),
            children=[_select_query_to_r(query.body, schema)],
        )
    root.validate()
    return root


def _select_query_to_r(query: SelectQuery, schema: Schema) -> SemQLNode:
    select_node = _build_select(query, schema)

    filter_expr = _merge_where_having(query)
    filter_node = (
        _condition_expr_to_filter(filter_expr, query, schema)
        if filter_expr is not None
        else None
    )

    order_node: SemQLNode | None = None
    superlative_node: SemQLNode | None = None
    if query.order_by is not None:
        if len(query.order_by.items) != 1:
            raise SemQLError("SemQL supports exactly one ORDER BY expression")
        item = query.order_by.items[0]
        a_node = _select_item_to_a(item, query, schema)
        descending = query.order_by.direction is OrderDirection.DESC
        if query.limit is not None:
            superlative_node = SemQLNode(
                ActionType.SUPERLATIVE,
                production_index(
                    ActionType.SUPERLATIVE, "most" if descending else "least"
                ),
                children=[
                    SemQLNode(ActionType.V, value=query.limit),
                    a_node,
                ],
            )
        else:
            order_node = SemQLNode(
                ActionType.ORDER,
                production_index(ActionType.ORDER, "desc" if descending else "asc"),
                children=[a_node],
            )
    elif query.limit is not None:
        raise SemQLError("LIMIT without ORDER BY is not representable in SemQL")

    if order_node is None and superlative_node is None and filter_node is None:
        production = "select"
        children = [select_node]
    elif order_node is None and superlative_node is None:
        production = "select_filter"
        children = [select_node, filter_node]
    elif order_node is not None and filter_node is None:
        production = "select_order"
        children = [select_node, order_node]
    elif superlative_node is not None and filter_node is None:
        production = "select_superlative"
        children = [select_node, superlative_node]
    elif order_node is not None:
        production = "select_order_filter"
        children = [select_node, order_node, filter_node]
    else:
        production = "select_superlative_filter"
        children = [select_node, superlative_node, filter_node]

    return SemQLNode(
        ActionType.R,
        production_index(ActionType.R, production),
        children=[child for child in children if child is not None],
    )


def _build_select(query: SelectQuery, schema: Schema) -> SemQLNode:
    n = len(query.select)
    if n == 0:
        raise SemQLError("query selects nothing")
    name = f"distinct_n{n}" if query.distinct else f"n{n}"
    try:
        production = production_index(ActionType.SELECT, name)
    except Exception as exc:
        raise SemQLError(f"unsupported number of select items: {n}") from exc
    children = [_select_item_to_a(item, query, schema) for item in query.select]
    return SemQLNode(ActionType.SELECT, production, children=children)


def _select_item_to_a(item: SelectItem, query: SelectQuery, schema: Schema) -> SemQLNode:
    return _make_a(item.aggregate, item.column, query, schema)


def _make_a(
    aggregate: AggregateFunction,
    column: ColumnRef,
    query: SelectQuery,
    schema: Schema,
) -> SemQLNode:
    table_name = column.table
    if table_name is None:
        # Unqualified '*': SemQL still needs a T payload.  Attribute the
        # star to the first FROM table no other column references — in
        # ``SELECT count(*) FROM student JOIN has_pet WHERE student.age >
        # 20`` the count semantically ranges over the join, and binding the
        # star to ``has_pet`` keeps that table in the SemQL scope (the
        # paper's Fig. 1 writes this as ``count(T2.*)``).  When every FROM
        # table is referenced, fall back to the first.
        if not query.tables:
            raise SemQLError("query has no FROM tables")
        referenced = _referenced_tables(query)
        unreferenced = [t for t in query.tables if t.lower() not in referenced]
        table_name = unreferenced[0] if unreferenced else query.tables[0]
    resolved_column = schema.column(table_name, column.column)
    return SemQLNode(
        ActionType.A,
        production_index(ActionType.A, _AGG_TO_PRODUCTION[aggregate]),
        children=[
            SemQLNode(ActionType.C, column=resolved_column),
            SemQLNode(ActionType.T, table=schema.table(table_name).name),
        ],
    )


def _referenced_tables(query: SelectQuery) -> set[str]:
    """Lower-cased names of tables referenced by any non-star column."""
    referenced: set[str] = set()

    def visit_column(column: ColumnRef) -> None:
        if column.table is not None and not column.is_star():
            referenced.add(column.table.lower())

    for item in query.select:
        visit_column(item.column)
    for expr in (query.where, query.having):
        stack: list[ConditionExpr] = [expr] if expr is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, BooleanExpr):
                stack.extend(node.operands)
            else:
                visit_column(node.column)
    for column in query.group_by:
        visit_column(column)
    if query.order_by is not None:
        for item in query.order_by.items:
            visit_column(item.column)
    return referenced


def _merge_where_having(query: SelectQuery) -> ConditionExpr | None:
    if query.where is not None and query.having is not None:
        return BooleanExpr("and", (query.where, query.having))
    return query.where if query.where is not None else query.having


def _condition_expr_to_filter(
    expr: ConditionExpr, query: SelectQuery, schema: Schema
) -> SemQLNode:
    if isinstance(expr, BooleanExpr):
        production = production_index(ActionType.FILTER, expr.connector)
        # SemQL's and/or are binary; fold n-ary expressions left-deep.
        nodes = [
            _condition_expr_to_filter(operand, query, schema)
            for operand in expr.operands
        ]
        result = nodes[0]
        for node in nodes[1:]:
            result = SemQLNode(ActionType.FILTER, production, children=[result, node])
        return result
    return _condition_to_filter(expr, query, schema)


def _condition_to_filter(
    condition: Condition, query: SelectQuery, schema: Schema
) -> SemQLNode:
    a_node = _make_a(condition.aggregate, condition.column, query, schema)

    if condition.operator is Operator.BETWEEN:
        low, high = condition.rhs  # type: ignore[misc]
        return SemQLNode(
            ActionType.FILTER,
            production_index(ActionType.FILTER, "between_v"),
            children=[
                a_node,
                SemQLNode(ActionType.V, value=low.value),
                SemQLNode(ActionType.V, value=high.value),
            ],
        )

    value_production, subquery_production = _OPERATOR_TO_FILTER[condition.operator]
    if isinstance(condition.rhs, Query):
        if subquery_production is None:
            raise SemQLError(
                f"operator {condition.operator.value!r} cannot take a sub-query"
            )
        return SemQLNode(
            ActionType.FILTER,
            production_index(ActionType.FILTER, subquery_production),
            children=[a_node, _subquery_to_r(condition.rhs, schema)],
        )
    if isinstance(condition.rhs, Literal):
        if value_production is None:
            raise SemQLError(
                f"operator {condition.operator.value!r} requires a sub-query"
            )
        return SemQLNode(
            ActionType.FILTER,
            production_index(ActionType.FILTER, value_production),
            children=[a_node, SemQLNode(ActionType.V, value=condition.rhs.value)],
        )
    raise SemQLError(f"unsupported condition rhs: {condition.rhs!r}")


def _subquery_to_r(query: Query, schema: Schema) -> SemQLNode:
    if query.is_compound():
        raise SemQLError("compound sub-queries are not supported by SemQL")
    return _select_query_to_r(query.body, schema)
