"""SemQL 2.0 -> SQL conversion (deterministic post-processing).

Inverse of :mod:`repro.semql.from_sql`: rebuilds a :mod:`repro.sql.ast`
query from a SemQL tree.  The two re-inference steps the paper describes:

* **FROM / JOIN**: the tables are exactly the ``T`` payloads used in this
  R-scope (sub-queries have their own scope); bridge tables and ON clauses
  are added later by the renderer via the schema graph.
* **GROUP BY**: inferred whenever the query mixes aggregated and plain
  projections, or has HAVING-style (aggregated) filter conditions — we
  group by the plain projected columns (IRNet's convention).
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.schema.model import Schema
from repro.semql.actions import ActionType, PRODUCTIONS
from repro.semql.tree import SemQLNode
from repro.sql.ast import (
    AggregateFunction,
    BooleanExpr,
    ColumnRef,
    Condition,
    ConditionExpr,
    Literal,
    Operator,
    OrderBy,
    OrderDirection,
    Query,
    SelectItem,
    SelectQuery,
    SetOperator,
)

_PRODUCTION_TO_AGG = {
    "max": AggregateFunction.MAX,
    "min": AggregateFunction.MIN,
    "count": AggregateFunction.COUNT,
    "sum": AggregateFunction.SUM,
    "avg": AggregateFunction.AVG,
    "none": AggregateFunction.NONE,
}

_FILTER_TO_OPERATOR = {
    "eq_v": Operator.EQ, "eq_r": Operator.EQ,
    "ne_v": Operator.NE, "ne_r": Operator.NE,
    "lt_v": Operator.LT, "lt_r": Operator.LT,
    "gt_v": Operator.GT, "gt_r": Operator.GT,
    "le_v": Operator.LE, "le_r": Operator.LE,
    "ge_v": Operator.GE, "ge_r": Operator.GE,
    "like_v": Operator.LIKE,
    "not_like_v": Operator.NOT_LIKE,
    "in_r": Operator.IN,
    "not_in_r": Operator.NOT_IN,
}

_Z_TO_SET = {
    "intersect": SetOperator.INTERSECT,
    "union": SetOperator.UNION,
    "except": SetOperator.EXCEPT,
}


def _production_name(node: SemQLNode) -> str:
    assert node.production is not None
    return PRODUCTIONS[node.action_type][node.production][0]


def semql_to_query(tree: SemQLNode, schema: Schema) -> Query:
    """Convert a SemQL 2.0 tree into a resolved SQL :class:`Query`."""
    tree.validate()
    if tree.action_type is not ActionType.Z:
        raise TranslationError(f"expected a Z root, got {tree.name}")
    name = _production_name(tree)
    if name == "single":
        return Query(body=_r_to_select_query(tree.children[0], schema))
    return Query(
        body=_r_to_select_query(tree.children[0], schema),
        set_operator=_Z_TO_SET[name],
        compound=Query(body=_r_to_select_query(tree.children[1], schema)),
    )


def _r_to_select_query(node: SemQLNode, schema: Schema) -> SelectQuery:
    if node.action_type is not ActionType.R:
        raise TranslationError(f"expected an R node, got {node.name}")
    name = _production_name(node)

    select_node = node.children[0]
    order_node: SemQLNode | None = None
    superlative_node: SemQLNode | None = None
    filter_node: SemQLNode | None = None
    if name == "select_filter":
        filter_node = node.children[1]
    elif name == "select_order":
        order_node = node.children[1]
    elif name == "select_superlative":
        superlative_node = node.children[1]
    elif name == "select_order_filter":
        order_node, filter_node = node.children[1], node.children[2]
    elif name == "select_superlative_filter":
        superlative_node, filter_node = node.children[1], node.children[2]

    tables = _collect_scope_tables(node, schema)
    select_items, distinct = _build_select_items(select_node, schema)

    where, having = None, None
    if filter_node is not None:
        condition = _filter_to_condition(filter_node, schema)
        where, having = _split_where_having(condition)

    order_by: OrderBy | None = None
    limit: int | None = None
    if order_node is not None:
        direction = (
            OrderDirection.DESC
            if _production_name(order_node) == "desc"
            else OrderDirection.ASC
        )
        order_by = OrderBy(
            items=(_a_to_select_item(order_node.children[0], schema),),
            direction=direction,
        )
    elif superlative_node is not None:
        direction = (
            OrderDirection.DESC
            if _production_name(superlative_node) == "most"
            else OrderDirection.ASC
        )
        value_node, a_node = superlative_node.children
        limit = _coerce_limit(value_node.value)
        order_by = OrderBy(
            items=(_a_to_select_item(a_node, schema),),
            direction=direction,
        )

    group_by = _infer_group_by(select_items, having)

    return SelectQuery(
        select=select_items,
        tables=tables,
        distinct=distinct,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
    )


def _coerce_limit(value: object) -> int:
    try:
        number = float(str(value))
    except ValueError as exc:
        raise TranslationError(f"LIMIT value {value!r} is not a number") from exc
    if not number.is_integer() or number < 1:
        raise TranslationError(f"LIMIT value {value!r} is not a positive integer")
    return int(number)


def _collect_scope_tables(r_node: SemQLNode, schema: Schema) -> list[str]:
    """All T payloads in this R scope (excluding nested R sub-queries)."""
    tables: list[str] = []
    seen: set[str] = set()

    def add(table_name: str) -> None:
        name = schema.table(table_name).name
        if name.lower() not in seen:
            seen.add(name.lower())
            tables.append(name)

    def visit(node: SemQLNode) -> None:
        if node.action_type is ActionType.R and node is not r_node:
            return  # sub-query: its tables live in its own FROM clause
        if node.action_type is ActionType.T:
            assert node.table is not None
            add(node.table)
        if node.action_type is ActionType.C and node.column is not None:
            # Columns qualify with their own table (see _a_to_parts), so
            # that table must be in scope even when the decoder's T pointer
            # disagrees.
            if not node.column.is_star():
                add(node.column.table)
        for child in node.children:
            visit(child)

    visit(r_node)
    if not tables:
        raise TranslationError("SemQL tree references no tables")
    return tables


def _build_select_items(
    select_node: SemQLNode, schema: Schema
) -> tuple[list[SelectItem], bool]:
    name = _production_name(select_node)
    distinct = name.startswith("distinct")
    items = [_a_to_select_item(child, schema) for child in select_node.children]
    return items, distinct


def _a_to_select_item(a_node: SemQLNode, schema: Schema) -> SelectItem:
    aggregate, column = _a_to_parts(a_node, schema)
    return SelectItem(column=column, aggregate=aggregate)


def _a_to_parts(
    a_node: SemQLNode, schema: Schema
) -> tuple[AggregateFunction, ColumnRef]:
    if a_node.action_type is not ActionType.A:
        raise TranslationError(f"expected an A node, got {a_node.name}")
    aggregate = _PRODUCTION_TO_AGG[_production_name(a_node)]
    c_node, t_node = a_node.children
    assert c_node.column is not None and t_node.table is not None
    if c_node.column.is_star():
        # COUNT(*) renders unqualified; the T payload still matters for the
        # FROM clause (it was collected by _collect_scope_tables).
        return aggregate, ColumnRef(None, "*")
    # The column's owning table comes from the column payload itself — a
    # decoder may point C and T inconsistently, and qualifying the column
    # with the T payload would produce invalid SQL.  The T payload still
    # contributes its table to the FROM scope.
    table_name = schema.table(c_node.column.table).name
    return aggregate, ColumnRef(table_name, c_node.column.name)


def _filter_to_condition(filter_node: SemQLNode, schema: Schema) -> ConditionExpr:
    name = _production_name(filter_node)
    if name in ("and", "or"):
        left = _filter_to_condition(filter_node.children[0], schema)
        right = _filter_to_condition(filter_node.children[1], schema)
        return BooleanExpr(name, (left, right))

    a_node = filter_node.children[0]
    aggregate, column = _a_to_parts(a_node, schema)

    if name == "between_v":
        low, high = filter_node.children[1], filter_node.children[2]
        return Condition(
            column=column,
            operator=Operator.BETWEEN,
            rhs=(Literal(_coerce_literal(low.value)), Literal(_coerce_literal(high.value))),
            aggregate=aggregate,
        )
    if name == "between_r":
        raise TranslationError("between with a sub-query is not executable SQL")

    operator = _FILTER_TO_OPERATOR[name]
    rhs_node = filter_node.children[1]
    if rhs_node.action_type is ActionType.R:
        rhs: object = Query(body=_r_to_select_query(rhs_node, schema))
    else:
        rhs = Literal(_coerce_literal(rhs_node.value))
    return Condition(column=column, operator=operator, rhs=rhs, aggregate=aggregate)


def _coerce_literal(value: object) -> str | int | float:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float, str)):
        return value
    raise TranslationError(f"unsupported literal payload: {value!r}")


def _split_where_having(
    expr: ConditionExpr,
) -> tuple[ConditionExpr | None, ConditionExpr | None]:
    """Split a merged filter tree back into WHERE and HAVING.

    Top-level AND conjuncts route individually (aggregated -> HAVING);
    any other shape routes wholesale by whether it contains an aggregate.
    """
    def has_aggregate(node: ConditionExpr) -> bool:
        if isinstance(node, Condition):
            return node.aggregate is not AggregateFunction.NONE
        return any(has_aggregate(op) for op in node.operands)

    conjuncts: list[ConditionExpr]
    if isinstance(expr, BooleanExpr) and expr.connector == "and":
        conjuncts = list(expr.operands)
    else:
        conjuncts = [expr]

    where_parts = [c for c in conjuncts if not has_aggregate(c)]
    having_parts = [c for c in conjuncts if has_aggregate(c)]

    def combine(parts: list[ConditionExpr]) -> ConditionExpr | None:
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return BooleanExpr("and", tuple(parts))

    return combine(where_parts), combine(having_parts)


def _infer_group_by(
    select_items: list[SelectItem], having: ConditionExpr | None
) -> list[ColumnRef]:
    has_aggregated = any(
        item.aggregate is not AggregateFunction.NONE for item in select_items
    )
    plain = [
        item.column
        for item in select_items
        if item.aggregate is AggregateFunction.NONE and not item.column.is_star()
    ]
    if (has_aggregated or having is not None) and plain:
        return plain
    return []
