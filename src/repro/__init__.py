"""Reproduction of ValueNet (Brunner & Stockinger, ICDE 2021).

An end-to-end NL-to-SQL system that learns from database information:
value extraction, candidate generation/validation against base data, a
transformer encoder over question + schema + value candidates, a
grammar-constrained LSTM decoder over SemQL 2.0 with pointer networks, and
deterministic post-processing (JOIN inference, value formatting) --
evaluated with Spider-style Execution Accuracy on a synthetic
Spider-like corpus.

Typical usage::

    from repro import (
        generate_corpus, CorpusConfig, ValueNetModel, Trainer,
        ValueNetPipeline, build_vocabulary,
    )

See README.md for the full quickstart and DESIGN.md for the system
inventory and the per-experiment index.
"""

from repro.config import ModelConfig, TrainingConfig
from repro.db import Database
from repro.errors import ReproError
from repro.evaluation import (
    AccuracyReport,
    Hardness,
    ValueDifficulty,
    evaluate_pipeline,
    exact_match,
    measure_extraction_coverage,
)
from repro.model import (
    Trainer,
    ValueNetModel,
    build_preprocessors,
    build_vocabulary,
    prepare_samples,
)
from repro.pipeline import (
    TranslationResult,
    ValueNetLightPipeline,
    ValueNetPipeline,
)
from repro.preprocessing import Preprocessor
from repro.schema import Schema
from repro.spider import CorpusConfig, SpiderCorpus, generate_corpus, load_corpus

__version__ = "1.0.0"

__all__ = [
    "AccuracyReport",
    "CorpusConfig",
    "Database",
    "Hardness",
    "ModelConfig",
    "Preprocessor",
    "ReproError",
    "Schema",
    "SpiderCorpus",
    "Trainer",
    "TrainingConfig",
    "TranslationResult",
    "ValueDifficulty",
    "ValueNetLightPipeline",
    "ValueNetModel",
    "ValueNetPipeline",
    "build_preprocessors",
    "build_vocabulary",
    "evaluate_pipeline",
    "exact_match",
    "generate_corpus",
    "load_corpus",
    "measure_extraction_coverage",
    "prepare_samples",
]
