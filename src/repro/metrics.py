"""Thread-safe metrics: counters, gauges, and latency histograms.

A tiny dependency-free metrics layer in the spirit of the Prometheus
client: the service records per-stage translation latency (building on
:data:`repro.pipeline.STAGES` / :class:`~repro.pipeline.StageTimings`),
cache traffic, queue depth, and batch sizes, and the HTTP layer exposes
the registry both as a Prometheus text exposition and as JSON.

This module is a *foundation* layer: besides serving, the policy
engine, tenancy controller, KB refresher, and cluster supervisor all
record into the same registry, so it must sit below every one of them
in the import layering (see ``analysis-layers.toml``).  It lived at
``repro.serving.metrics`` until PR 10; that path remains as a
re-export shim.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.concurrency import make_lock

# Upper bucket bounds in seconds, tuned for interactive NL-to-SQL latency
# (paper Table II reports per-stage times between ~1 ms and ~2 s).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0  # guarded by: _lock
        self._lock = make_lock(f"Counter[{name}]")

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (e.g. current queue depth)."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0  # guarded by: _lock
        self._lock = make_lock(f"Gauge[{name}]")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    Buckets are cumulative-style upper bounds (Prometheus ``le``
    semantics); observations above the last bound land in the +Inf
    bucket.  :meth:`quantile` linearly interpolates inside the bucket
    containing the target rank, which is exact enough for p50/p95/p99
    reporting at the bucket resolution used here.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help_text = help_text
        self.bounds = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.bounds) + 1)  # +Inf last; guarded by: _lock
        self._sum = 0.0  # guarded by: _lock
        self._count = 0  # guarded by: _lock
        self._max = 0.0  # guarded by: _lock
        self._lock = make_lock(f"Histogram[{name}]")

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0 < q <= 1); 0.0 when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= target:
                    if index >= len(self.bounds):
                        return self._max  # +Inf bucket: best estimate is max
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = self.bounds[index]
                    if bucket_count == 0:  # pragma: no cover - defensive
                        return upper
                    fraction = (target - previous) / bucket_count
                    return min(lower + fraction * (upper - lower), self._max)
            return self._max  # pragma: no cover - unreachable

    def snapshot(self) -> dict:
        with self._lock:
            cumulative, buckets = 0, []
            for bound, bucket_count in zip(self.bounds, self._counts):
                cumulative += bucket_count
                buckets.append({"le": bound, "count": cumulative})
            return {
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
                "buckets": buckets,
            }


# --------------------------------------------------------- labeled metrics
#
# Tenancy needs per-tenant series (`tenant_admitted_total{tenant="acme"}`)
# without pulling in a full label system: a *labeled family* is a named
# group of children keyed by one label value.  Snapshots flatten each
# child to a `name{label="value"}` key, which keeps the cluster-side
# machinery working unchanged — `merge_snapshots` sums/merges the flat
# keys across workers exactly like unlabeled metrics.


def series_key(name: str, label: str, value: str) -> str:
    """The flat snapshot key for one child of a labeled family."""
    return f'{name}{{{label}="{value}"}}'


def split_series_key(key: str) -> tuple[str, str]:
    """``(base_name, label_part)``; label part is "" for plain metrics."""
    if "{" not in key:
        return key, ""
    base, rest = key.split("{", 1)
    return base, rest[:-1] if rest.endswith("}") else rest


class _LabeledFamily:
    """Shared plumbing for labeled counters/histograms."""

    def __init__(self, name: str, help_text: str, label: str, factory):
        self.name = name
        self.help_text = help_text
        self.label = label
        self._factory = factory
        self._children: dict[str, object] = {}  # guarded by: _lock
        self._lock = make_lock(f"LabeledFamily[{name}]")

    def labels(self, value: str):
        """Get-or-create the child metric for one label value."""
        value = str(value)
        with self._lock:
            child = self._children.get(value)
            if child is None:
                child = self._factory(series_key(self.name, self.label, value))
                self._children[value] = child
            return child

    def series(self) -> dict[str, object]:
        """Stable copy of ``{label_value: child}``."""
        with self._lock:
            return dict(self._children)


class LabeledCounter(_LabeledFamily):
    """A family of counters keyed by one label (e.g. ``tenant``)."""

    def __init__(self, name: str, help_text: str = "", label: str = "tenant"):
        super().__init__(
            name, help_text, label, lambda series: Counter(series, help_text)
        )


class LabeledHistogram(_LabeledFamily):
    """A family of histograms keyed by one label (e.g. ``tenant``)."""

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label: str = "tenant",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(
            name, help_text, label,
            lambda series: Histogram(series, help_text, buckets),
        )


# ------------------------------------------------- snapshot-level helpers
#
# The cluster supervisor aggregates metrics across worker *processes*, so
# it works on JSON snapshots (what crosses the IPC boundary), not on live
# metric objects.  Snapshots use the shapes produced by
# :meth:`MetricsRegistry.snapshot`: plain numbers for counters/gauges and
# ``{"count", "sum", "max", "buckets": [{"le", "count"}, ...]}`` dicts for
# histograms (bucket counts are cumulative, Prometheus ``le`` semantics).


def quantile_from_snapshot(data: dict, q: float) -> float:
    """Quantile estimate from a histogram *snapshot* (mirrors
    :meth:`Histogram.quantile`, including the linear interpolation)."""
    if not 0.0 < q <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    count = data.get("count", 0)
    if not count:
        return 0.0
    target = q * count
    previous = 0
    for index, bucket in enumerate(data.get("buckets", ())):
        cumulative = bucket["count"]
        if cumulative >= target:
            in_bucket = cumulative - previous
            lower = data["buckets"][index - 1]["le"] if index > 0 else 0.0
            upper = bucket["le"]
            if in_bucket == 0:  # pragma: no cover - defensive
                return upper
            fraction = (target - previous) / in_bucket
            return min(lower + fraction * (upper - lower), data.get("max", upper))
        previous = cumulative
    return data.get("max", 0.0)  # target rank lives in the +Inf bucket


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge several registry snapshots into one fleet-wide snapshot.

    Counters and gauges sum (queue depths and in-flight gauges add up
    across workers; that is the fleet-wide reading).  Histograms merge
    exactly: cumulative bucket counts, total count, and sum all add,
    ``max`` takes the max, and p50/p95/p99 are re-estimated from the
    merged buckets.  Metrics occurring with mismatched shapes (number in
    one worker, histogram in another) raise — that is a bug, not noise.
    """
    merged: dict[str, object] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if name not in merged:
                if isinstance(value, dict):
                    merged[name] = {
                        "count": value.get("count", 0),
                        "sum": value.get("sum", 0.0),
                        "max": value.get("max", 0.0),
                        "buckets": [dict(b) for b in value.get("buckets", ())],
                    }
                else:
                    merged[name] = float(value)
                continue
            existing = merged[name]
            if isinstance(existing, dict) != isinstance(value, dict):
                raise TypeError(f"metric {name!r} has mismatched kinds across workers")
            if isinstance(existing, dict):
                existing["count"] += value.get("count", 0)
                existing["sum"] += value.get("sum", 0.0)
                existing["max"] = max(existing["max"], value.get("max", 0.0))
                theirs = {b["le"]: b["count"] for b in value.get("buckets", ())}
                for bucket in existing["buckets"]:
                    bucket["count"] += theirs.pop(bucket["le"], 0)
                for le in sorted(theirs):  # bounds only one side knows about
                    existing["buckets"].append({"le": le, "count": theirs[le]})
                    existing["buckets"].sort(key=lambda b: b["le"])
            else:
                merged[name] = existing + float(value)
    for value in merged.values():
        if isinstance(value, dict):
            value["p50"] = quantile_from_snapshot(value, 0.50)
            value["p95"] = quantile_from_snapshot(value, 0.95)
            value["p99"] = quantile_from_snapshot(value, 0.99)
    return merged


def render_snapshot_text(
    snapshot: dict,
    *,
    help_texts: dict[str, str] | None = None,
    kinds: dict[str, str] | None = None,
) -> str:
    """Prometheus text exposition of a (possibly merged) snapshot.

    Metric kind comes from ``kinds`` (base name -> "counter"/"gauge",
    supplied when rendering a live registry); without an entry it is
    recovered from shape and naming: dict values are histograms, scalar
    names ending in ``_total`` are counters (the convention every counter
    in this codebase follows), anything else is a gauge.  Labeled series
    (``name{tenant="x"}`` keys) detect kind from the *base* name and
    render ``# TYPE`` once per family.
    """
    help_texts = help_texts or {}
    kinds = kinds or {}
    lines: list[str] = []
    typed: set[str] = set()
    for name, value in sorted(snapshot.items()):
        base, label_part = split_series_key(name)
        if base in help_texts and base not in typed:
            lines.append(f"# HELP {base} {help_texts[base]}")
        if isinstance(value, dict):
            if base not in typed:
                lines.append(f"# TYPE {base} histogram")
                typed.add(base)
            prefix = f"{label_part}," if label_part else ""
            for bucket in value.get("buckets", ()):
                lines.append(
                    f'{base}_bucket{{{prefix}le="{bucket["le"]:g}"}} '
                    f'{bucket["count"]}'
                )
            lines.append(
                f'{base}_bucket{{{prefix}le="+Inf"}} {value.get("count", 0)}'
            )
            suffix = f"{{{label_part}}}" if label_part else ""
            lines.append(f"{base}_sum{suffix} {value.get('sum', 0.0):g}")
            lines.append(f"{base}_count{suffix} {value.get('count', 0)}")
        else:
            if base not in typed:
                kind = kinds.get(
                    base, "counter" if base.endswith("_total") else "gauge"
                )
                lines.append(f"# TYPE {base} {kind}")
                typed.add(base)
            lines.append(f"{name} {float(value):g}")
    return "\n".join(lines) + "\n"


class MetricsRegistry:
    """Named metric store with get-or-create semantics and exporters."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}  # guarded by: _lock
        self._lock = make_lock("MetricsRegistry._lock")

    def _get_or_create(self, name: str, factory, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is {type(metric).__name__}, "
                    f"not {kind.__name__}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help_text), Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help_text), Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets), Histogram
        )

    def labeled_counter(
        self, name: str, help_text: str = "", label: str = "tenant"
    ) -> LabeledCounter:
        return self._get_or_create(
            name, lambda: LabeledCounter(name, help_text, label), LabeledCounter
        )

    def labeled_histogram(
        self,
        name: str,
        help_text: str = "",
        label: str = "tenant",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> LabeledHistogram:
        return self._get_or_create(
            name,
            lambda: LabeledHistogram(name, help_text, label, buckets),
            LabeledHistogram,
        )

    # ----------------------------------------------------------- exporters

    @staticmethod
    def _snapshot_one(metric) -> object:
        if isinstance(metric, Histogram):
            data = metric.snapshot()
            data["p50"] = metric.quantile(0.50)
            data["p95"] = metric.quantile(0.95)
            data["p99"] = metric.quantile(0.99)
            return data
        return metric.value

    def snapshot(self) -> dict:
        """JSON-friendly dump of every metric.

        Labeled families flatten to one ``name{label="value"}`` key per
        child, so merged cluster snapshots aggregate them per series.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, object] = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, _LabeledFamily):
                for value, child in sorted(metric.series().items()):
                    out[series_key(name, metric.label, value)] = (
                        self._snapshot_one(child)
                    )
            else:
                out[name] = self._snapshot_one(metric)
        return out

    def render_text(self) -> str:
        """Prometheus text exposition (version 0.0.4).

        Delegates to :func:`render_snapshot_text`, so live registries and
        merged cluster snapshots render identically (kind recovery relies
        on the ``_total`` counter convention the lint rule enforces).
        """
        with self._lock:
            metrics = dict(self._metrics)
        help_texts = {
            name: metric.help_text
            for name, metric in metrics.items()
            if metric.help_text
        }
        kinds = {
            name: "counter"
            for name, metric in metrics.items()
            if isinstance(metric, (Counter, LabeledCounter))
        }
        kinds.update(
            (name, "gauge")
            for name, metric in metrics.items()
            if isinstance(metric, Gauge)
        )
        return render_snapshot_text(
            self.snapshot(), help_texts=help_texts, kinds=kinds
        )
