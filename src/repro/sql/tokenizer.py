"""SQL tokenizer for the Spider subset.

Produces a flat token stream for the recursive-descent parser in
:mod:`repro.sql.parser`.  String literals keep their quotes stripped but
remember that they were quoted (so ``'20'`` and ``20`` stay
distinguishable); keywords are recognized case-insensitively.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import SqlParseError

KEYWORDS = {
    "select", "distinct", "from", "as", "join", "inner", "left", "on",
    "where", "and", "or", "not", "in", "like", "between", "group", "order",
    "by", "having", "asc", "desc", "limit", "union", "intersect", "except",
    "count", "sum", "avg", "min", "max",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


@dataclass(frozen=True)
class SqlToken:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords


_TOKEN_RE = re.compile(
    r"""
      (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
    | (?P<number>\d+(?:\.\d+)?)
    | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<operator><=|>=|!=|<>|=|<|>)
    | (?P<punct>[(),.*])
    | (?P<space>\s+)
    """,
    re.VERBOSE,
)


def tokenize_sql(sql: str) -> list[SqlToken]:
    """Tokenize ``sql``; raises :class:`SqlParseError` on unknown characters."""
    tokens: list[SqlToken] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlParseError(
                f"cannot tokenize SQL at position {position}: {sql[position:position + 20]!r}"
            )
        if match.lastgroup == "space":
            position = match.end()
            continue
        text = match.group(0)
        if match.lastgroup == "string":
            quote = text[0]
            inner = text[1:-1].replace(quote * 2, quote)
            tokens.append(SqlToken(TokenType.STRING, inner, position))
        elif match.lastgroup == "number":
            tokens.append(SqlToken(TokenType.NUMBER, text, position))
        elif match.lastgroup == "word":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(SqlToken(TokenType.KEYWORD, lowered, position))
            else:
                tokens.append(SqlToken(TokenType.IDENTIFIER, text, position))
        elif match.lastgroup == "operator":
            value = "!=" if text == "<>" else text
            tokens.append(SqlToken(TokenType.OPERATOR, value, position))
        else:
            tokens.append(SqlToken(TokenType.PUNCT, text, position))
        position = match.end()
    tokens.append(SqlToken(TokenType.END, "", len(sql)))
    return tokens
