"""SQL abstract syntax tree for the Spider SQL subset.

The AST is the meeting point of three components:

* the SQL *parser* turns gold-query strings into this AST (training data
  preparation and exact-match evaluation),
* the SemQL translator converts between this AST and SemQL 2.0 trees,
* the SQL *renderer* turns the AST back into executable SQLite SQL with
  aliases and fully-specified ``ON`` clauses.

Covered subset (everything the Spider queries and the paper's grammar
need): SELECT with aggregations and DISTINCT, multi-table FROM with INNER
JOINs, WHERE/HAVING condition trees with AND/OR, the comparison operators
``= != < > <= >= LIKE NOT LIKE IN NOT IN BETWEEN``, nested sub-queries on
the right-hand side of comparisons, GROUP BY, ORDER BY with LIMIT, and the
compound operators UNION / INTERSECT / EXCEPT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union


class AggregateFunction(enum.Enum):
    """SQL aggregate functions (plus NONE for a bare column)."""

    NONE = "none"
    MAX = "max"
    MIN = "min"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


class Operator(enum.Enum):
    """Comparison operators appearing in WHERE/HAVING conditions."""

    EQ = "="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    LIKE = "like"
    NOT_LIKE = "not like"
    IN = "in"
    NOT_IN = "not in"
    BETWEEN = "between"

    def negated(self) -> "Operator":
        """The logical negation where one exists (used by SemQL)."""
        mapping = {
            Operator.EQ: Operator.NE,
            Operator.NE: Operator.EQ,
            Operator.LT: Operator.GE,
            Operator.GT: Operator.LE,
            Operator.LE: Operator.GT,
            Operator.GE: Operator.LT,
            Operator.LIKE: Operator.NOT_LIKE,
            Operator.NOT_LIKE: Operator.LIKE,
            Operator.IN: Operator.NOT_IN,
            Operator.NOT_IN: Operator.IN,
        }
        if self not in mapping:
            raise ValueError(f"operator {self} has no negation")
        return mapping[self]


class SetOperator(enum.Enum):
    """Compound query operators."""

    UNION = "union"
    INTERSECT = "intersect"
    EXCEPT = "except"


class OrderDirection(enum.Enum):
    ASC = "asc"
    DESC = "desc"


@dataclass(frozen=True)
class ColumnRef:
    """A reference to ``table.column`` with the table name fully resolved.

    ``table`` is ``None`` only for the ``*`` column of a single-table query
    where qualification is unnecessary.
    """

    table: str | None
    column: str

    def is_star(self) -> bool:
        return self.column == "*"

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Literal:
    """A literal value (string or number) as it appears in the SQL text."""

    value: str | int | float

    def is_number(self) -> bool:
        return isinstance(self.value, (int, float))

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class SelectItem:
    """One projection: an optional aggregate applied to a column."""

    column: ColumnRef
    aggregate: AggregateFunction = AggregateFunction.NONE
    distinct: bool = False


# A condition's right-hand side is a literal, a pair of literals (BETWEEN),
# or a nested query.
ConditionRhs = Union[Literal, tuple[Literal, Literal], "Query"]


@dataclass(frozen=True)
class Condition:
    """A leaf predicate ``[agg(]column[)] op rhs``.

    ``aggregate`` is only populated in HAVING clauses (``count(*) > 5``).
    """

    column: ColumnRef
    operator: Operator
    rhs: ConditionRhs
    aggregate: AggregateFunction = AggregateFunction.NONE

    def rhs_is_query(self) -> bool:
        return isinstance(self.rhs, Query)


@dataclass(frozen=True)
class BooleanExpr:
    """AND/OR combination of conditions, kept flat (left-deep in SQL text)."""

    connector: str  # "and" | "or"
    operands: tuple["ConditionExpr", ...]

    def __post_init__(self) -> None:
        if self.connector not in ("and", "or"):
            raise ValueError(f"unknown boolean connector {self.connector!r}")
        if len(self.operands) < 2:
            raise ValueError("BooleanExpr needs at least two operands")


ConditionExpr = Union[Condition, BooleanExpr]


@dataclass(frozen=True)
class OrderBy:
    """ORDER BY a list of (aggregated) columns with one shared direction."""

    items: tuple[SelectItem, ...]
    direction: OrderDirection = OrderDirection.ASC


@dataclass
class SelectQuery:
    """A single (non-compound) SELECT statement.

    ``tables`` lists every table in the FROM clause in join order; join
    conditions are *not* stored here — the renderer re-derives them from
    the schema graph, exactly like ValueNet's post-processing does.
    """

    select: list[SelectItem]
    tables: list[str]
    distinct: bool = False
    where: ConditionExpr | None = None
    group_by: list[ColumnRef] = field(default_factory=list)
    having: ConditionExpr | None = None
    order_by: OrderBy | None = None
    limit: int | None = None


@dataclass
class Query:
    """A possibly-compound query: ``body [set_op compound]``."""

    body: SelectQuery
    set_operator: SetOperator | None = None
    compound: "Query | None" = None

    def __post_init__(self) -> None:
        if (self.set_operator is None) != (self.compound is None):
            raise ValueError("set_operator and compound must be set together")

    def is_compound(self) -> bool:
        return self.set_operator is not None

    def all_select_queries(self) -> list[SelectQuery]:
        """Flatten the compound chain into its SELECT bodies."""
        queries = [self.body]
        if self.compound is not None:
            queries.extend(self.compound.all_select_queries())
        return queries


def iter_conditions(expr: ConditionExpr | None):
    """Yield every leaf :class:`Condition` in a condition tree."""
    if expr is None:
        return
    if isinstance(expr, Condition):
        yield expr
        return
    for operand in expr.operands:
        yield from iter_conditions(operand)


def iter_literals(query: Query):
    """Yield every :class:`Literal` in the query, sub-queries included."""
    for select_query in query.all_select_queries():
        for expr in (select_query.where, select_query.having):
            for condition in iter_conditions(expr):
                rhs = condition.rhs
                if isinstance(rhs, Literal):
                    yield rhs
                elif isinstance(rhs, tuple):
                    yield from rhs
                elif isinstance(rhs, Query):
                    yield from iter_literals(rhs)
        if select_query.limit is not None:
            yield Literal(select_query.limit)
