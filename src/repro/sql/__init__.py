"""SQL AST, renderer, tokenizer and parser for the Spider SQL subset."""

from repro.sql.ast import (
    AggregateFunction,
    BooleanExpr,
    ColumnRef,
    Condition,
    ConditionExpr,
    Literal,
    Operator,
    OrderBy,
    OrderDirection,
    Query,
    SelectItem,
    SelectQuery,
    SetOperator,
    iter_conditions,
    iter_literals,
)
from repro.sql.parser import parse_sql
from repro.sql.render import SqlRenderer, quote_string, render_literal
from repro.sql.tokenizer import SqlToken, TokenType, tokenize_sql

__all__ = [
    "AggregateFunction",
    "BooleanExpr",
    "ColumnRef",
    "Condition",
    "ConditionExpr",
    "Literal",
    "Operator",
    "OrderBy",
    "OrderDirection",
    "Query",
    "SelectItem",
    "SelectQuery",
    "SetOperator",
    "SqlRenderer",
    "SqlToken",
    "TokenType",
    "iter_conditions",
    "iter_literals",
    "parse_sql",
    "quote_string",
    "render_literal",
    "tokenize_sql",
]
