"""SQL AST, renderer, tokenizer and parser for the Spider SQL subset."""

from repro.sql.ast import (
    AggregateFunction,
    BooleanExpr,
    ColumnRef,
    Condition,
    ConditionExpr,
    Literal,
    Operator,
    OrderBy,
    OrderDirection,
    Query,
    SelectItem,
    SelectQuery,
    SetOperator,
    iter_conditions,
    iter_literals,
)
from repro.sql.dialect import (
    Dialect,
    MysqlDialect,
    PostgresDialect,
    SqliteDialect,
    dialect_names,
    get_dialect,
)
from repro.sql.parser import parse_sql
from repro.sql.render import SqlRenderer, quote_string, render_literal, render_sql
from repro.sql.tokenizer import SqlToken, TokenType, tokenize_sql

__all__ = [
    "AggregateFunction",
    "BooleanExpr",
    "ColumnRef",
    "Condition",
    "ConditionExpr",
    "Dialect",
    "Literal",
    "MysqlDialect",
    "Operator",
    "OrderBy",
    "OrderDirection",
    "PostgresDialect",
    "Query",
    "SelectItem",
    "SelectQuery",
    "SetOperator",
    "SqlRenderer",
    "SqliteDialect",
    "SqlToken",
    "TokenType",
    "dialect_names",
    "get_dialect",
    "iter_conditions",
    "iter_literals",
    "parse_sql",
    "quote_string",
    "render_literal",
    "render_sql",
    "tokenize_sql",
]
