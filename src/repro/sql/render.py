"""Render the SQL AST into executable SQL for a target dialect.

The renderer performs the deterministic post-processing the paper describes
in Section III-C: it infers the full JOIN path over the PK/FK schema graph
(including bridge tables that the model never predicted) and emits complete
``ON`` clauses, because under Execution Accuracy a bare ``A JOIN B`` is a
cross join and the query result would be wrong.

Tables receive aliases ``T1 .. Tn`` (matching the Spider gold-query style)
whenever more than one table participates in a FROM clause.

Everything that differs between engines — identifier quoting, string
escaping, operator spelling (``LIKE`` vs ``ILIKE``), the LIMIT form —
is delegated to a :class:`repro.sql.dialect.Dialect`.  The default
SQLite dialect reproduces the legacy renderer byte for byte; that lock
is enforced by the differential suite in ``tests/test_dialect.py``.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.schema.graph import SchemaGraph
from repro.schema.joins import plan_joins
from repro.sql.ast import (
    AggregateFunction,
    BooleanExpr,
    ColumnRef,
    Condition,
    ConditionExpr,
    Literal,
    OrderBy,
    Query,
    SelectItem,
    SelectQuery,
)
from repro.sql.dialect import Dialect, get_dialect


def quote_string(value: str, dialect: str | Dialect | None = None) -> str:
    """Quote a string literal for ``dialect`` (default SQLite)."""
    return get_dialect(dialect).quote_string(value)


def render_literal(literal: Literal, dialect: str | Dialect | None = None) -> str:
    """Render a literal: numbers bare, strings quoted per dialect."""
    resolved = get_dialect(dialect)
    value = literal.value
    if isinstance(value, bool):
        return resolved.render_boolean(value)
    if value is None:
        return resolved.render_null()
    if literal.is_number():
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    return resolved.quote_string(str(value))


def render_sql(query: Query, graph: SchemaGraph, dialect: str | Dialect | None = None) -> str:
    """Render ``query`` against ``graph`` in the given dialect (default SQLite)."""
    return SqlRenderer(graph, dialect=dialect).render(query)


class SqlRenderer:
    """Stateless renderer bound to one schema graph and one dialect."""

    def __init__(self, graph: SchemaGraph, dialect: str | Dialect | None = None):
        self._graph = graph
        self._dialect = get_dialect(dialect)

    @property
    def dialect(self) -> Dialect:
        return self._dialect

    # ------------------------------------------------------------- public

    def render(self, query: Query) -> str:
        """Render a (possibly compound) query to a SQL string."""
        sql = self._render_select_query(query.body)
        if query.set_operator is not None and query.compound is not None:
            sql = f"{sql} {query.set_operator.value.upper()} {self.render(query.compound)}"
        return sql

    # ------------------------------------------------------------ helpers

    def _render_select_query(self, query: SelectQuery) -> str:
        if not query.tables:
            raise TranslationError("query has no FROM tables")

        plan = plan_joins(self._graph, query.tables)
        aliases = self._build_aliases(plan.tables)

        parts = [self._render_select_clause(query, aliases)]
        parts.append(self._render_from_clause(plan, aliases))
        if query.where is not None:
            parts.append("WHERE " + self._render_condition(query.where, aliases))
        if query.group_by:
            rendered = ", ".join(self._render_column(c, aliases) for c in query.group_by)
            parts.append("GROUP BY " + rendered)
        if query.having is not None:
            parts.append("HAVING " + self._render_condition(query.having, aliases))
        if query.order_by is not None:
            parts.append(self._render_order_by(query.order_by, aliases))
        if query.limit is not None:
            parts.append(self._dialect.render_limit(query.limit))
        return " ".join(parts)

    @staticmethod
    def _build_aliases(tables: tuple[str, ...]) -> dict[str, str]:
        """Map lower-cased table name -> alias (or the bare name if single)."""
        if len(tables) == 1:
            return {tables[0].lower(): tables[0]}
        return {
            table.lower(): f"T{i + 1}" for i, table in enumerate(tables)
        }

    def _render_select_clause(self, query: SelectQuery, aliases: dict[str, str]) -> str:
        items = ", ".join(self._render_select_item(item, aliases) for item in query.select)
        distinct = "DISTINCT " if query.distinct else ""
        return f"SELECT {distinct}{items}"

    def _render_select_item(self, item: SelectItem, aliases: dict[str, str]) -> str:
        if item.column.is_star() and item.aggregate is not AggregateFunction.NONE:
            # SQLite rejects COUNT(T1.*); a qualified star inside an
            # aggregate renders as the bare star (the qualifying table still
            # participates in the FROM clause via the join plan).
            column = "*"
        else:
            column = self._render_column(item.column, aliases)
        if item.aggregate is AggregateFunction.NONE:
            return column
        inner = f"DISTINCT {column}" if item.distinct else column
        return f"{item.aggregate.value.upper()}({inner})"

    def _render_column(self, column: ColumnRef, aliases: dict[str, str]) -> str:
        if column.is_star() and column.table is None:
            return "*"
        if column.table is None:
            return self._dialect.quote_identifier(column.column)
        alias = aliases.get(column.table.lower())
        if alias is None:
            # Column references a table outside the FROM clause; render it
            # qualified with the raw table name so the error is visible in
            # the SQL instead of silently mis-binding.
            alias = column.table
        quoted_alias = self._dialect.quote_identifier(alias)
        return f"{quoted_alias}.{self._dialect.quote_identifier(column.column)}"

    def _render_from_clause(self, plan, aliases: dict[str, str]) -> str:
        quote = self._dialect.quote_identifier
        first = plan.tables[0]
        if len(plan.tables) == 1:
            return f"FROM {quote(first)}"
        rendered = [f"FROM {quote(first)} AS {quote(aliases[first.lower()])}"]
        for table, edge in zip(plan.tables[1:], plan.edges):
            left_alias = quote(aliases[edge.left_table.lower()])
            right_alias = quote(aliases[edge.right_table.lower()])
            condition = edge.condition(left_alias, right_alias)
            rendered.append(
                f"JOIN {quote(table)} AS {quote(aliases[table.lower()])} ON {condition}"
            )
        return " ".join(rendered)

    def _render_condition(self, expr: ConditionExpr, aliases: dict[str, str]) -> str:
        if isinstance(expr, BooleanExpr):
            rendered = [self._render_operand(op, aliases) for op in expr.operands]
            return f" {expr.connector.upper()} ".join(rendered)
        return self._render_leaf(expr, aliases)

    def _render_operand(self, expr: ConditionExpr, aliases: dict[str, str]) -> str:
        rendered = self._render_condition(expr, aliases)
        if isinstance(expr, BooleanExpr):
            return f"({rendered})"
        return rendered

    def _render_leaf(self, condition: Condition, aliases: dict[str, str]) -> str:
        column = self._render_column(condition.column, aliases)
        if condition.aggregate is not AggregateFunction.NONE:
            column = f"{condition.aggregate.value.upper()}({column})"
        operator = self._dialect.render_operator(condition.operator)

        rhs = condition.rhs
        if isinstance(rhs, tuple):
            low, high = rhs
            low_sql = render_literal(low, self._dialect)
            high_sql = render_literal(high, self._dialect)
            return f"{column} BETWEEN {low_sql} AND {high_sql}"
        if isinstance(rhs, Query):
            return f"{column} {operator} ({self.render(rhs)})"
        return f"{column} {operator} {render_literal(rhs, self._dialect)}"

    def _render_order_by(self, order_by: OrderBy, aliases: dict[str, str]) -> str:
        items = ", ".join(
            self._render_select_item(item, aliases) for item in order_by.items
        )
        return f"ORDER BY {items} {order_by.direction.value.upper()}"
