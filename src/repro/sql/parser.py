"""Recursive-descent SQL parser for the Spider subset.

The parser resolves table aliases (``student AS T1``) back to physical
table names and binds unqualified column references against the schema, so
the resulting :class:`~repro.sql.ast.Query` contains only resolved
``table.column`` references.  JOIN ``ON`` conditions are parsed and then
*discarded*: the renderer re-derives them from the PK/FK schema graph,
which is exactly the deterministic post-processing ValueNet applies.

Grammar (informal)::

    query       := select_query (UNION|INTERSECT|EXCEPT query)?
    select_query:= SELECT [DISTINCT] select_item (, select_item)*
                   FROM table_ref (JOIN table_ref ON cond)*
                   [WHERE cond_expr] [GROUP BY col (, col)*]
                   [HAVING cond_expr] [ORDER BY item (, item)* [ASC|DESC]]
                   [LIMIT n]
    cond_expr   := cond ((AND|OR) cond)*
    cond        := [agg(] col [)] op rhs | col BETWEEN lit AND lit
    rhs         := literal | ( query )
"""

from __future__ import annotations

from repro.errors import SqlParseError
from repro.schema.model import Schema
from repro.sql.ast import (
    AggregateFunction,
    BooleanExpr,
    ColumnRef,
    Condition,
    ConditionExpr,
    Literal,
    Operator,
    OrderBy,
    OrderDirection,
    Query,
    SelectItem,
    SelectQuery,
    SetOperator,
)
from repro.sql.tokenizer import SqlToken, TokenType, tokenize_sql

_AGGREGATES = {"count", "sum", "avg", "min", "max"}
_SET_OPERATORS = {
    "union": SetOperator.UNION,
    "intersect": SetOperator.INTERSECT,
    "except": SetOperator.EXCEPT,
}


def parse_sql(sql: str, schema: Schema) -> Query:
    """Parse ``sql`` against ``schema`` into a resolved :class:`Query`."""
    return _Parser(tokenize_sql(sql), schema, sql).parse_query(top_level=True)


class _Parser:
    def __init__(self, tokens: list[SqlToken], schema: Schema, sql: str):
        self._tokens = tokens
        self._schema = schema
        self._sql = sql
        self._position = 0

    # ----------------------------------------------------------- plumbing

    def _peek(self) -> SqlToken:
        return self._tokens[self._position]

    def _advance(self) -> SqlToken:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> SqlToken:
        token = self._advance()
        if not token.is_keyword(keyword):
            raise SqlParseError(
                f"expected {keyword.upper()!r} at position {token.position} "
                f"in {self._sql!r}, got {token.value!r}"
            )
        return token

    def _expect_punct(self, punct: str) -> SqlToken:
        token = self._advance()
        if token.type is not TokenType.PUNCT or token.value != punct:
            raise SqlParseError(
                f"expected {punct!r} at position {token.position} "
                f"in {self._sql!r}, got {token.value!r}"
            )
        return token

    def _error(self, message: str) -> SqlParseError:
        token = self._peek()
        return SqlParseError(
            f"{message} at position {token.position} in {self._sql!r} "
            f"(next token: {token.value!r})"
        )

    # -------------------------------------------------------------- query

    def parse_query(self, *, top_level: bool = False) -> Query:
        body, aliases = self._parse_select_query()
        query = Query(body=body)
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in _SET_OPERATORS:
            self._advance()
            query = Query(
                body=body,
                set_operator=_SET_OPERATORS[token.value],
                compound=self.parse_query(),
            )
        if top_level:
            tail = self._peek()
            if tail.type is not TokenType.END:
                raise self._error("unexpected trailing tokens")
        return query

    def _parse_select_query(self) -> tuple[SelectQuery, dict[str, str]]:
        self._expect_keyword("select")
        distinct = False
        if self._peek().is_keyword("distinct"):
            self._advance()
            distinct = True

        # SELECT items are parsed with *unresolved* column references first;
        # we cannot bind them until the FROM clause told us the tables.
        raw_select = [self._parse_raw_select_item()]
        while self._is_punct(","):
            self._advance()
            raw_select.append(self._parse_raw_select_item())

        self._expect_keyword("from")
        tables, aliases = self._parse_from_clause()

        where = None
        if self._peek().is_keyword("where"):
            self._advance()
            where = self._parse_condition_expr(tables, aliases)

        group_by: list[ColumnRef] = []
        if self._peek().is_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            group_by.append(self._resolve_raw_column(self._parse_raw_column(), tables, aliases))
            while self._is_punct(","):
                self._advance()
                group_by.append(
                    self._resolve_raw_column(self._parse_raw_column(), tables, aliases)
                )

        having = None
        if self._peek().is_keyword("having"):
            self._advance()
            having = self._parse_condition_expr(tables, aliases)

        order_by = None
        if self._peek().is_keyword("order"):
            self._advance()
            self._expect_keyword("by")
            items = [self._parse_raw_select_item()]
            while self._is_punct(","):
                self._advance()
                items.append(self._parse_raw_select_item())
            direction = OrderDirection.ASC
            if self._peek().is_keyword("asc", "desc"):
                direction = OrderDirection(self._advance().value)
            order_by = OrderBy(
                items=tuple(
                    self._resolve_raw_select_item(item, tables, aliases)
                    for item in items
                ),
                direction=direction,
            )

        limit = None
        if self._peek().is_keyword("limit"):
            self._advance()
            token = self._advance()
            if token.type is not TokenType.NUMBER:
                raise self._error("LIMIT expects a number")
            limit = int(token.value)

        select = [
            self._resolve_raw_select_item(item, tables, aliases)
            for item in raw_select
        ]
        return (
            SelectQuery(
                select=select,
                tables=tables,
                distinct=distinct,
                where=where,
                group_by=group_by,
                having=having,
                order_by=order_by,
                limit=limit,
            ),
            aliases,
        )

    # --------------------------------------------------------------- FROM

    def _parse_from_clause(self) -> tuple[list[str], dict[str, str]]:
        tables: list[str] = []
        aliases: dict[str, str] = {}

        def parse_table_ref() -> None:
            token = self._advance()
            if token.type is not TokenType.IDENTIFIER:
                raise self._error("expected table name in FROM")
            if not self._schema.has_table(token.value):
                raise SqlParseError(
                    f"unknown table {token.value!r} in schema {self._schema.name!r}"
                )
            table_name = self._schema.table(token.value).name
            tables.append(table_name)
            aliases[table_name.lower()] = table_name
            if self._peek().is_keyword("as"):
                self._advance()
                alias = self._advance()
                if alias.type is not TokenType.IDENTIFIER:
                    raise self._error("expected alias after AS")
                aliases[alias.value.lower()] = table_name

        parse_table_ref()
        while True:
            token = self._peek()
            if token.is_keyword("inner", "left"):
                self._advance()
                self._expect_keyword("join")
            elif token.is_keyword("join"):
                self._advance()
            else:
                break
            parse_table_ref()
            if self._peek().is_keyword("on"):
                self._advance()
                # Parse and discard the ON condition chain; the renderer
                # re-derives join conditions from the schema graph.
                self._parse_raw_column()
                operator = self._advance()
                if operator.type is not TokenType.OPERATOR:
                    raise self._error("expected comparison in ON clause")
                self._parse_raw_column()
                while self._peek().is_keyword("and"):
                    self._advance()
                    self._parse_raw_column()
                    operator = self._advance()
                    if operator.type is not TokenType.OPERATOR:
                        raise self._error("expected comparison in ON clause")
                    self._parse_raw_column()
        return tables, aliases

    # ------------------------------------------------------------ columns

    def _parse_raw_column(self) -> tuple[str | None, str]:
        """Parse ``[qualifier.]column`` or ``*``; returns (qualifier, name)."""
        token = self._advance()
        if token.type is TokenType.PUNCT and token.value == "*":
            return None, "*"
        if token.type is not TokenType.IDENTIFIER:
            raise self._error("expected column reference")
        qualifier: str | None = None
        name = token.value
        if self._is_punct("."):
            self._advance()
            qualifier = name
            token = self._advance()
            if token.type is TokenType.PUNCT and token.value == "*":
                name = "*"
            elif token.type is TokenType.IDENTIFIER:
                name = token.value
            else:
                raise self._error("expected column name after '.'")
        return qualifier, name

    def _resolve_raw_column(
        self,
        raw: tuple[str | None, str],
        tables: list[str],
        aliases: dict[str, str],
    ) -> ColumnRef:
        qualifier, name = raw
        if qualifier is not None:
            table = aliases.get(qualifier.lower())
            if table is None:
                raise SqlParseError(
                    f"unknown table alias {qualifier!r} in {self._sql!r}"
                )
            if name == "*":
                return ColumnRef(table, "*")
            column = self._schema.table(table).column(name)
            return ColumnRef(table, column.name)
        if name == "*":
            return ColumnRef(None, "*")
        owners = [t for t in tables if self._schema.table(t).has_column(name)]
        if not owners:
            raise SqlParseError(
                f"column {name!r} not found in FROM tables {tables!r}"
            )
        # Ambiguous unqualified columns bind to the first FROM table, which
        # matches SQLite's behaviour for Spider-style gold queries.
        column = self._schema.table(owners[0]).column(name)
        return ColumnRef(owners[0], column.name)

    # ------------------------------------------------------- select items

    def _parse_raw_select_item(self):
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            aggregate = AggregateFunction(self._advance().value)
            self._expect_punct("(")
            distinct = False
            if self._peek().is_keyword("distinct"):
                self._advance()
                distinct = True
            raw_column = self._parse_raw_column()
            self._expect_punct(")")
            return (aggregate, raw_column, distinct)
        return (AggregateFunction.NONE, self._parse_raw_column(), False)

    def _resolve_raw_select_item(self, raw, tables, aliases) -> SelectItem:
        aggregate, raw_column, distinct = raw
        return SelectItem(
            column=self._resolve_raw_column(raw_column, tables, aliases),
            aggregate=aggregate,
            distinct=distinct,
        )

    # ----------------------------------------------------- condition expr

    def _parse_condition_expr(
        self, tables: list[str], aliases: dict[str, str]
    ) -> ConditionExpr:
        operands: list[ConditionExpr] = [self._parse_condition(tables, aliases)]
        connectors: list[str] = []
        while self._peek().is_keyword("and", "or"):
            connectors.append(self._advance().value)
            operands.append(self._parse_condition(tables, aliases))
        if not connectors:
            return operands[0]
        if all(c == connectors[0] for c in connectors):
            return BooleanExpr(connectors[0], tuple(operands))
        # Mixed AND/OR without parentheses: SQL gives AND higher precedence.
        or_groups: list[ConditionExpr] = []
        current: list[ConditionExpr] = [operands[0]]
        for connector, operand in zip(connectors, operands[1:]):
            if connector == "and":
                current.append(operand)
            else:
                or_groups.append(
                    current[0] if len(current) == 1 else BooleanExpr("and", tuple(current))
                )
                current = [operand]
        or_groups.append(
            current[0] if len(current) == 1 else BooleanExpr("and", tuple(current))
        )
        return BooleanExpr("or", tuple(or_groups))

    def _parse_condition(
        self, tables: list[str], aliases: dict[str, str]
    ) -> Condition:
        aggregate = AggregateFunction.NONE
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            aggregate = AggregateFunction(self._advance().value)
            self._expect_punct("(")
            raw_column = self._parse_raw_column()
            self._expect_punct(")")
        else:
            raw_column = self._parse_raw_column()
        column = self._resolve_raw_column(raw_column, tables, aliases)

        negated = False
        if self._peek().is_keyword("not"):
            self._advance()
            negated = True

        token = self._advance()
        if token.type is TokenType.OPERATOR:
            op = Operator(token.value)
            if negated:
                op = op.negated()
            rhs = self._parse_rhs()
            return Condition(column=column, operator=op, rhs=rhs, aggregate=aggregate)

        if token.is_keyword("like"):
            op = Operator.NOT_LIKE if negated else Operator.LIKE
            rhs = self._parse_rhs()
            return Condition(column=column, operator=op, rhs=rhs, aggregate=aggregate)
        if token.is_keyword("in"):
            op = Operator.NOT_IN if negated else Operator.IN
            rhs = self._parse_rhs()
            return Condition(column=column, operator=op, rhs=rhs, aggregate=aggregate)
        if token.is_keyword("between"):
            low = self._parse_literal()
            self._expect_keyword("and")
            high = self._parse_literal()
            return Condition(
                column=column,
                operator=Operator.BETWEEN,
                rhs=(low, high),
                aggregate=aggregate,
            )
        raise self._error("expected comparison operator")

    def _parse_rhs(self):
        if self._is_punct("("):
            self._advance()
            if self._peek().is_keyword("select"):
                query = self.parse_query()
                self._expect_punct(")")
                return query
            literal = self._parse_literal()
            self._expect_punct(")")
            return literal
        return self._parse_literal()

    def _parse_literal(self) -> Literal:
        token = self._advance()
        if token.type is TokenType.NUMBER:
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.type is TokenType.STRING:
            return Literal(token.value)
        raise self._error("expected a literal value")

    def _is_punct(self, punct: str) -> bool:
        token = self._peek()
        return token.type is TokenType.PUNCT and token.value == punct
