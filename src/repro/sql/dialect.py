"""Pluggable SQL dialects: quoting, escaping, LIMIT and LIKE semantics.

The renderer (:mod:`repro.sql.render`) walks the AST once and delegates
every surface decision that differs between engines to a
:class:`Dialect`:

* **identifier quoting** — bare identifiers stay bare (that is what the
  byte-equality lock against the legacy SQLite renderer requires); an
  identifier that is not a safe bare word, or that collides with a
  reserved word of the target engine, is quoted with the dialect's
  quote character (``"`` for SQLite/PostgreSQL, backtick for MySQL).
* **string-literal escaping** — all three dialects double embedded
  single quotes.  MySQL additionally treats backslash as an escape
  character (``NO_BACKSLASH_ESCAPES`` off, the default), so backslashes
  are doubled and NUL renders as ``\\0``.  PostgreSQL text values cannot
  contain NUL at all — rendering one raises instead of emitting a
  literal that the server would reject with a confusing parse error.
  SQLite string literals cannot *express* NUL, but TEXT values may
  contain it, so the SQLite dialect falls back to a hex-blob cast.
* **LIMIT/OFFSET form** — all three supported engines accept
  ``LIMIT n``; the hook exists so a ``TOP n``/``FETCH FIRST`` engine
  can be added without touching the renderer.
* **LIKE case semantics** — SQLite's ``LIKE`` is case-insensitive for
  ASCII (and MySQL's default collation behaves the same), which is the
  semantics ValueNet's value grounding was built against.  PostgreSQL's
  ``LIKE`` is case-*sensitive*, so the Postgres dialect renders
  ``LIKE``/``NOT LIKE`` as ``ILIKE``/``NOT ILIKE`` to preserve query
  meaning across backends.
* **boolean / NULL rendering** — SQLite has no boolean literals
  (``1``/``0``); PostgreSQL and MySQL render ``TRUE``/``FALSE``.
  ``None`` renders as ``NULL`` everywhere.

Dialects are stateless; module-level singletons are handed out by
:func:`get_dialect`.
"""

from __future__ import annotations

import re

from repro.errors import TranslationError
from repro.sql.ast import Operator

#: An identifier that may be emitted without quoting in any dialect.
_SAFE_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Dialect:
    """Base dialect: SQLite-compatible defaults, subclass per engine.

    Subclasses override the class attributes (and, rarely, the escape
    methods); the renderer only ever calls the public methods.
    """

    #: Registry / selection name (``dialect=`` on requests and configs).
    name = "generic"
    #: Character wrapping quoted identifiers (doubled to escape).
    identifier_quote = '"'
    #: Reserved words that force identifier quoting even for safe words.
    reserved_words: frozenset[str] = frozenset()
    #: Whether backslash is an escape character inside string literals.
    backslash_escapes = False
    #: Whether the engine's LIKE is case-insensitive (ASCII) by default.
    like_is_case_insensitive = True

    # -------------------------------------------------------- identifiers

    def quote_identifier(self, name: str) -> str:
        """Quote ``name`` only when required.

        Safe bare words that are not reserved stay bare — the SQLite
        dialect therefore reproduces the legacy renderer byte for byte
        on every identifier the Spider-subset parser can produce.
        """
        if _SAFE_IDENTIFIER_RE.match(name) and name.lower() not in self.reserved_words:
            return name
        quote = self.identifier_quote
        return quote + name.replace(quote, quote + quote) + quote

    # ------------------------------------------------------------ strings

    def quote_string(self, value: str) -> str:
        """Render ``value`` as a string literal for this dialect."""
        if "\x00" in value:
            return self._quote_string_with_nul(value)
        escaped = value.replace("'", "''")
        if self.backslash_escapes:
            # Order matters: double backslashes first, then quotes would
            # be wrong (the doubled quote contains no backslash, but a
            # pre-existing backslash-quote pair must not merge) — so
            # backslashes are doubled on the raw value before quote
            # doubling, which never introduces new backslashes.
            escaped = value.replace("\\", "\\\\").replace("'", "''")
        return "'" + escaped + "'"

    def _quote_string_with_nul(self, value: str) -> str:
        raise TranslationError(
            f"dialect {self.name!r} cannot represent NUL inside a string literal"
        )

    # ----------------------------------------------------------- literals

    def render_boolean(self, value: bool) -> str:
        return "TRUE" if value else "FALSE"

    def render_null(self) -> str:
        return "NULL"

    # ---------------------------------------------------------- operators

    def render_operator(self, operator: Operator) -> str:
        """The SQL spelling of a comparison operator in this dialect."""
        return operator.value.upper()

    # -------------------------------------------------------------- forms

    def render_limit(self, limit: int) -> str:
        return f"LIMIT {int(limit)}"


class SqliteDialect(Dialect):
    """SQLite: the source-of-truth dialect the legacy renderer emitted.

    Output is byte-identical to the pre-dialect renderer for every query
    the parser accepts (bare identifiers, ``''`` quote doubling, literal
    backslashes, ``LIMIT n``).
    """

    name = "sqlite"
    # No reserved-word quoting: the legacy renderer never quoted, and the
    # parser cannot produce identifiers that collide with keywords.
    reserved_words = frozenset()

    def _quote_string_with_nul(self, value: str) -> str:
        # A SQLite string literal cannot express NUL, but a TEXT value
        # can hold one: cast the UTF-8 bytes through a hex blob.
        return f"CAST(X'{value.encode('utf-8').hex()}' AS TEXT)"


class PostgresDialect(Dialect):
    """PostgreSQL (``standard_conforming_strings = on``, the default).

    ``LIKE`` is case-sensitive in PostgreSQL; rendering it as ``ILIKE``
    preserves the SQLite semantics the model was trained against.
    """

    name = "postgres"
    reserved_words = frozenset({
        "all", "analyse", "analyze", "and", "any", "array", "as", "asc",
        "asymmetric", "both", "case", "cast", "check", "collate", "column",
        "constraint", "create", "current_date", "current_time",
        "current_timestamp", "current_user", "default", "deferrable", "desc",
        "distinct", "do", "else", "end", "except", "false", "for", "foreign",
        "from", "grant", "group", "having", "in", "initially", "intersect",
        "into", "leading", "limit", "localtime", "localtimestamp", "not",
        "null", "offset", "on", "only", "or", "order", "placing", "primary",
        "references", "returning", "select", "session_user", "some",
        "symmetric", "table", "then", "to", "trailing", "true", "union",
        "unique", "user", "using", "when", "where", "window", "with",
    })
    like_is_case_insensitive = False

    def render_operator(self, operator: Operator) -> str:
        if operator is Operator.LIKE:
            return "ILIKE"
        if operator is Operator.NOT_LIKE:
            return "NOT ILIKE"
        return super().render_operator(operator)


class MysqlDialect(Dialect):
    """MySQL / MariaDB (``NO_BACKSLASH_ESCAPES`` off, the default)."""

    name = "mysql"
    identifier_quote = "`"
    reserved_words = frozenset({
        "add", "all", "alter", "and", "as", "asc", "before", "between",
        "bigint", "binary", "blob", "both", "by", "case", "change", "char",
        "check", "collate", "column", "condition", "constraint", "continue",
        "convert", "create", "cross", "current_date", "current_time",
        "current_timestamp", "current_user", "database", "databases",
        "decimal", "declare", "default", "delete", "desc", "describe",
        "distinct", "div", "double", "drop", "else", "enclosed", "escaped",
        "exists", "exit", "explain", "false", "fetch", "float", "for",
        "force", "foreign", "from", "fulltext", "grant", "group", "having",
        "if", "ignore", "in", "index", "inner", "insert", "int", "integer",
        "interval", "into", "is", "join", "key", "keys", "leading", "left",
        "like", "limit", "lock", "long", "match", "modifies", "natural",
        "not", "null", "on", "optimize", "option", "or", "order", "outer",
        "primary", "procedure", "range", "read", "references", "regexp",
        "rename", "repeat", "replace", "require", "restrict", "return",
        "revoke", "right", "schema", "select", "set", "show", "table",
        "terminated", "then", "to", "trailing", "true", "trigger", "union",
        "unique", "unsigned", "update", "usage", "use", "using", "values",
        "varchar", "when", "where", "while", "with", "write", "xor",
    })
    backslash_escapes = True

    def _quote_string_with_nul(self, value: str) -> str:
        rendered = (
            value.replace("\\", "\\\\").replace("'", "''").replace("\x00", "\\0")
        )
        return "'" + rendered + "'"


_DIALECTS: dict[str, Dialect] = {
    d.name: d for d in (SqliteDialect(), PostgresDialect(), MysqlDialect())
}

DEFAULT_DIALECT = "sqlite"


def dialect_names() -> tuple[str, ...]:
    """Selectable dialect names, stable order."""
    return tuple(sorted(_DIALECTS))


def get_dialect(dialect: str | Dialect | None) -> Dialect:
    """Resolve a dialect by name (``None`` -> SQLite).

    Accepts a :class:`Dialect` instance unchanged so callers can pass
    either form.

    Raises:
        TranslationError: for unknown dialect names (the serving layer
            maps this to a 400, never a 500).
    """
    if dialect is None:
        return _DIALECTS[DEFAULT_DIALECT]
    if isinstance(dialect, Dialect):
        return dialect
    found = _DIALECTS.get(str(dialect).lower())
    if found is None:
        raise TranslationError(
            f"unknown SQL dialect {dialect!r} (known: {', '.join(dialect_names())})"
        )
    return found
