"""Query execution and result-set comparison for Execution Accuracy.

The Spider Execution Accuracy metric "measures if the results of both
predicted and gold query are the same by executing them against a real
database".  Result sets are compared as *multisets of rows* — row order is
irrelevant unless the gold query has an ORDER BY, in which case order
matters (this mirrors the official Spider evaluation script's behaviour).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

from repro.db.database import Database
from repro.errors import ExecutionError


class QueryTimeoutError(ExecutionError):
    """A query exceeded its wall-clock budget and was interrupted."""


class MultiStatementError(ExecutionError):
    """A SQL string contained more than one statement."""


def reject_multi_statement(sql: str) -> None:
    """Raise :class:`MultiStatementError` if ``sql`` holds >1 statement.

    The executor runs *generated* SQL, so this is the last line of
    defense even when the policy layer is disabled or bypassed: a
    statement separator outside quotes followed by anything non-blank
    (``SELECT ...; DROP TABLE ...``) is rejected outright.  A single
    trailing ``;`` is legal.  Quote-aware via :func:`_skip_quoted`, so
    ``'a;b'`` in a literal never false-positives.
    """
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in ("'", '"', "`"):
            i = _skip_quoted(sql, i)
            continue
        if ch == "[":  # SQLite bracket-quoted identifier
            end = sql.find("]", i + 1)
            i = n if end == -1 else end + 1
            continue
        if ch == ";" and sql[i + 1 :].strip():
            raise MultiStatementError(
                f"SQL contains multiple statements (separator at offset {i}): {sql!r}"
            )
        i += 1


# taint: sanitizer via check_sql (single choke point for generated SQL: multi-statement rejection always, policy gate when configured)
def execute_with_budget(
    database: Database,
    sql: str,
    *,
    timeout_s: float | None = None,
    max_rows: int | None = 10_000,
    policy=None,
    tenant_id: str | None = None,
) -> list[tuple]:
    """Execute ``sql`` under a wall-clock budget and a result-row cap.

    Serving runs *generated* SQL: a pathological query (an accidental
    cross join, a filter that SQLite cannot use an index for) can
    otherwise occupy a worker slot for minutes.  A timer thread calls
    :meth:`sqlite3.Connection.interrupt` on the current thread's
    connection when the budget expires — SQLite aborts the running
    statement with "interrupted", surfaced here as
    :class:`QueryTimeoutError` — and ``max_rows`` bounds the result set
    (the cap raises :class:`ExecutionError`, mirroring
    :meth:`Database.execute`).

    ``timeout_s=None`` (or <= 0) disables the timer and degenerates to a
    plain capped execute.  Multi-statement strings are always rejected
    (see :func:`reject_multi_statement`) — sqlite3 would silently run
    only the first statement, which hides injection attempts instead of
    surfacing them.  An optional ``policy``
    (:class:`~repro.policy.engine.PolicyEngine`) runs as the final
    safe-execute gate right here, with whatever ``tenant_id`` context
    the caller has.
    """
    reject_multi_statement(sql)
    if policy is not None:
        policy.check_sql(
            sql,
            database_id=database.schema.name,
            tenant_id=tenant_id,
            schema=database.schema,
        )
    if timeout_s is None or timeout_s <= 0:
        return database.execute(sql, max_rows=max_rows)
    connection = database.connection  # per-thread; interrupt targets it only
    interrupted = threading.Event()

    def _interrupt() -> None:
        interrupted.set()
        try:
            connection.interrupt()
        except Exception:  # pragma: no cover - justified: best-effort interrupt; connection may already be closed
            pass

    timer = threading.Timer(timeout_s, _interrupt)
    timer.daemon = True
    timer.start()
    try:
        return database.execute(sql, max_rows=max_rows)
    except ExecutionError as exc:
        if interrupted.is_set():
            raise QueryTimeoutError(
                f"query exceeded its {timeout_s:.3f}s budget and was "
                f"interrupted: {sql!r}"
            ) from exc
        raise
    finally:
        timer.cancel()


def _normalize_cell(cell: object) -> object:
    """Normalize a result cell so equivalent values compare equal.

    Integral floats collapse to ints (``COUNT`` returns int, ``SUM`` may
    return float) and strings are compared case-sensitively, matching
    SQLite semantics.
    """
    if isinstance(cell, float) and cell.is_integer():
        return int(cell)
    return cell


def normalize_rows(rows: list[tuple]) -> list[tuple]:
    """Apply cell normalization to every row."""
    return [tuple(_normalize_cell(cell) for cell in row) for row in rows]


def rows_equal(
    predicted: list[tuple],
    gold: list[tuple],
    *,
    order_matters: bool = False,
) -> bool:
    """Compare two result sets.

    Args:
        predicted: rows from the predicted query.
        gold: rows from the gold query.
        order_matters: when True (gold query has ORDER BY) rows must match
            positionally; otherwise rows are compared as a multiset.
    """
    predicted_rows = normalize_rows(predicted)
    gold_rows = normalize_rows(gold)
    if order_matters:
        return predicted_rows == gold_rows
    return Counter(predicted_rows) == Counter(gold_rows)


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one predicted/gold query pair."""

    correct: bool
    predicted_error: str | None = None
    gold_error: str | None = None

    @property
    def predicted_failed(self) -> bool:
        return self.predicted_error is not None


def execute_and_compare(
    database: Database,
    predicted_sql: str,
    gold_sql: str,
    *,
    order_matters: bool = False,
) -> ExecutionResult:
    """Execute both queries and compare their result sets.

    A failing *gold* query marks the sample as a dataset error (never
    credited); a failing *predicted* query simply counts as incorrect,
    matching the Spider script.
    """
    try:
        gold_rows = database.execute(gold_sql)
    except ExecutionError as exc:
        return ExecutionResult(correct=False, gold_error=str(exc))
    try:
        predicted_rows = database.execute(predicted_sql)
    except ExecutionError as exc:
        return ExecutionResult(correct=False, predicted_error=str(exc))
    return ExecutionResult(
        correct=rows_equal(predicted_rows, gold_rows, order_matters=order_matters)
    )


def _skip_quoted(text: str, start: int) -> int:
    """Index just past the quoted literal/identifier opening at ``start``.

    Handles SQLite's doubled-quote escape (``'it''s'``); an unterminated
    literal consumes the rest of the string.
    """
    quote = text[start]
    i = start + 1
    n = len(text)
    while i < n:
        if text[i] == quote:
            if i + 1 < n and text[i + 1] == quote:
                i += 2  # doubled quote is an escaped quote, not a close
                continue
            return i + 1
        i += 1
    return n


def gold_orders_rows(gold_sql: str) -> bool:
    """Heuristic: does the gold query's *top level* impose row order?

    An ORDER BY inside a sub-query (``IN (SELECT ... ORDER BY ...)``) does
    not constrain the outer result order.  We check for ORDER BY at paren
    depth zero, skipping quoted literals and identifiers so that a string
    like ``'order by'`` or a ``'('`` inside a value cannot miscount depth
    or false-positive.
    """
    depth = 0
    lowered = gold_sql.lower()
    i = 0
    n = len(lowered)
    while i < n:
        ch = lowered[i]
        if ch in ("'", '"', "`"):
            i = _skip_quoted(lowered, i)
            continue
        if ch == "[":  # SQLite bracket-quoted identifier
            end = lowered.find("]", i + 1)
            i = n if end == -1 else end + 1
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif (
            depth == 0
            and lowered.startswith("order by", i)
            and (i == 0 or not (lowered[i - 1].isalnum() or lowered[i - 1] == "_"))
        ):
            return True
        i += 1
    return False
