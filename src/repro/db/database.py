"""SQLite-backed database with schema-aware helpers.

Every synthetic Spider-like database in this reproduction is a real SQLite
database (in memory or on disk): queries are genuinely *executed* for the
Execution Accuracy metric, and the value candidate machinery reads real
base data through this wrapper.

One :class:`Database` may be shared across threads (the serving worker
pool does this): each non-owner thread lazily receives its own SQLite
connection — a fresh connection to the same file for file-backed
databases, or a snapshot clone (via the SQLite backup API) for in-memory
databases.  Clones of in-memory databases are read-only snapshots taken
at first use from that thread; writes made afterwards through the owner
thread are not visible to already-cloned threads.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.concurrency import make_lock
from repro.errors import ExecutionError, SchemaError
from repro.schema.model import Column, ColumnType, Schema

_SQL_TYPES = {
    ColumnType.TEXT: "TEXT",
    ColumnType.NUMBER: "NUMERIC",
    ColumnType.TIME: "TEXT",
    ColumnType.BOOLEAN: "NUMERIC",
    ColumnType.OTHERS: "TEXT",
}


class Database:
    """A SQLite database paired with its logical :class:`Schema`.

    Use :meth:`create` to materialize a fresh database from a schema, or
    :meth:`open` to attach to an existing SQLite file (the logical schema
    is introspected when not supplied).
    """

    def __init__(
        self,
        schema: Schema,
        connection: sqlite3.Connection,
        *,
        path: str | Path | None = None,
    ):
        self.schema = schema
        self._path = str(path) if path is not None else None
        self._connection = connection
        self._owner_thread = threading.get_ident()
        self._thread_local = threading.local()
        self._clone_lock = make_lock("Database._clone_lock")
        self._clones: list[sqlite3.Connection] = []  # guarded by: _clone_lock
        self._closed = False
        self._connection.execute("PRAGMA foreign_keys = ON")

    # -------------------------------------------------------- construction

    @classmethod
    def create(cls, schema: Schema, path: str | Path | None = None) -> "Database":
        """Create the schema's tables in a new database.

        Args:
            schema: logical schema to materialize.
            path: SQLite file path; ``None`` creates an in-memory database.
        """
        connection = sqlite3.connect(
            str(path) if path is not None else ":memory:",
            check_same_thread=False,
        )
        database = cls(schema, connection, path=path)
        database._create_tables()
        return database

    @classmethod
    def open(cls, path: str | Path, schema: Schema | None = None) -> "Database":
        """Open an existing SQLite file.

        When ``schema`` is omitted the logical schema is introspected from
        SQLite metadata (see :mod:`repro.db.introspect`).
        """
        connection = sqlite3.connect(str(path), check_same_thread=False)
        if schema is None:
            from repro.db.introspect import introspect_schema

            schema = introspect_schema(connection, name=Path(path).stem)
        return cls(schema, connection, path=path)

    # taint: trusted (DDL is built from the logical Schema's quoted identifiers, never from request input)
    def _create_tables(self) -> None:
        for table in self.schema.tables:
            column_defs = []
            for column in table.columns:
                parts = [f'"{column.name}"', _SQL_TYPES[column.column_type]]
                column_defs.append(" ".join(parts))
            pk_columns = [c.name for c in table.columns if c.is_primary_key]
            if pk_columns:
                quoted = ", ".join(f'"{name}"' for name in pk_columns)
                column_defs.append(f"PRIMARY KEY ({quoted})")
            for fk in self.schema.foreign_keys:
                if fk.source_table.lower() == table.name.lower():
                    column_defs.append(
                        f'FOREIGN KEY ("{fk.source_column}") REFERENCES '
                        f'"{fk.target_table}" ("{fk.target_column}")'
                    )
            ddl = f'CREATE TABLE "{table.name}" ({", ".join(column_defs)})'
            self._connection.execute(ddl)
        self._connection.commit()

    # ----------------------------------------------------- thread handling

    @property
    def path(self) -> str | None:
        """Filesystem path backing this database (``None`` = in-memory).

        File-backed databases can be independently re-opened (the KB
        refresher re-introspects schemas this way); in-memory ones only
        exist through this object's connections.
        """
        return self._path

    @property
    def connection(self) -> sqlite3.Connection:
        """The SQLite connection for the *current* thread.

        The thread that constructed the :class:`Database` gets the primary
        connection; every other thread gets a lazily created per-thread
        connection (see the module docstring for snapshot semantics).
        """
        if self._closed:
            raise ExecutionError("database is closed")
        if threading.get_ident() == self._owner_thread:
            return self._connection
        connection = getattr(self._thread_local, "connection", None)
        if connection is None:
            connection = self._open_thread_connection()
            self._thread_local.connection = connection
        return connection

    def _open_thread_connection(self) -> sqlite3.Connection:
        if self._path is not None:
            connection = sqlite3.connect(self._path, check_same_thread=False)
        else:
            connection = sqlite3.connect(":memory:", check_same_thread=False)
            # The backup API reads the primary connection; serialize against
            # other cloning threads (sqlite3.threadsafety handles concurrent
            # owner-thread queries).
            with self._clone_lock:
                self._connection.backup(connection)
        connection.execute("PRAGMA foreign_keys = ON")
        with self._clone_lock:
            self._clones.append(connection)
        return connection

    # ------------------------------------------------------------- loading

    # taint: trusted (statement text comes from schema metadata and `?` placeholders; row data is parameter-bound)
    def insert_rows(self, table_name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-insert rows (each aligned with the table's column order)."""
        table = self.schema.table(table_name)
        placeholders = ", ".join("?" for _ in table.columns)
        statement = f'INSERT INTO "{table.name}" VALUES ({placeholders})'
        rows = list(rows)
        connection = self.connection
        try:
            connection.executemany(statement, rows)
        except sqlite3.Error as exc:
            raise ExecutionError(
                f"failed to insert into {table_name!r}: {exc}"
            ) from exc
        connection.commit()
        return len(rows)

    # ------------------------------------------------------------ querying

    def execute(self, sql: str, *, max_rows: int | None = 100_000) -> list[tuple]:
        """Execute ``sql`` and return rows as tuples.

        Raises:
            ExecutionError: on any SQLite error (syntax, missing table, ...).
        """
        try:
            cursor = self.connection.execute(sql)
            if max_rows is None:
                return cursor.fetchall()
            rows = cursor.fetchmany(max_rows + 1)
            if len(rows) > max_rows:
                raise ExecutionError(
                    f"query returned more than {max_rows} rows; likely a "
                    f"cross join from a missing ON clause: {sql!r}"
                )
            return rows
        except sqlite3.Error as exc:
            raise ExecutionError(f"query failed: {exc} -- {sql!r}") from exc

    # taint: trusted (SQL is assembled from Column metadata; the only caller-controlled value is int-coerced)
    def column_values(self, column: Column, *, limit: int | None = None) -> list[object]:
        """All non-NULL values of a column (optionally limited)."""
        if column.is_star():
            raise SchemaError("cannot enumerate values of the '*' column")
        sql = (
            f'SELECT "{column.name}" FROM "{column.table}" '
            f'WHERE "{column.name}" IS NOT NULL'
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [row[0] for row in self.execute(sql, max_rows=None)]

    def contains_value(self, column: Column, value: object) -> bool:
        """Whether a column contains ``value`` (exact match, case-insensitive
        for strings, following how Spider's gold values behave in SQLite)."""
        if column.is_star():
            return False
        if isinstance(value, str):
            sql = (
                f'SELECT 1 FROM "{column.table}" '
                f'WHERE LOWER(CAST("{column.name}" AS TEXT)) = LOWER(?) LIMIT 1'
            )
        else:
            sql = f'SELECT 1 FROM "{column.table}" WHERE "{column.name}" = ? LIMIT 1'
        try:
            cursor = self.connection.execute(sql, (value,))
            return cursor.fetchone() is not None
        except sqlite3.Error as exc:
            raise ExecutionError(f"value lookup failed: {exc}") from exc

    def row_count(self, table_name: str) -> int:
        table = self.schema.table(table_name)
        return self.execute(f'SELECT COUNT(*) FROM "{table.name}"')[0][0]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._clone_lock:
            clones, self._clones = self._clones, []
        for connection in clones:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
        self._connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
