"""SQLite database wrapper, introspection and execution comparison."""

from repro.db.database import Database
from repro.db.executor import (
    ExecutionResult,
    execute_and_compare,
    gold_orders_rows,
    normalize_rows,
    rows_equal,
)
from repro.db.introspect import introspect_schema

__all__ = [
    "Database",
    "ExecutionResult",
    "execute_and_compare",
    "gold_orders_rows",
    "introspect_schema",
    "normalize_rows",
    "rows_equal",
]
