"""SQLite database wrapper, introspection and execution comparison."""

from repro.db.database import Database
from repro.db.executor import (
    ExecutionResult,
    QueryTimeoutError,
    execute_and_compare,
    execute_with_budget,
    gold_orders_rows,
    normalize_rows,
    rows_equal,
)
from repro.db.introspect import introspect_schema

__all__ = [
    "Database",
    "ExecutionResult",
    "QueryTimeoutError",
    "execute_and_compare",
    "execute_with_budget",
    "gold_orders_rows",
    "introspect_schema",
    "normalize_rows",
    "rows_equal",
]
