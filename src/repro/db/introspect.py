"""Schema introspection from a live SQLite connection.

Lets the library attach to an arbitrary SQLite database (one of the
examples drives ValueNet against a user-provided file) by rebuilding the
logical :class:`~repro.schema.model.Schema` from SQLite's ``PRAGMA``
metadata.
"""

from __future__ import annotations

import sqlite3

from repro.errors import SchemaError
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, Table


# taint: trusted (PRAGMA targets come from the database's own sqlite_master listing, not from callers)
def introspect_schema(connection: sqlite3.Connection, *, name: str = "database") -> Schema:
    """Build a :class:`Schema` from SQLite metadata.

    Args:
        connection: an open SQLite connection.
        name: logical schema (``db_id``) name.

    Raises:
        SchemaError: when the database contains no user tables.
    """
    table_rows = connection.execute(
        "SELECT name FROM sqlite_master "
        "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY name"
    ).fetchall()
    if not table_rows:
        raise SchemaError("database contains no tables")

    tables: list[Table] = []
    foreign_keys: list[ForeignKey] = []
    for (table_name,) in table_rows:
        columns: list[Column] = []
        for row in connection.execute(f'PRAGMA table_info("{table_name}")'):
            _, column_name, sql_type, _notnull, _default, pk = row
            columns.append(
                Column(
                    name=column_name,
                    table=table_name,
                    column_type=ColumnType.from_sql_type(sql_type or "text"),
                    is_primary_key=bool(pk),
                )
            )
        tables.append(Table(name=table_name, columns=tuple(columns)))
        for row in connection.execute(f'PRAGMA foreign_key_list("{table_name}")'):
            _id, _seq, target_table, source_column, target_column = row[:5]
            if target_column is None:
                # SQLite omits the target column when it is the PK; resolve
                # it lazily after all tables are known.
                target_column = ""
            foreign_keys.append(
                ForeignKey(table_name, source_column, target_table, target_column)
            )

    # Resolve FKs whose target column was implicit (references the PK).
    by_name = {table.name.lower(): table for table in tables}
    resolved: list[ForeignKey] = []
    for fk in foreign_keys:
        target_column = fk.target_column
        if not target_column:
            target = by_name.get(fk.target_table.lower())
            if target is None:
                raise SchemaError(
                    f"foreign key references unknown table {fk.target_table!r}"
                )
            pk_columns = [c for c in target.columns if c.is_primary_key]
            if len(pk_columns) != 1:
                raise SchemaError(
                    f"cannot resolve implicit FK target column on "
                    f"{fk.target_table!r} (primary key is not a single column)"
                )
            target_column = pk_columns[0].name
        resolved.append(
            ForeignKey(fk.source_table, fk.source_column, fk.target_table, target_column)
        )

    return Schema(name=name, tables=tables, foreign_keys=resolved)
