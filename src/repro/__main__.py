"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``corpus DIR``     — generate the synthetic Spider-like corpus to DIR.
* ``corpus generate`` — derive a validated Q->SQL corpus from live
                       SQLite databases (see ``repro.evolve.corpus``).
* ``train DIR``      — train a model on a generated corpus and save it.
* ``translate``      — translate one question against a SQLite database
                       with a trained model.
* ``inspect``        — show pre-processing output (hints + candidates)
                       for a question, no model required.
* ``serve``          — run the concurrent HTTP inference service
                       (``/translate``, ``/healthz``, ``/metrics``).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import ModelConfig, TrainingConfig
from repro.logs import configure_cli_logging


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.spider import CorpusConfig, generate_corpus

    corpus = generate_corpus(CorpusConfig(
        train_per_domain=args.train_per_domain,
        dev_per_domain=args.dev_per_domain,
        seed=args.seed,
    ))
    corpus.save(args.directory)
    print(f"wrote corpus to {args.directory}: "
          f"train={corpus.num_train} dev={corpus.num_dev} "
          f"databases={len(corpus.domains)}")
    return 0


def _cmd_corpus_generate(argv: list[str]) -> int:
    """``repro corpus generate`` — schema-derived, validated examples.

    Dispatched before argparse in :func:`main` because the legacy
    ``corpus DIR`` positional would otherwise swallow ``generate`` as a
    directory name.
    """
    import json

    parser = argparse.ArgumentParser(
        prog="repro corpus generate",
        description="Derive a validated question->SQL corpus from live "
                    "SQLite databases (see repro.evolve.corpus). Every "
                    "emitted example is built as a repro.sql AST and "
                    "validated against the policy engine and executor.",
    )
    parser.add_argument(
        "--database", action="append", required=True, dest="databases",
        metavar="[ID=]PATH",
        help="SQLite file to derive from (repeatable); id defaults to "
             "the file stem",
    )
    parser.add_argument(
        "--output", default=None, metavar="JSONL",
        help="append examples to this JSONL file (deduplicated across "
             "runs); default: print to stdout",
    )
    parser.add_argument(
        "--policy", default=None, metavar="JSON",
        help="SQL policy config; examples the policy would block are "
             "not emitted",
    )
    parser.add_argument(
        "--tables", default=None, metavar="T1,T2",
        help="restrict generation to these tables (default: all)",
    )
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip policy/executor validation (faster, but examples are "
             "not guaranteed runnable)",
    )
    parser.add_argument("--max-value-examples", type=int, default=3)
    args = parser.parse_args(argv)

    from repro.db import Database
    from repro.evolve import CorpusWriter, generate_examples

    policy = None
    if args.policy is not None:
        from repro.policy import PolicyConfigStore, PolicyEngine

        policy = PolicyEngine(PolicyConfigStore.load(args.policy))
    tables = None
    if args.tables:
        tables = [t.strip() for t in args.tables.split(",") if t.strip()]
    writer = CorpusWriter(args.output) if args.output is not None else None
    total = written = 0
    for database_id, path in _parse_database_specs(args.databases):
        database = Database.open(path)
        try:
            examples = generate_examples(
                database,
                database_id=database_id,
                tables=tables,
                policy=policy,
                validate=not args.no_validate,
                max_value_examples=args.max_value_examples,
            )
        finally:
            database.close()
        total += len(examples)
        if writer is not None:
            written += writer.append(examples)
        else:
            for example in examples:
                print(json.dumps(example.as_dict()))
    if writer is not None:
        print(f"generated {total} example(s); wrote {written} new "
              f"(deduplicated) to {args.output}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.model import (
        Trainer,
        ValueNetModel,
        build_preprocessors,
        build_vocabulary,
        prepare_samples,
    )
    from repro.spider import load_corpus

    corpus = load_corpus(args.corpus)
    vocab = build_vocabulary(
        [e.question for e in corpus.train],
        [corpus.schema(d) for d in corpus.domains],
        [str(v) for e in corpus.train for v in e.values],
    )
    model = ValueNetModel(vocab, ModelConfig(dim=args.dim))
    preprocessors = build_preprocessors(corpus)
    samples, dropped = prepare_samples(
        corpus.train, preprocessors, model, mode=args.mode
    )
    print(f"prepared {len(samples)} samples ({dropped} dropped)")
    trainer = Trainer(model, TrainingConfig(epochs=args.epochs))
    history = trainer.train(samples)
    print(f"final loss {history.final_loss:.3f}")
    model.save(args.output)
    print(f"saved model to {args.output}")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    from repro.db import Database
    from repro.model import ValueNetModel
    from repro.pipeline import ValueNetPipeline

    model = ValueNetModel.load(args.model)
    database = Database.open(args.database)
    pipeline = ValueNetPipeline(model, database, beam_size=args.beam)
    result = pipeline.translate(args.question, execute=not args.no_execute)
    if result.error:
        print(f"error: {result.error}", file=sys.stderr)
        return 1
    print("SQL:", result.sql)
    if result.rows is not None:
        for row in result.rows[:20]:
            print("  ", row)
        if len(result.rows) > 20:
            print(f"   ... {len(result.rows) - 20} more rows")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.db import Database
    from repro.ner import GazetteerRecognizer, ValueExtractor
    from repro.preprocessing import Preprocessor

    database = Database.open(args.database)
    preprocessor = Preprocessor(
        database, extractor=ValueExtractor(gazetteer=GazetteerRecognizer())
    )
    pre = preprocessor.run(args.question)
    print("question hints:")
    for hinted in pre.hinted_tokens:
        if hinted.hint.name != "NONE":
            print(f"  {hinted.token.text:<20} {hinted.hint.name}")
    print("value candidates:")
    for candidate in pre.candidates:
        print("  " + candidate.describe())
    return 0


def _parse_database_specs(specs: list[str]) -> list[tuple[str, str]]:
    """``[ID=]PATH`` specs -> unique ``(db_id, path)`` pairs."""
    from pathlib import Path

    pairs: list[tuple[str, str]] = []
    seen: set[str] = set()
    for spec in specs:
        database_id, _, path = spec.rpartition("=")
        database_id = database_id or Path(path).stem
        if database_id in seen:
            raise SystemExit(f"duplicate database id {database_id!r}")
        seen.add(database_id)
        pairs.append((database_id, path))
    return pairs


def _serve_until_signalled(server, shutdown) -> None:
    """Run the HTTP loop until SIGTERM/SIGINT flips the shutdown event.

    The server loop runs on a helper thread so the main thread can wait
    on the signal event (signal handlers only fire on the main thread).
    """
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        shutdown.wait()
    except KeyboardInterrupt:
        pass
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


def _install_signal_handlers(shutdown) -> None:
    import signal

    def _request_shutdown(signum, frame):
        print(f"\nreceived signal {signum}; draining ...", flush=True)
        shutdown.set()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)


def _install_sighup(callback) -> None:
    """SIGHUP -> force a KB refresh (no-op where SIGHUP doesn't exist).

    ``callback`` must be async-signal-safe in spirit: both wirings
    (``KBRefresher.trigger`` and ``ClusterService.trigger_refresh``)
    only flip an event / write a frame, never rebuild inline.
    """
    import signal

    if not hasattr(signal, "SIGHUP"):
        return

    def _on_hup(signum, frame):
        print("received SIGHUP; scheduling KB refresh ...", flush=True)
        callback()

    signal.signal(signal.SIGHUP, _on_hup)


def _build_tenancy(args, metrics=None):
    """Build the TenancyController for ``--tenants`` (None when absent).

    ``metrics`` should be the serving/supervisor registry so the
    admission counters (auth failures, per-tenant rejects) appear on the
    same ``/metrics`` exposition as the serving metrics.
    """
    if args.tenants is None:
        return None
    from repro.tenancy import QuotaLedger, TenancyController, TenantRegistry

    registry = TenantRegistry.from_file(args.tenants)
    ledger = QuotaLedger(args.quota_state)
    controller = TenancyController(registry, ledger=ledger, metrics=metrics)
    print(f"tenancy enabled: {len(registry.tenants())} tenant(s), "
          f"config version {registry.version}"
          + (f", quota ledger at {args.quota_state}" if args.quota_state else ""))
    return controller


def _build_policy(args, metrics=None):
    """Build the PolicyEngine for ``--policy`` (None when absent)."""
    if args.policy is None:
        return None
    from repro.policy import PolicyConfigStore, PolicyEngine

    engine = PolicyEngine(PolicyConfigStore.load(args.policy), metrics=metrics)
    from repro.policy import rule_catalog

    print(f"policy engine enabled: {len(rule_catalog())} rule(s), "
          f"config at {args.policy}")
    return engine


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.serving import AsyncServingServer, ServingServer

    pairs = _parse_database_specs(args.databases)
    shutdown = threading.Event()
    _install_signal_handlers(shutdown)

    # Bind the port before the (possibly long) warm-up: /livez answers
    # immediately, /readyz answers 503 until the service is attached.
    server_cls = (
        AsyncServingServer if args.http_impl == "async" else ServingServer
    )
    server = server_cls((args.host, args.port), None)
    engine = "model" if args.model is not None else "heuristic-only"
    print(f"listening on {server.url} [{engine}/{args.http_impl}] — warming up ...")

    if args.workers > 0:
        return _serve_cluster(args, pairs, server, shutdown)
    return _serve_single(args, pairs, server, shutdown)


def _serve_single(args, pairs, server, shutdown) -> int:
    import time as _time

    from repro.db import Database
    from repro.serving import DatabaseRuntime, TranslationCache, TranslationService

    model = None
    if args.model is not None:
        from repro.model import ValueNetModel

        model = ValueNetModel.load(args.model)

    if args.index_cache is not None:
        from repro.index import IndexRegistry, set_default_registry

        set_default_registry(IndexRegistry(cache_dir=args.index_cache))

    databases = {db_id: Database.open(path) for db_id, path in pairs}

    # Parallel cold builds (or warm disk loads) before taking traffic.
    from repro.index import get_default_registry

    registry = get_default_registry()
    warm_start = _time.perf_counter()
    # Keyed by schema name (how Preprocessor looks indexes up), not by
    # the external routing id.
    registry.warm(list(databases.values()))
    stats = registry.stats()
    print(f"indexes ready in {_time.perf_counter() - warm_start:.2f}s "
          f"(built={stats['build_count']} loaded={stats['load_count']})")

    from repro.serving import MetricsRegistry

    metrics = MetricsRegistry()
    tenancy = _build_tenancy(args, metrics)
    policy = _build_policy(args, metrics)
    runtimes = [
        DatabaseRuntime(database, model, database_id=database_id,
                        beam_size=args.beam, policy=policy,
                        dialect=args.dialect)
        for database_id, database in databases.items()
    ]
    service = TranslationService(
        runtimes,
        workers=args.threads,
        queue_size=args.queue_size,
        per_tenant_depth=args.per_tenant_depth,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        cache=TranslationCache(capacity=args.cache_size, ttl_s=args.cache_ttl),
        default_timeout_ms=args.timeout_ms,
        allow_failure_injection=args.allow_injection,
        ready=False,
        metrics=metrics,
        tenancy=tenancy,
        policy=policy,
    )
    service.start()
    server.attach(service)
    service.mark_ready()
    refresher = None
    if args.kb_refresh_interval is not None:
        from repro.evolve import KBRefresher

        refresher = KBRefresher(
            registry=registry,
            interval_s=args.kb_refresh_interval,
            metrics=metrics,
            corpus_path=args.kb_corpus,
            corpus_policy=policy,
        )
        for database_id, database in databases.items():
            refresher.watch(database, database_id=database_id)
        refresher.attach_service(service)
        refresher.start()
        _install_sighup(refresher.trigger)
        print(f"kb refresher: polling every {args.kb_refresh_interval:g}s "
              f"(force via SIGHUP or POST /admin/refresh)")
    print(f"serving {len(runtimes)} database(s): "
          f"{', '.join(sorted(service.runtimes))}")
    print("  endpoints: POST /translate  GET /healthz /livez /readyz /metrics"
          + ("  GET /tenants /tenants/<id>/usage" if tenancy else ""))
    try:
        _serve_until_signalled(server, shutdown)
    finally:
        if refresher is not None:
            refresher.stop()
        clean = service.drain(timeout=args.drain_s)
        print("drained cleanly" if clean else "drain timed out; stopped anyway")
        if tenancy is not None:
            tenancy.close()
        for runtime in runtimes:
            runtime.database.close()
    return 0


def _serve_cluster(args, pairs, server, shutdown) -> int:
    from repro.cluster import ClusterConfig, ClusterService
    from repro.serving import MetricsRegistry

    metrics = MetricsRegistry()
    tenancy = _build_tenancy(args, metrics)
    cluster = ClusterService(
        pairs,
        model_path=args.model,
        metrics=metrics,
        config=ClusterConfig(
            workers=args.workers,
            default_timeout_ms=args.timeout_ms,
        ),
        verbose=True,
        tenancy=tenancy,
        beam_size=args.beam,
        threads=args.threads,
        queue_size=args.queue_size,
        per_tenant_depth=args.per_tenant_depth,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl,
        index_cache=args.index_cache,
        allow_failure_injection=args.allow_injection,
        policy_path=args.policy,
        dialect=args.dialect,
        kb_refresh_interval_s=args.kb_refresh_interval,
        kb_corpus_dir=args.kb_corpus,
    )
    cluster.start()
    server.attach(cluster)
    if args.kb_refresh_interval is not None:
        _install_sighup(cluster.trigger_refresh)
        print(f"kb refresher: per-worker, polling every "
              f"{args.kb_refresh_interval:g}s "
              f"(force via SIGHUP or POST /admin/refresh)")
    if not cluster.wait_ready(timeout=300.0):
        print("warning: cluster not fully ready yet; serving anyway", flush=True)
    print(f"cluster of {args.workers} worker(s) serving "
          f"{len(pairs)} database(s): "
          f"{', '.join(sorted(db_id for db_id, _ in pairs))}")
    for worker_id, state in sorted(cluster.worker_states().items()):
        print(f"  worker {worker_id} (pid={state['pid']}): "
              f"shard={state['shard']}")
    print("  endpoints: POST /translate  GET /healthz /livez /readyz /metrics"
          + ("  GET /tenants /tenants/<id>/usage" if tenancy else ""))
    try:
        _serve_until_signalled(server, shutdown)
    finally:
        clean = cluster.stop(timeout=args.drain_s)
        print("drained cleanly" if clean else "drain timed out; stopped anyway")
        if tenancy is not None:
            tenancy.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Pre-argparse dispatch: the legacy `corpus DIR` positional would
    # swallow "generate" as a directory name, so the subcommand routes
    # around the main parser entirely.
    if list(argv[:2]) == ["corpus", "generate"]:
        configure_cli_logging()
        return _cmd_corpus_generate(list(argv[2:]))
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    corpus = commands.add_parser("corpus", help="generate the synthetic corpus")
    corpus.add_argument("directory")
    corpus.add_argument("--train-per-domain", type=int, default=250)
    corpus.add_argument("--dev-per-domain", type=int, default=120)
    corpus.add_argument("--seed", type=int, default=42)
    corpus.set_defaults(func=_cmd_corpus)

    train = commands.add_parser("train", help="train a ValueNet model")
    train.add_argument("corpus", help="directory written by `repro corpus`")
    train.add_argument("--output", default="valuenet-model")
    train.add_argument("--mode", choices=("valuenet", "light"), default="valuenet")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--dim", type=int, default=64)
    train.set_defaults(func=_cmd_train)

    translate = commands.add_parser("translate", help="question -> SQL")
    translate.add_argument("question")
    translate.add_argument("--database", required=True, help="SQLite file")
    translate.add_argument("--model", required=True, help="saved model directory")
    translate.add_argument("--beam", type=int, default=1)
    translate.add_argument("--no-execute", action="store_true")
    translate.set_defaults(func=_cmd_translate)

    inspect = commands.add_parser("inspect", help="show pre-processing output")
    inspect.add_argument("question")
    inspect.add_argument("--database", required=True, help="SQLite file")
    inspect.set_defaults(func=_cmd_inspect)

    serve = commands.add_parser("serve", help="run the HTTP inference service")
    serve.add_argument(
        "--database", action="append", required=True, dest="databases",
        metavar="[ID=]PATH",
        help="SQLite file to serve (repeatable); id defaults to the file stem",
    )
    serve.add_argument(
        "--model", default=None,
        help="saved model directory; omit to serve the heuristic baseline only",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--http-impl", default="threaded", choices=("threaded", "async"),
        help="HTTP front door: 'threaded' = stdlib thread-per-connection "
             "(default, battle-tested fallback); 'async' = selectors-based "
             "non-blocking event loop (keep-alive/pipelining, slowloris "
             "deadlines, bounded connections). Same routes either way.",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker PROCESSES for cluster serving (sharded by database, "
             "supervised, auto-restarted); 0 = single in-process service",
    )
    serve.add_argument(
        "--threads", type=int, default=4,
        help="translation threads per service (per worker in cluster mode)",
    )
    serve.add_argument(
        "--drain-s", type=float, default=10.0,
        help="graceful-shutdown budget: seconds to finish accepted "
             "requests after SIGTERM/SIGINT before stopping hard",
    )
    serve.add_argument("--queue-size", type=int, default=64)
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--batch-window-ms", type=float, default=2.0)
    serve.add_argument("--cache-size", type=int, default=256)
    serve.add_argument("--cache-ttl", type=float, default=300.0)
    serve.add_argument(
        "--timeout-ms", type=float, default=10_000.0,
        help="default per-request deadline",
    )
    serve.add_argument("--beam", type=int, default=1)
    serve.add_argument(
        "--index-cache", default=None, metavar="DIR",
        help="persist value indexes under DIR; warm restarts skip the "
             "per-database index build entirely",
    )
    serve.add_argument(
        "--allow-injection", action="store_true",
        help="honor inject_failure request flags (load/chaos testing only)",
    )
    serve.add_argument(
        "--tenants", default=None, metavar="JSON",
        help="tenants config file (enables API-key auth, per-tenant rate "
             "limits, daily quotas, and weighted-fair scheduling); the "
             "file is hot-reloaded when it changes",
    )
    serve.add_argument(
        "--quota-state", default=None, metavar="PATH",
        help="durable daily-quota ledger file (survives restarts); "
             "default: in-memory only",
    )
    serve.add_argument(
        "--per-tenant-depth", type=int, default=None, metavar="N",
        help="per-tenant backlog bound inside the fair queue "
             "(default: global --queue-size bound only)",
    )
    serve.add_argument(
        "--policy", default=None, metavar="JSON",
        help="SQL policy config file (enables the defense-in-depth policy "
             "engine: blocked keywords, read-only enforcement, join "
             "sanity, cost bounds; see docs/policy.md)",
    )
    serve.add_argument(
        "--dialect", default="sqlite",
        choices=("sqlite", "postgres", "mysql"),
        help="default SQL dialect for rendered responses (per-request "
             "override via the 'dialect' body field)",
    )
    serve.add_argument(
        "--kb-refresh-interval", type=float, default=None, metavar="S",
        help="live schema evolution: poll watched databases every S "
             "seconds in the background and hot-swap indexes on drift "
             "(zero downtime; force via SIGHUP or POST /admin/refresh). "
             "In cluster mode each worker runs its own refresher.",
    )
    serve.add_argument(
        "--kb-corpus", default=None, metavar="PATH",
        help="grow a validated Q->SQL corpus (JSONL) as schemas drift; "
             "single-process: a file, cluster: a directory (each worker "
             "writes worker-<id>.jsonl). Requires --kb-refresh-interval.",
    )
    serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    # Library modules report progress through logging (training epochs,
    # cluster supervisor events); surface them on the CLI.
    configure_cli_logging()
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
