"""Logging for library code (the NO-PRINT rule routes through here).

Library modules call :func:`get_logger` and log; they never configure
handlers, so embedding applications keep full control.  The CLI entry
points call :func:`configure_cli_logging` once to get the plain
to-the-terminal format the old ``print()`` sites produced.
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """The module logger; prefer ``get_logger(__name__)``."""
    return logging.getLogger(name)


def configure_cli_logging(verbose: bool = True) -> None:
    """Route INFO-and-up to stderr in bare ``message`` format.

    Safe to call more than once (``basicConfig`` is a no-op when the
    root logger already has handlers).
    """
    logging.basicConfig(
        level=logging.INFO if verbose else logging.WARNING,
        format="%(message)s",
    )
