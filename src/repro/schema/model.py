"""Relational schema model.

This is the library's central description of a database: tables, typed
columns, primary keys and foreign-key relationships.  It mirrors the
information Spider ships in ``tables.json`` (natural-language column names
included) and is consumed by the pre-processing (hint computation), the
encoder (schema encoding), the decoder (pointer targets) and the
post-processing (JOIN inference).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.text.tokenizer import split_identifier


class ColumnType(enum.Enum):
    """Logical column types, following Spider's convention."""

    TEXT = "text"
    NUMBER = "number"
    TIME = "time"
    BOOLEAN = "boolean"
    OTHERS = "others"

    @classmethod
    def from_sql_type(cls, sql_type: str) -> "ColumnType":
        """Map a SQL type name (``VARCHAR(40)``, ``INT`` ...) to a logical type."""
        normalized = sql_type.strip().lower()
        base = normalized.split("(", 1)[0].strip()
        if base in {"int", "integer", "bigint", "smallint", "tinyint",
                    "real", "float", "double", "numeric", "decimal", "number"}:
            return cls.NUMBER
        if base in {"bool", "boolean", "bit"}:
            return cls.BOOLEAN
        if base in {"date", "datetime", "timestamp", "time", "year"}:
            return cls.TIME
        if base in {"char", "varchar", "text", "nvarchar", "string", "clob"}:
            return cls.TEXT
        return cls.OTHERS


@dataclass(frozen=True)
class Column:
    """A table column.

    Attributes:
        name: the physical identifier (``home_country``).
        table: name of the owning table; empty string for the special ``*``
            column used by aggregations over whole tables.
        column_type: logical type used for value formatting and hints.
        natural_name: human-readable name used for encoding; defaults to
            the identifier split into words.
        is_primary_key: whether this column is (part of) the primary key.
    """

    name: str
    table: str
    column_type: ColumnType = ColumnType.TEXT
    natural_name: str = ""
    is_primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.natural_name:
            object.__setattr__(
                self, "natural_name", " ".join(split_identifier(self.name)) or self.name
            )

    @property
    def qualified_name(self) -> str:
        """``table.column`` identifier; just the name for the ``*`` column."""
        return f"{self.table}.{self.name}" if self.table else self.name

    @property
    def words(self) -> list[str]:
        """Lower-cased word parts of the natural name (for matching)."""
        return self.natural_name.lower().split()

    def is_star(self) -> bool:
        """Whether this is the special ``*`` column."""
        return self.name == "*"


@dataclass(frozen=True)
class Table:
    """A table with its columns (excluding the global ``*`` column)."""

    name: str
    columns: tuple[Column, ...]
    natural_name: str = ""

    def __post_init__(self) -> None:
        if not self.natural_name:
            object.__setattr__(
                self, "natural_name", " ".join(split_identifier(self.name)) or self.name
            )
        for column in self.columns:
            if column.table != self.name:
                raise SchemaError(
                    f"column {column.qualified_name!r} does not belong to "
                    f"table {self.name!r}"
                )

    @property
    def words(self) -> list[str]:
        """Lower-cased word parts of the natural name (for matching)."""
        return self.natural_name.lower().split()

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) physical name."""
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)


@dataclass(frozen=True)
class ForeignKey:
    """A directed FK edge: ``source_table.source_column`` references
    ``target_table.target_column``."""

    source_table: str
    source_column: str
    target_table: str
    target_column: str

    def reversed(self) -> "ForeignKey":
        return ForeignKey(
            self.target_table, self.target_column,
            self.source_table, self.source_column,
        )


@dataclass
class Schema:
    """A complete database schema.

    The column list exposed by :meth:`all_columns` always starts with the
    special ``*`` column (index 0), matching the pointer-network convention
    used by IRNet and ValueNet.
    """

    name: str
    tables: list[Table]
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._table_index = {table.name.lower(): table for table in self.tables}
        if len(self._table_index) != len(self.tables):
            raise SchemaError(f"schema {self.name!r} has duplicate table names")
        for fk in self.foreign_keys:
            source = self.table(fk.source_table)
            target = self.table(fk.target_table)
            if not source.has_column(fk.source_column):
                raise SchemaError(
                    f"foreign key references missing column "
                    f"{fk.source_table}.{fk.source_column}"
                )
            if not target.has_column(fk.target_column):
                raise SchemaError(
                    f"foreign key references missing column "
                    f"{fk.target_table}.{fk.target_column}"
                )
        self._star = Column("*", "", ColumnType.OTHERS, natural_name="*")

    # ------------------------------------------------------------- lookups

    @property
    def star_column(self) -> Column:
        """The special ``*`` column (always column index 0)."""
        return self._star

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        found = self._table_index.get(name.lower())
        if found is None:
            raise SchemaError(f"schema {self.name!r} has no table {name!r}")
        return found

    def has_table(self, name: str) -> bool:
        return name.lower() in self._table_index

    def column(self, table_name: str, column_name: str) -> Column:
        """Look up ``table.column``; ``*`` resolves to the star column."""
        if column_name == "*":
            return self._star
        return self.table(table_name).column(column_name)

    def all_columns(self) -> list[Column]:
        """Every column in the schema, ``*`` first, then table order."""
        columns: list[Column] = [self._star]
        for table in self.tables:
            columns.extend(table.columns)
        return columns

    def column_index(self, column: Column) -> int:
        """Position of ``column`` in :meth:`all_columns`."""
        for i, candidate in enumerate(self.all_columns()):
            if candidate.table == column.table and candidate.name == column.name:
                return i
        raise SchemaError(f"column {column.qualified_name!r} not in schema {self.name!r}")

    def table_index(self, table_name: str) -> int:
        """Position of ``table_name`` in :attr:`tables`."""
        lowered = table_name.lower()
        for i, table in enumerate(self.tables):
            if table.name.lower() == lowered:
                return i
        raise SchemaError(f"schema {self.name!r} has no table {table_name!r}")

    def primary_key(self, table_name: str) -> list[Column]:
        """Primary-key columns of a table (possibly empty)."""
        return [c for c in self.table(table_name).columns if c.is_primary_key]

    def relationships_of(self, table_name: str) -> list[ForeignKey]:
        """All FK edges that touch ``table_name`` (either direction)."""
        lowered = table_name.lower()
        return [
            fk for fk in self.foreign_keys
            if fk.source_table.lower() == lowered or fk.target_table.lower() == lowered
        ]

    # --------------------------------------------------------------- stats

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def num_columns(self) -> int:
        """Number of real columns (excluding ``*``)."""
        return sum(len(table.columns) for table in self.tables)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schema(name={self.name!r}, tables={self.num_tables}, "
            f"columns={self.num_columns}, fks={len(self.foreign_keys)})"
        )
