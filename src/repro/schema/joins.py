"""JOIN path inference over the schema graph.

Paper Section III-C2: the user rarely mentions bridge tables, so the
post-processing has to connect all tables the decoder selected.  For two
tables the shortest path (Dijkstra) suffices; for three or more tables the
problem is a Steiner tree, which we solve with the standard 2-approximation
(metric-closure minimum spanning tree, the same family as Zelikovsky's
algorithm the paper cites).  Every edge on the resulting tree carries its
PK/FK columns so the SQL renderer can emit complete ``ON`` clauses —
without them the Execution Accuracy metric would see a Cartesian product.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
from networkx.algorithms.approximation import steiner_tree

from repro.errors import TranslationError
from repro.schema.graph import JoinEdge, SchemaGraph


@dataclass(frozen=True)
class JoinPlan:
    """An ordered join plan.

    Attributes:
        tables: every table that participates in the FROM clause, in join
            order (the first is the anchor of the FROM clause); includes
            bridge tables that the decoder never selected.
        edges: one :class:`JoinEdge` per JOIN keyword, aligned with
            ``tables[1:]`` — ``edges[i]`` connects ``tables[i + 1]`` to a
            table already joined.
    """

    tables: tuple[str, ...]
    edges: tuple[JoinEdge, ...]

    @property
    def bridge_tables(self) -> tuple[str, ...]:
        """Tables that appear in the plan beyond the requested set.

        Only meaningful when produced by :func:`plan_joins` (which records
        the requested tables in order first).
        """
        return self.tables


def shortest_join_path(graph: SchemaGraph, table_a: str, table_b: str) -> list[str]:
    """Shortest table path between two tables (Dijkstra over FK edges).

    Returns original-cased table names, endpoints included.
    """
    a, b = table_a.lower(), table_b.lower()
    try:
        path = nx.shortest_path(graph.graph, a, b, weight="weight")
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise TranslationError(
            f"no join path between {table_a!r} and {table_b!r}"
        ) from exc
    return [graph.original_name(node) for node in path]


def steiner_join_tables(graph: SchemaGraph, tables: list[str]) -> set[str]:
    """All tables needed to connect ``tables``, via Steiner-tree approximation.

    Returns a set of original-cased table names including the terminals.
    """
    terminals = [t.lower() for t in tables]
    for terminal in terminals:
        if terminal not in graph.graph:
            raise TranslationError(f"table {terminal!r} not in schema graph")
    if len(set(terminals)) <= 1:
        return {graph.original_name(t) for t in terminals}
    # Restrict to the connected component holding the terminals: the
    # metric closure inside steiner_tree spans the WHOLE graph, so one
    # unrelated isolated table elsewhere in the schema would otherwise
    # poison planning for every multi-table query (KeyError from the
    # closure, surfacing as "cannot be connected").
    terminal_set = set(terminals)
    component: set[str] | None = None
    for nodes in nx.connected_components(graph.graph):
        if terminal_set & nodes:
            if not terminal_set <= nodes:
                raise TranslationError(
                    f"tables {tables!r} cannot be connected by join paths"
                )
            component = nodes
            break
    if component is None:
        raise TranslationError(
            f"tables {tables!r} cannot be connected by join paths"
        )
    try:
        tree = steiner_tree(
            graph.graph.subgraph(component), terminal_set, weight="weight"
        )
    except Exception as exc:  # networkx raises bare exceptions on disconnection
        raise TranslationError(
            f"tables {tables!r} cannot be connected by join paths"
        ) from exc
    if not all(t in tree for t in set(terminals)):
        raise TranslationError(
            f"tables {tables!r} cannot be connected by join paths"
        )
    return {graph.original_name(node) for node in tree.nodes}


def plan_joins(graph: SchemaGraph, tables: list[str]) -> JoinPlan:
    """Build an ordered :class:`JoinPlan` connecting all ``tables``.

    The plan starts from the first requested table, then greedily attaches
    the remaining tables of the (Steiner-completed) set one at a time; each
    attached table must have a direct FK edge to some already-joined table,
    which the Steiner tree guarantees exists.

    Raises:
        TranslationError: if the tables cannot be connected.
    """
    if not tables:
        raise TranslationError("cannot plan joins for an empty table set")

    # Deduplicate while preserving first-mention order.
    ordered: list[str] = []
    seen: set[str] = set()
    for table in tables:
        key = table.lower()
        if key not in seen:
            seen.add(key)
            ordered.append(graph.original_name(key) if key in graph.graph else table)

    if len(ordered) == 1:
        return JoinPlan(tables=(ordered[0],), edges=())

    needed = steiner_join_tables(graph, ordered)
    joined: list[str] = [ordered[0]]
    joined_keys = {ordered[0].lower()}
    edges: list[JoinEdge] = []
    remaining = {t for t in needed if t.lower() not in joined_keys}

    while remaining:
        attached = False
        # Prefer attaching requested tables in their mention order, then
        # bridge tables; this keeps FROM clauses stable across runs.
        candidates = [t for t in ordered if t in remaining] + sorted(
            t for t in remaining if t not in ordered
        )
        for candidate in candidates:
            for existing in joined:
                edge = graph.edge_between(existing, candidate)
                if edge is not None:
                    edges.append(edge)
                    joined.append(candidate)
                    joined_keys.add(candidate.lower())
                    remaining.discard(candidate)
                    attached = True
                    break
            if attached:
                break
        if not attached:
            raise TranslationError(
                f"could not attach tables {sorted(remaining)!r} to the join plan"
            )
    return JoinPlan(tables=tuple(joined), edges=tuple(edges))
