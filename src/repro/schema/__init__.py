"""Relational schema model, schema graph and JOIN path inference."""

from repro.schema.graph import JoinEdge, SchemaGraph
from repro.schema.joins import (
    JoinPlan,
    plan_joins,
    shortest_join_path,
    steiner_join_tables,
)
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, Table
from repro.schema.serialization import (
    load_schemas,
    save_schemas,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "JoinEdge",
    "JoinPlan",
    "Schema",
    "SchemaGraph",
    "Table",
    "load_schemas",
    "plan_joins",
    "save_schemas",
    "schema_from_dict",
    "schema_to_dict",
    "shortest_join_path",
    "steiner_join_tables",
]
