"""Schema (de)serialization in a Spider ``tables.json``-like format.

Spider distributes schemas as JSON records with parallel arrays of column
names, types, primary keys and foreign-key index pairs.  We use the same
shape so the synthetic corpus on disk looks like the real thing and so a
user could, in principle, point the loader at actual Spider files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import SchemaError
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, Table


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Serialize a :class:`Schema` to a Spider-style record."""
    table_names = [table.name for table in schema.tables]
    natural_table_names = [table.natural_name for table in schema.tables]

    column_names: list[list[Any]] = [[-1, "*"]]
    natural_column_names: list[list[Any]] = [[-1, "*"]]
    column_types: list[str] = ["text"]
    primary_keys: list[int] = []
    column_position: dict[tuple[str, str], int] = {}

    for table_index, table in enumerate(schema.tables):
        for column in table.columns:
            position = len(column_names)
            column_position[(table.name.lower(), column.name.lower())] = position
            column_names.append([table_index, column.name])
            natural_column_names.append([table_index, column.natural_name])
            column_types.append(column.column_type.value)
            if column.is_primary_key:
                primary_keys.append(position)

    foreign_keys = [
        [
            column_position[(fk.source_table.lower(), fk.source_column.lower())],
            column_position[(fk.target_table.lower(), fk.target_column.lower())],
        ]
        for fk in schema.foreign_keys
    ]

    return {
        "db_id": schema.name,
        "table_names_original": table_names,
        "table_names": natural_table_names,
        "column_names_original": column_names,
        "column_names": natural_column_names,
        "column_types": column_types,
        "primary_keys": primary_keys,
        "foreign_keys": foreign_keys,
    }


def schema_from_dict(record: dict[str, Any]) -> Schema:
    """Deserialize a Spider-style record into a :class:`Schema`."""
    try:
        table_names: list[str] = record["table_names_original"]
        natural_table_names: list[str] = record.get("table_names", table_names)
        column_names: list[list[Any]] = record["column_names_original"]
        natural_column_names: list[list[Any]] = record.get(
            "column_names", column_names
        )
        column_types: list[str] = record["column_types"]
        primary_keys: set[int] = set(record.get("primary_keys", []))
        foreign_key_pairs: list[list[int]] = record.get("foreign_keys", [])
        db_id: str = record["db_id"]
    except KeyError as exc:
        raise SchemaError(f"schema record missing key {exc}") from exc

    columns_by_table: dict[int, list[Column]] = {i: [] for i in range(len(table_names))}
    for position, (table_index, column_name) in enumerate(column_names):
        if table_index < 0:
            continue  # the '*' column
        natural = natural_column_names[position][1]
        columns_by_table[table_index].append(
            Column(
                name=column_name,
                table=table_names[table_index],
                column_type=ColumnType(column_types[position]),
                natural_name=natural,
                is_primary_key=position in primary_keys,
            )
        )

    tables = [
        Table(
            name=table_names[i],
            columns=tuple(columns_by_table[i]),
            natural_name=natural_table_names[i],
        )
        for i in range(len(table_names))
    ]

    def locate(position: int) -> tuple[str, str]:
        table_index, column_name = column_names[position]
        return table_names[table_index], column_name

    foreign_keys = []
    for source_position, target_position in foreign_key_pairs:
        source_table, source_column = locate(source_position)
        target_table, target_column = locate(target_position)
        foreign_keys.append(
            ForeignKey(source_table, source_column, target_table, target_column)
        )

    return Schema(name=db_id, tables=tables, foreign_keys=foreign_keys)


def save_schemas(schemas: list[Schema], path: str | Path) -> None:
    """Write a list of schemas as a ``tables.json``-style file."""
    records = [schema_to_dict(schema) for schema in schemas]
    Path(path).write_text(json.dumps(records, indent=2))


def load_schemas(path: str | Path) -> list[Schema]:
    """Read schemas from a ``tables.json``-style file."""
    records = json.loads(Path(path).read_text())
    return [schema_from_dict(record) for record in records]
