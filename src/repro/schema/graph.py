"""Schema graph: tables as vertices, PK/FK relationships as edges.

Paper Section III-C2: "A common approach is to transform the database
schema into an undirected graph, where the vertexes are tables and edges
are primary-key/foreign-key relationships."  ValueNet additionally stores
the PK/FK *columns* on every edge, because Execution Accuracy requires
fully-specified ``ON`` clauses (a bare ``A JOIN B`` is a cross join).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import SchemaError
from repro.schema.model import ForeignKey, Schema


@dataclass(frozen=True)
class JoinEdge:
    """One join step: ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def condition(self, left_alias: str, right_alias: str) -> str:
        """Render the ``ON`` condition given table aliases."""
        return (
            f"{left_alias}.{self.left_column} = {right_alias}.{self.right_column}"
        )


class SchemaGraph:
    """Undirected multigraph over tables, annotated with join columns.

    The graph is built once per schema and reused for every query; path
    queries are answered with networkx shortest-path / Steiner algorithms
    (see :mod:`repro.schema.joins`).
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self.graph = nx.MultiGraph()
        for table in schema.tables:
            self.graph.add_node(table.name.lower(), label=table.name)
        for fk in schema.foreign_keys:
            self._add_edge(fk)

    def _add_edge(self, fk: ForeignKey) -> None:
        self.graph.add_edge(
            fk.source_table.lower(),
            fk.target_table.lower(),
            fk=fk,
            weight=1.0,
        )

    # ------------------------------------------------------------- queries

    def neighbors(self, table_name: str) -> list[str]:
        """Original-cased names of tables adjacent to ``table_name``."""
        key = table_name.lower()
        if key not in self.graph:
            raise SchemaError(f"table {table_name!r} not in schema graph")
        return [self.graph.nodes[n]["label"] for n in self.graph.neighbors(key)]

    def are_connected(self, table_a: str, table_b: str) -> bool:
        """Whether any join path exists between the two tables."""
        a, b = table_a.lower(), table_b.lower()
        if a not in self.graph or b not in self.graph:
            return False
        return nx.has_path(self.graph, a, b)

    def edge_between(self, table_a: str, table_b: str) -> JoinEdge | None:
        """A direct FK edge between two tables, or ``None``.

        When several FK edges connect the same pair of tables (e.g. a
        flight's origin and destination airports) the first one in schema
        order is returned; query-specific disambiguation is out of scope
        for the deterministic post-processing, matching the paper.
        """
        a, b = table_a.lower(), table_b.lower()
        data = self.graph.get_edge_data(a, b)
        if not data:
            return None
        fk: ForeignKey = data[min(data)]["fk"]
        return self._orient(fk, table_a)

    def _orient(self, fk: ForeignKey, left_table: str) -> JoinEdge:
        """Return the edge oriented so the left side matches ``left_table``."""
        if fk.source_table.lower() == left_table.lower():
            return JoinEdge(
                fk.source_table, fk.source_column,
                fk.target_table, fk.target_column,
            )
        return JoinEdge(
            fk.target_table, fk.target_column,
            fk.source_table, fk.source_column,
        )

    def path_edges(self, path: list[str]) -> list[JoinEdge]:
        """Resolve a table-name path into oriented join edges."""
        edges: list[JoinEdge] = []
        for left, right in zip(path, path[1:]):
            edge = self.edge_between(left, right)
            if edge is None:
                raise SchemaError(
                    f"no FK edge between {left!r} and {right!r} on the path"
                )
            edges.append(edge)
        return edges

    def original_name(self, table_key: str) -> str:
        """Original-cased table name for a lower-cased graph node key."""
        return self.graph.nodes[table_key.lower()]["label"]
