"""Exception hierarchy for the ValueNet reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SchemaError(ReproError):
    """A database schema is malformed or an entity lookup failed."""


class SqlParseError(ReproError):
    """The SQL parser could not parse a query in the supported subset."""


class SemQLError(ReproError):
    """A SemQL 2.0 tree or action sequence violates the grammar."""


class GrammarError(SemQLError):
    """An action is illegal in the current grammar state."""


class TranslationError(ReproError):
    """SemQL -> SQL post-processing failed (e.g. no join path exists)."""


class ExecutionError(ReproError):
    """Executing a query against the database failed."""


class DatasetError(ReproError):
    """The synthetic corpus generator produced or read inconsistent data."""


class ModelError(ReproError):
    """The neural model was configured or used incorrectly."""


class VocabularyError(ModelError):
    """A token could not be resolved against a closed vocabulary."""
