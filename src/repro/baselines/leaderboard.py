"""Reported leaderboard reference points (paper Fig. 10).

At the time of writing, the paper's only Execution-Accuracy competitors
(GAZP + BERT, BRIDGE + BERT, AuxNet + BART) had neither papers nor code,
so the paper plots them as single reported values.  We do the same: these
constants are the May-2020 Spider "Execution with Values" leaderboard
numbers the paper compares against, and our Fig. 10 bench prints them next
to our measured systems.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LeaderboardEntry:
    """One reported system: a name and its dev-set Execution Accuracy."""

    name: str
    accuracy: float
    published: bool = False


# Values as reported in the paper's Fig. 10 discussion: ValueNet and
# ValueNet light outperform GAZP and BRIDGE; AuxNet levels with ValueNet.
REPORTED_SYSTEMS = (
    LeaderboardEntry("GAZP + BERT", 0.535),
    LeaderboardEntry("BRIDGE + BERT", 0.599),
    LeaderboardEntry("AuxNet + BART", 0.620),
)

PAPER_VALUENET_ACCURACY = 0.62
PAPER_VALUENET_LIGHT_ACCURACY = 0.67

# Table I of the paper: ValueNet accuracy by Spider hardness.
PAPER_ACCURACY_BY_HARDNESS = {
    "easy": 0.77,
    "medium": 0.62,
    "hard": 0.57,
    "extra_hard": 0.43,
}

# Table II of the paper: per-stage translation time (milliseconds).
PAPER_TRANSLATION_TIME_MS = {
    "preprocessing": (80.0, 5.0),
    "value_lookup": (234.0, 43.0),
    "encoder_decoder": (76.0, 14.0),
    "postprocessing": (13.0, 2.0),
    "execution": (15.0, 3.0),
}

# Section V-E: share of value-bearing samples whose values are all
# recovered by the extraction pipeline.
PAPER_EXTRACTION_COVERAGE = 0.90
