"""A non-neural heuristic baseline.

A rule-based translator in the spirit of the pre-neural NLIDBs the paper's
related-work section surveys: it picks the best hint-matched table, maps
"how many" to COUNT(*), attaches a WHERE clause when a validated candidate
exists, and otherwise projects the first text column.  It exists to anchor
the benchmark plots (neural vs. rules) and to sanity-check the evaluation
harness with a cheap, deterministic system.
"""

from __future__ import annotations

import time

from repro.db.database import Database
from repro.pipeline.timing import StageTimings
from repro.pipeline.valuenet import TranslationResult
from repro.preprocessing.hints import SchemaHint
from repro.preprocessing.pipeline import Preprocessor
from repro.schema.graph import SchemaGraph
from repro.schema.model import ColumnType
from repro.sql.ast import (
    AggregateFunction,
    ColumnRef,
    Condition,
    Literal,
    Operator,
    Query,
    SelectItem,
    SelectQuery,
)
from repro.sql.render import SqlRenderer


class HeuristicBaseline:
    """Rule-based NL-to-SQL for single-table questions."""

    def __init__(self, database: Database, preprocessor: Preprocessor | None = None):
        self.database = database
        self.schema = database.schema
        self.preprocessor = preprocessor or Preprocessor(database)
        self._renderer = SqlRenderer(SchemaGraph(self.schema))

    def translate(self, question: str, **_ignored) -> TranslationResult:
        """Translate with rules only (gold values, if passed, are ignored)."""
        result = TranslationResult(question=question, timings=StageTimings())
        stage_times: dict[str, float] = {}
        pre = self.preprocessor.run(question, timings=stage_times)
        result.timings.preprocessing = stage_times.get("preprocessing", 0.0)
        result.timings.value_lookup = stage_times.get("value_lookup", 0.0)
        result.candidates = pre.candidates

        table = self._pick_table(pre)
        wants_count = any(
            h.hint.name == "AGGREGATION" for h in pre.hinted_tokens
        )

        if wants_count:
            select = [SelectItem(ColumnRef(None, "*"), AggregateFunction.COUNT)]
        else:
            text_columns = [
                c for c in self.schema.table(table).columns
                if c.column_type is ColumnType.TEXT
            ]
            column = text_columns[0] if text_columns else self.schema.table(table).columns[0]
            select = [SelectItem(ColumnRef(table, column.name))]

        where = self._build_condition(table, pre)
        query = Query(body=SelectQuery(select=select, tables=[table], where=where))
        start = time.perf_counter()
        try:
            result.sql = self._renderer.render(query)
        except Exception as exc:  # justified: result.error carries the failure to the caller
            result.error = str(exc)
        result.timings.postprocessing = time.perf_counter() - start
        return result

    def _pick_table(self, pre) -> str:
        best, best_score = self.schema.tables[0].name, -1.0
        for table, hint in zip(self.schema.tables, pre.schema_hints.table_hints):
            score = {
                SchemaHint.EXACT_MATCH: 3.0,
                SchemaHint.PARTIAL_MATCH: 1.5,
                SchemaHint.VALUE_CANDIDATE_MATCH: 1.0,
                SchemaHint.NONE: 0.0,
            }[hint]
            if score > best_score:
                best, best_score = table.name, score
        return best

    def _build_condition(self, table: str, pre):
        for candidate in pre.candidates:
            for location in candidate.locations:
                if location.table.lower() == table.lower():
                    column = self.schema.column(location.table, location.column)
                    value = candidate.value
                    if column.column_type is ColumnType.NUMBER and isinstance(value, str):
                        try:
                            value = float(value)
                            value = int(value) if value.is_integer() else value
                        except ValueError:
                            continue
                    return Condition(
                        ColumnRef(column.table, column.name),
                        Operator.EQ,
                        Literal(value),
                    )
        return None
