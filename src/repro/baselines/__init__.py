"""Baselines: reported leaderboard points and a rule-based system."""

from repro.baselines.heuristic import HeuristicBaseline
from repro.baselines.leaderboard import (
    LeaderboardEntry,
    PAPER_ACCURACY_BY_HARDNESS,
    PAPER_EXTRACTION_COVERAGE,
    PAPER_TRANSLATION_TIME_MS,
    PAPER_VALUENET_ACCURACY,
    PAPER_VALUENET_LIGHT_ACCURACY,
    REPORTED_SYSTEMS,
)

__all__ = [
    "HeuristicBaseline",
    "LeaderboardEntry",
    "PAPER_ACCURACY_BY_HARDNESS",
    "PAPER_EXTRACTION_COVERAGE",
    "PAPER_TRANSLATION_TIME_MS",
    "PAPER_VALUENET_ACCURACY",
    "PAPER_VALUENET_LIGHT_ACCURACY",
    "REPORTED_SYSTEMS",
]
