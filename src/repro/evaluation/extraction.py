"""Value extraction coverage (paper Section V-E).

The paper reports that ValueNet's candidate pipeline recovers *all* values
for ~90% of value-bearing samples, that the misses concentrate in the
Hard/Extra-hard value classes, and that this share is stable between the
train and validation splits.  This module measures the same quantity: for
each value-bearing example, run the full candidate pipeline and check
whether every gold value appears in the candidate list.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.evaluation.difficulty import ValueDifficulty
from repro.model.supervision import match_candidate
from repro.preprocessing.pipeline import Preprocessor
from repro.spider.corpus import Example


@dataclass
class ExtractionReport:
    """Coverage of the candidate pipeline over value-bearing samples."""

    total_samples: int = 0
    covered_samples: int = 0
    total_values: int = 0
    covered_values: int = 0
    missed_by_difficulty: Counter = field(default_factory=Counter)
    values_by_difficulty: Counter = field(default_factory=Counter)

    @property
    def sample_coverage(self) -> float:
        return self.covered_samples / max(self.total_samples, 1)

    @property
    def value_coverage(self) -> float:
        return self.covered_values / max(self.total_values, 1)

    def miss_rate(self, difficulty: ValueDifficulty) -> float:
        total = self.values_by_difficulty.get(difficulty, 0)
        if total == 0:
            return 0.0
        return self.missed_by_difficulty.get(difficulty, 0) / total


def measure_extraction_coverage(
    examples: list[Example],
    preprocessors: dict[str, Preprocessor],
) -> ExtractionReport:
    """Run the full ValueNet candidate pipeline over value-bearing samples."""
    report = ExtractionReport()
    for example in examples:
        if not example.values:
            continue
        report.total_samples += 1
        pre = preprocessors[example.db_id].run(example.question)
        all_found = True
        for value, difficulty in zip(example.values, example.value_difficulties):
            report.total_values += 1
            report.values_by_difficulty[difficulty] += 1
            if match_candidate(value, pre.candidates) is not None:
                report.covered_values += 1
            else:
                all_found = False
                report.missed_by_difficulty[difficulty] += 1
        if all_found:
            report.covered_samples += 1
    return report
