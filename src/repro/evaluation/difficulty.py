"""Query and value difficulty classification.

**Query hardness** follows Spider's convention (paper Section V-F): the
number of SQL components — GROUP BY, ORDER BY, nested sub-queries,
compound set operators, extra conditions, aggregations and projections —
buckets a query into Easy / Medium / Hard / Extra-hard.

**Value difficulty** follows the paper's own four classes (Section V-A1):

* *easy* — the value appears verbatim in the question and the database,
* *medium* — extractable but stored in a slightly different form,
* *hard* — extractable but needs domain knowledge ("Los Angeles" -> LAX),
* *extra-hard* — not explicitly recognizable as a value at all.
"""

from __future__ import annotations

import enum

from repro.sql.ast import (
    AggregateFunction,
    BooleanExpr,
    Condition,
    Query,
    SelectQuery,
    iter_conditions,
)


class Hardness(enum.Enum):
    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"
    EXTRA_HARD = "extra_hard"


class ValueDifficulty(enum.Enum):
    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"
    EXTRA_HARD = "extra_hard"


def _count_components(select_query: SelectQuery) -> int:
    """Spider's component-1 count: structural SQL keywords."""
    count = 0
    if select_query.where is not None:
        count += 1
    if select_query.group_by:
        count += 1
    if select_query.order_by is not None:
        count += 1
    if select_query.limit is not None:
        count += 1
    if len(select_query.tables) > 1:
        count += 1  # JOIN
    if select_query.having is not None:
        count += 1
    if any(
        condition.operator.value.endswith("like")
        for condition in iter_conditions(select_query.where)
    ):
        count += 1
    return count


def _count_nested(query: Query) -> int:
    nested = 0
    for select_query in query.all_select_queries():
        for expr in (select_query.where, select_query.having):
            for condition in iter_conditions(expr):
                if condition.rhs_is_query():
                    nested += 1
                    nested += _count_nested(condition.rhs)  # type: ignore[arg-type]
    return nested


def _count_others(select_query: SelectQuery) -> int:
    """Spider's component-2 count: aggregations, selections, conditions."""
    count = 0
    aggregations = sum(
        1
        for item in select_query.select
        if item.aggregate is not AggregateFunction.NONE
    )
    if aggregations > 1:
        count += 1
    if len(select_query.select) > 1:
        count += 1
    conditions = list(iter_conditions(select_query.where))
    if len(conditions) > 1:
        count += 1
    if len(select_query.group_by) > 1:
        count += 1
    return count


def _has_or_or_not(query: Query) -> bool:
    for select_query in query.all_select_queries():
        for expr in (select_query.where, select_query.having):
            stack = [expr] if expr is not None else []
            while stack:
                node = stack.pop()
                if isinstance(node, BooleanExpr):
                    if node.connector == "or":
                        return True
                    stack.extend(node.operands)
                elif isinstance(node, Condition):
                    if node.operator.value.startswith("not") or node.operator.value == "!=":
                        return True
    return False


def classify_hardness(query: Query) -> Hardness:
    """Spider-style hardness of a (possibly compound) query.

    Set operators (UNION/INTERSECT/EXCEPT) are Extra-hard; sub-queries are
    Hard unless combined with further components; otherwise the component
    counts bucket the query, mirroring the official evaluation script.
    """
    body = query.body
    component1 = _count_components(body)
    others = _count_others(body) + (1 if _has_or_or_not(query) else 0)
    nested = _count_nested(query)

    if query.is_compound():
        return Hardness.EXTRA_HARD
    if nested:
        if component1 > 2 or others > 1 or nested > 1:
            return Hardness.EXTRA_HARD
        return Hardness.HARD
    if component1 <= 1 and others == 0:
        return Hardness.EASY
    if component1 <= 2 and others <= 1:
        return Hardness.MEDIUM
    if component1 <= 3 and others <= 2:
        return Hardness.HARD
    return Hardness.EXTRA_HARD


def combine_value_difficulty(
    difficulties: list[ValueDifficulty],
) -> ValueDifficulty | None:
    """The difficulty of a sample is its hardest value's difficulty."""
    if not difficulties:
        return None
    order = [
        ValueDifficulty.EASY,
        ValueDifficulty.MEDIUM,
        ValueDifficulty.HARD,
        ValueDifficulty.EXTRA_HARD,
    ]
    return max(difficulties, key=order.index)
