"""Result-table rendering: console text and Markdown.

The experiment runner composes its paper-vs-measured comparisons as
:class:`ResultTable` objects and renders them twice — aligned text for the
console, Markdown for EXPERIMENTS.md — so the recorded numbers are always
exactly what was measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ResultTable:
    """One titled table of result rows."""

    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(tuple(str(cell) for cell in cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------ renders

    def render_text(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"=== {self.title} ==="]
        lines.append("  " + " | ".join(
            h.ljust(w) for h, w in zip(self.headers, widths)
        ))
        lines.append("  " + "-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  " + " | ".join(
                c.ljust(w) for c, w in zip(row, widths)
            ))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)


@dataclass
class ExperimentReport:
    """An ordered collection of result tables with front matter."""

    title: str
    preamble: str = ""
    tables: list[ResultTable] = field(default_factory=list)

    def table(self, title: str, headers: tuple[str, ...]) -> ResultTable:
        table = ResultTable(title=title, headers=headers)
        self.tables.append(table)
        return table

    def render_text(self) -> str:
        parts = [self.title, "=" * len(self.title)]
        if self.preamble:
            parts.append(self.preamble)
        for table in self.tables:
            parts.append("")
            parts.append(table.render_text())
        return "\n".join(parts)

    def render_markdown(self) -> str:
        parts = [f"# {self.title}", ""]
        if self.preamble:
            parts.append(self.preamble)
            parts.append("")
        for table in self.tables:
            parts.append(table.render_markdown())
            parts.append("")
        return "\n".join(parts)
