"""Execution Accuracy evaluation (the paper's headline metric).

For every dev example the pipeline synthesizes SQL, both predicted and
gold queries run against the real SQLite database, and the result
multisets are compared (row order enforced only when the gold query orders
its top level).  The report aggregates overall accuracy, accuracy by
Spider hardness (Table I), accuracy by value difficulty, and keeps the
failed samples for error analysis (Section V-G).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.executor import execute_and_compare, gold_orders_rows
from repro.evaluation.difficulty import Hardness, ValueDifficulty
from repro.pipeline.timing import TimingAggregate
from repro.pipeline.valuenet import TranslationResult
from repro.spider.corpus import Example, SpiderCorpus


@dataclass
class EvaluatedSample:
    """One example with its prediction and verdict."""

    example: Example
    result: TranslationResult
    correct: bool
    gold_error: str | None = None


@dataclass
class AccuracyReport:
    """Aggregated Execution Accuracy results."""

    samples: list[EvaluatedSample] = field(default_factory=list)
    timings: TimingAggregate = field(default_factory=TimingAggregate)

    def add(self, sample: EvaluatedSample) -> None:
        self.samples.append(sample)
        self.timings.add(sample.result.timings)

    @property
    def total(self) -> int:
        return len(self.samples)

    @property
    def num_correct(self) -> int:
        return sum(1 for s in self.samples if s.correct)

    @property
    def accuracy(self) -> float:
        return self.num_correct / self.total if self.samples else 0.0

    def accuracy_by_hardness(self) -> dict[Hardness, tuple[float, int]]:
        """(accuracy, n) per Spider hardness class (Table I)."""
        table: dict[Hardness, tuple[float, int]] = {}
        for hardness in Hardness:
            bucket = [s for s in self.samples if s.example.hardness is hardness]
            if bucket:
                accuracy = sum(s.correct for s in bucket) / len(bucket)
                table[hardness] = (accuracy, len(bucket))
        return table

    def accuracy_by_value_difficulty(
        self,
    ) -> dict[ValueDifficulty | None, tuple[float, int]]:
        """(accuracy, n) per value-difficulty class (None = no values)."""
        table: dict[ValueDifficulty | None, tuple[float, int]] = {}
        classes: list[ValueDifficulty | None] = [None, *ValueDifficulty]
        for cls in classes:
            bucket = [s for s in self.samples if s.example.value_difficulty is cls]
            if bucket:
                accuracy = sum(s.correct for s in bucket) / len(bucket)
                table[cls] = (accuracy, len(bucket))
        return table

    def failures(self) -> list[EvaluatedSample]:
        return [s for s in self.samples if not s.correct]


def evaluate_pipeline(
    pipelines: dict[str, object],
    examples: list[Example],
    corpus: SpiderCorpus,
    *,
    light: bool = False,
) -> AccuracyReport:
    """Run Execution Accuracy over ``examples``.

    Args:
        pipelines: db_id -> pipeline (ValueNet or ValueNet light).
        examples: evaluation examples.
        corpus: the corpus (provides the databases).
        light: whether the pipelines expect gold values per question.
    """
    report = AccuracyReport()
    for example in examples:
        pipeline = pipelines[example.db_id]
        if light:
            result = pipeline.translate(example.question, values=example.values)
        else:
            result = pipeline.translate(example.question)
        database = corpus.database(example.db_id)
        correct = False
        gold_error = None
        if result.sql is not None:
            import time

            start = time.perf_counter()
            outcome = execute_and_compare(
                database,
                result.sql,
                example.gold_sql,
                order_matters=gold_orders_rows(example.gold_sql),
            )
            result.timings.execution = time.perf_counter() - start
            correct = outcome.correct
            gold_error = outcome.gold_error
            if outcome.predicted_error is not None:
                result.error = outcome.predicted_error
        report.add(EvaluatedSample(example, result, correct, gold_error))
    return report
