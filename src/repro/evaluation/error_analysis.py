"""Error analysis (paper Section V-G).

Failed dev samples are categorized by comparing the predicted SemQL tree
against the gold tree.  Multiple causes can apply to one sample, exactly
as in the paper's analysis:

* ``column`` — a C pointer differs from gold,
* ``table`` — a T pointer differs from gold,
* ``sketch`` — the grammar-action skeleton differs,
* ``value`` — sketch/columns/tables match but a value differs,
* ``no_prediction`` — the pipeline produced no SQL at all,
* ``false_negative`` — execution said wrong but the component signature
  (with values) matches gold: a result-comparison artifact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.evaluation.execution import EvaluatedSample
from repro.index.inverted import normalize_value
from repro.semql.actions import ActionType
from repro.semql.tree import SemQLNode

CAUSES = ("column", "table", "sketch", "value", "no_prediction", "false_negative")

# Paper Section V-G, share of analyzed errors per cause (multi-label).
PAPER_ERROR_SHARES = {
    "column": 0.50,
    "sketch": 0.39,
    "value": 0.09,
    "false_negative": 0.09,
}


def _sketch_signature(tree: SemQLNode) -> tuple:
    return tuple(
        (node.action_type.value, node.production)
        for node in tree.walk()
        if not node.is_pointer()
    )


def _pointer_multiset(tree: SemQLNode, action_type: ActionType) -> Counter:
    counts: Counter = Counter()
    for node in tree.pointer_leaves(action_type):
        if action_type is ActionType.C:
            assert node.column is not None
            counts[node.column.qualified_name.lower()] += 1
        elif action_type is ActionType.T:
            assert node.table is not None
            counts[node.table.lower()] += 1
        else:
            counts[normalize_value(node.value)] += 1
    return counts


@dataclass
class SampleDiagnosis:
    """Causes assigned to one failed sample."""

    sample: EvaluatedSample
    causes: tuple[str, ...]


@dataclass
class ErrorReport:
    """Aggregate error analysis over the failed dev samples."""

    diagnoses: list[SampleDiagnosis] = field(default_factory=list)

    @property
    def num_failures(self) -> int:
        return len(self.diagnoses)

    def cause_counts(self) -> dict[str, int]:
        counts: Counter = Counter()
        for diagnosis in self.diagnoses:
            counts.update(diagnosis.causes)
        return {cause: counts.get(cause, 0) for cause in CAUSES}

    def cause_shares(self) -> dict[str, float]:
        counts = self.cause_counts()
        total = max(self.num_failures, 1)
        return {cause: count / total for cause, count in counts.items()}


def diagnose_sample(sample: EvaluatedSample) -> SampleDiagnosis:
    """Assign error causes to one failed sample."""
    causes: list[str] = []
    predicted_tree = sample.result.semql
    gold_tree = sample.example.gold_semql

    if predicted_tree is None or sample.result.sql is None:
        return SampleDiagnosis(sample, ("no_prediction",))

    if _sketch_signature(predicted_tree) != _sketch_signature(gold_tree):
        causes.append("sketch")
    if _pointer_multiset(predicted_tree, ActionType.C) != _pointer_multiset(
        gold_tree, ActionType.C
    ):
        causes.append("column")
    if _pointer_multiset(predicted_tree, ActionType.T) != _pointer_multiset(
        gold_tree, ActionType.T
    ):
        causes.append("table")
    if not causes:
        if _pointer_multiset(predicted_tree, ActionType.V) != _pointer_multiset(
            gold_tree, ActionType.V
        ):
            causes.append("value")

    if not causes:
        # Every component (sketch, columns, tables, values) matches gold,
        # yet execution judged the sample wrong — a result-comparison
        # artifact or a dataset flaw, the paper's "false negative" bucket.
        causes.append("false_negative")
    return SampleDiagnosis(sample, tuple(causes))


def analyze_failures(samples: list[EvaluatedSample]) -> ErrorReport:
    """Diagnose every failed sample."""
    report = ErrorReport()
    for sample in samples:
        if not sample.correct:
            report.diagnoses.append(diagnose_sample(sample))
    return report
