"""Evaluation: Execution Accuracy, exact match, difficulty, error analysis."""

from repro.evaluation.difficulty import (
    Hardness,
    ValueDifficulty,
    classify_hardness,
    combine_value_difficulty,
)
from repro.evaluation.error_analysis import (
    CAUSES,
    ErrorReport,
    PAPER_ERROR_SHARES,
    SampleDiagnosis,
    analyze_failures,
    diagnose_sample,
)
from repro.evaluation.exact_match import exact_match, query_signature
from repro.evaluation.execution import (
    AccuracyReport,
    EvaluatedSample,
    evaluate_pipeline,
)
from repro.evaluation.extraction import ExtractionReport, measure_extraction_coverage
from repro.evaluation.report import ExperimentReport, ResultTable

__all__ = [
    "AccuracyReport",
    "ExperimentReport",
    "ResultTable",
    "CAUSES",
    "ErrorReport",
    "EvaluatedSample",
    "ExtractionReport",
    "Hardness",
    "PAPER_ERROR_SHARES",
    "SampleDiagnosis",
    "ValueDifficulty",
    "analyze_failures",
    "classify_hardness",
    "combine_value_difficulty",
    "diagnose_sample",
    "evaluate_pipeline",
    "exact_match",
    "measure_extraction_coverage",
    "query_signature",
]
