"""Exact Matching Accuracy: Spider's component matching (without values).

The metric compares predicted and gold queries component by component,
order-insensitively (``SELECT A, B`` equals ``SELECT B, A``), and ignores
literal values entirely — as the paper emphasizes, this is the easier
metric most Spider entries optimize.  We implement it over our resolved
AST so the paper's claim ("Exact Match does not validate values") can be
demonstrated quantitatively in the benches.
"""

from __future__ import annotations

from collections import Counter

from repro.sql.ast import (
    BooleanExpr,
    Condition,
    ConditionExpr,
    OrderBy,
    Query,
    SelectItem,
    SelectQuery,
)


def _select_signature(items: list[SelectItem], distinct: bool) -> tuple:
    parts = Counter(
        (item.aggregate.value, str(item.column).lower(), item.distinct)
        for item in items
    )
    return (distinct, tuple(sorted(parts.items())))


def _condition_signature(expr: ConditionExpr | None, *, with_values: bool) -> tuple:
    """Order-insensitive signature of a condition tree.

    Spider's component matching treats the condition list as a set; we do
    the same for same-connector trees.
    """
    if expr is None:
        return ()
    if isinstance(expr, Condition):
        rhs: object
        if isinstance(expr.rhs, Query):
            rhs = ("subquery", query_signature(expr.rhs, with_values=with_values))
        elif isinstance(expr.rhs, tuple):
            rhs = (
                ("between",)
                + (tuple(str(l.value).lower() for l in expr.rhs) if with_values else ())
            )
        else:
            rhs = ("literal", str(expr.rhs.value).lower()) if with_values else ("literal",)
        return (
            "cond",
            expr.aggregate.value,
            str(expr.column).lower(),
            expr.operator.value,
            rhs,
        )
    operands = tuple(
        sorted(
            str(_condition_signature(op, with_values=with_values))
            for op in expr.operands
        )
    )
    return (expr.connector, operands)


def _order_signature(order_by: OrderBy | None, limit: int | None, *, with_values: bool) -> tuple:
    if order_by is None:
        return ()
    items = tuple(
        sorted(
            (item.aggregate.value, str(item.column).lower())
            for item in order_by.items
        )
    )
    signature: tuple = (order_by.direction.value, items)
    if with_values:
        signature += (limit,)
    else:
        signature += (limit is not None,)
    return signature


def _select_query_signature(query: SelectQuery, *, with_values: bool) -> tuple:
    return (
        _select_signature(query.select, query.distinct),
        tuple(sorted(t.lower() for t in query.tables)),
        _condition_signature(query.where, with_values=with_values),
        tuple(sorted(str(c).lower() for c in query.group_by)),
        _condition_signature(query.having, with_values=with_values),
        _order_signature(query.order_by, query.limit, with_values=with_values),
    )


def query_signature(query: Query, *, with_values: bool = False) -> tuple:
    """Canonical component signature of a (possibly compound) query."""
    signature: tuple = (_select_query_signature(query.body, with_values=with_values),)
    if query.is_compound():
        assert query.set_operator is not None and query.compound is not None
        signature += (
            query.set_operator.value,
            query_signature(query.compound, with_values=with_values),
        )
    return signature


def exact_match(
    predicted: Query, gold: Query, *, with_values: bool = False
) -> bool:
    """Spider-style component match.

    Args:
        predicted: predicted query AST.
        gold: gold query AST.
        with_values: when True, literal values must match too (this is the
            stricter variant the paper argues for; the Spider leaderboard's
            "Exact Set Match without Values" uses False).
    """
    return query_signature(predicted, with_values=with_values) == query_signature(
        gold, with_values=with_values
    )
