"""Project-specific static analysis and dynamic sanitizers.

The serving stack's correctness rests on invariants that no general
linter knows about: lock discipline across modules, monotonic-clock
deadline arithmetic, resolve-exactly-once request handling, grad-off
tensor ops on the inference path, and a metrics namespace whose kinds
must stay stable across worker processes.  This package enforces them:

* :mod:`repro.analysis.engine` — a stdlib-``ast`` lint engine
  (``python -m repro.analysis``) running the named rules in
  :mod:`repro.analysis.rules` with per-line/per-scope suppressions and a
  committed baseline file for the few justified legacy sites;
* :mod:`repro.analysis.lockorder` — a dynamic lock-order sanitizer:
  under ``REPRO_SANITIZE=1`` every lock built through
  :mod:`repro.concurrency` records per-thread held→acquired edges and
  fails the run on a cycle (a potential deadlock) with the acquisition
  stacks of both sides.

See ``docs/analysis-rules.md`` for the rule catalog, the
``# guarded by:`` annotation syntax, and how to suppress with a
justification.
"""

from repro.analysis.core import FileContext, Rule, Violation
from repro.analysis.engine import analyze_paths

__all__ = ["FileContext", "Rule", "Violation", "analyze_paths"]
