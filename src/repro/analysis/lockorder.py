"""Dynamic lock-order sanitizer: deadlock potential as a hard failure.

Under ``REPRO_SANITIZE=1`` the factories in :mod:`repro.concurrency`
return :class:`SanitizedLock` instead of raw ``threading`` locks.  Each
acquisition records directed *held → acquired* edges into one global
order graph; the moment an acquisition would close a cycle (thread 1
takes A then B, thread 2 takes B then A), the acquire raises
:class:`LockOrderError` — **before** the cyclic edge is recorded, and
with the acquisition stacks of both sides of the inversion — rather
than waiting for the interleaving that actually deadlocks.

Properties that keep it honest:

* cycle detection looks at lock *order*, not timing: the AB/BA pattern
  is caught even when exercised by a single thread, long before the
  2-thread race window ever hits;
* reentrant locks may be re-acquired while held without creating a
  self-edge (that is what an RLock is for);
* dead locks leave the graph via ``weakref.finalize``, so short-lived
  per-key locks don't accrete stale edges;
* the offending inner lock is released before raising, so a test can
  catch :class:`LockOrderError` and keep running.

The graph is process-global: edges learned on one thread flag an
inverted acquisition on any other.  ``reset()`` clears it between
tests.
"""

from __future__ import annotations

import threading
import traceback
import weakref


class LockOrderError(RuntimeError):
    """An acquisition closed a cycle in the lock-order graph."""


class _Edge:
    """One observed *src held while dst acquired* ordering, with proof."""

    __slots__ = ("src_name", "dst_name", "stack")

    def __init__(self, src_name: str, dst_name: str, stack: str):
        self.src_name = src_name
        self.dst_name = dst_name
        self.stack = stack


class _OrderGraph:
    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: dict[tuple[int, int], _Edge] = {}
        self._adj: dict[int, set[int]] = {}
        self._names: dict[int, str] = {}
        # Lock ids whose finalizer ran; appended lock-free (GIL-atomic)
        # and drained by the next mutex holder.
        self._dead: list[int] = []
        self._tls = threading.local()

    # ------------------------------------------------------------ held set

    def _held(self) -> list[tuple[int, str]]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    # ------------------------------------------------------- registration

    def register(self, lock_id: int, name: str) -> None:
        with self._mutex:
            self._drain_dead_locked()
            self._names[lock_id] = name

    def unregister(self, lock_id: int) -> None:
        # Runs from weakref.finalize, which GC may fire mid-allocation on
        # a thread that already holds _mutex — taking the mutex here would
        # self-deadlock.  Queue the id; mutex holders prune it.
        self._dead.append(lock_id)

    def _drain_dead_locked(self) -> None:
        """Prune finalized locks from the graph; caller holds ``_mutex``."""
        while self._dead:
            lock_id = self._dead.pop()
            self._names.pop(lock_id, None)
            self._adj.pop(lock_id, None)
            for src, dst in [k for k in self._edges if lock_id in k]:
                del self._edges[(src, dst)]
                if src in self._adj:
                    self._adj[src].discard(dst)

    # ------------------------------------------------------------- record

    def note_acquired(self, lock_id: int, name: str, reentrant: bool) -> None:
        """Record edges for a successful inner acquire; raise on a cycle.

        Raises *before* recording the cyclic edge, so the graph keeps
        only consistent orderings and later acquisitions still report
        against the original (correct) direction.
        """
        held = self._held()
        if reentrant and any(h_id == lock_id for h_id, _ in held):
            held.append((lock_id, name))  # re-entry: no new ordering
            return
        others = [(h, n) for h, n in dict(held).items() if h != lock_id]
        # Stack capture allocates heavily; do it before taking the mutex
        # (and never inside it — GC there can fire lock finalizers).
        stack = "".join(traceback.format_stack(limit=12)) if others else ""
        conflict: tuple[_Edge, str] | None = None
        with self._mutex:
            self._drain_dead_locked()
            for h_id, h_name in others:
                if self._path_exists(lock_id, h_id):
                    witness = self._edges.get((lock_id, h_id)) or self._first_edge_from(
                        lock_id
                    )
                    conflict = (witness, h_name)
                    break
            if conflict is None:
                for h_id, h_name in others:
                    key = (h_id, lock_id)
                    if key not in self._edges:
                        self._edges[key] = _Edge(h_name, name, stack)
                        self._adj.setdefault(h_id, set()).add(lock_id)
        if conflict is not None:
            witness, held_name = conflict
            raise LockOrderError(self._cycle_message(name, held_name, witness))
        held.append((lock_id, name))

    def note_released(self, lock_id: int) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] == lock_id:
                del held[i]
                return

    # -------------------------------------------------------------- query

    def _path_exists(self, start: int, goal: int) -> bool:
        """DFS over recorded orderings; caller holds ``_mutex``."""
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for nxt in self._adj.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def _first_edge_from(self, src: int) -> _Edge | None:
        for (e_src, _), edge in self._edges.items():
            if e_src == src:
                return edge
        return None

    def _cycle_message(
        self, acquiring: str, held: str, witness: _Edge | None
    ) -> str:
        lines = [
            f"lock-order inversion: acquiring {acquiring!r} while holding "
            f"{held!r}, but the opposite order is already established",
            "",
            "current acquisition:",
            "".join(traceback.format_stack(limit=12)),
        ]
        if witness is not None:
            lines += [
                f"previously recorded order "
                f"{witness.src_name!r} -> {witness.dst_name!r} at:",
                witness.stack,
            ]
        return "\n".join(lines)

    def reset(self) -> None:
        with self._mutex:
            self._drain_dead_locked()
            self._edges.clear()
            self._adj.clear()
        self._tls = threading.local()


_graph = _OrderGraph()


def reset() -> None:
    """Clear all recorded orderings (test isolation)."""
    _graph.reset()


class SanitizedLock:
    """Drop-in Lock/RLock that reports acquisitions to the order graph."""

    def __init__(self, name: str, *, reentrant: bool = False):
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._name = name
        self._reentrant = reentrant
        self._id = id(self)
        _graph.register(self._id, name)
        weakref.finalize(self, _graph.unregister, self._id)

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if not ok:
            return False
        try:
            _graph.note_acquired(self._id, self._name, self._reentrant)
        except LockOrderError:
            self._inner.release()
            raise
        return True

    def release(self) -> None:
        _graph.note_released(self._id)
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return bool(inner_locked()) if inner_locked is not None else False

    # threading.Condition support: delegate its private protocol so a
    # Condition built over a sanitized lock waits/notifies correctly.

    def _release_save(self):
        _graph.note_released(self._id)
        saver = getattr(self._inner, "_release_save", None)
        if saver is not None:
            return saver()
        self._inner.release()
        return None

    def _acquire_restore(self, state) -> None:
        restorer = getattr(self._inner, "_acquire_restore", None)
        if restorer is not None:
            restorer(state)
        else:
            self._inner.acquire()
        # Re-acquisition after wait(): same lock, no new ordering edges.
        _graph._held().append((self._id, self._name))

    def _is_owned(self) -> bool:
        owned = getattr(self._inner, "_is_owned", None)
        if owned is not None:
            return owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        kind = "RLock" if self._reentrant else "Lock"
        return f"<SanitizedLock {self._name!r} ({kind})>"
