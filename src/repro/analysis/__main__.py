"""CLI for the lint engine: ``python -m repro.analysis``.

Exit codes: 0 clean, 1 findings (new violations, stale or unjustified
baseline entries, parse errors), 2 usage error.  All terminal output in
the analysis package lives here — the engine and rules return data.

``--format`` selects the report shape: ``text`` (default, human),
``json`` (one machine-readable document on stdout), or ``github``
(GitHub Actions ``::error`` workflow commands, so findings annotate the
PR diff directly).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, build_baseline, diff_against_baseline
from repro.analysis.core import Violation
from repro.analysis.engine import AnalysisResult, analyze_paths
from repro.analysis.rules import rule_catalog

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]  # src/repro
_REPO_ROOT = Path(__file__).resolve().parents[3]
_DEFAULT_BASELINE = _REPO_ROOT / "analysis-baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant lint engine (see docs/analysis-rules.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: {_PACKAGE_ROOT})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_DEFAULT_BASELINE,
        help="baseline file of justified legacy findings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="CI mode: additionally fail on baseline entries lacking a justification",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in rule_catalog():
            print(f"{name:12s} {description}")
        return 0

    paths = args.paths or [_PACKAGE_ROOT]
    result = analyze_paths(paths)

    baseline = Baseline.load(args.baseline)

    if args.write_baseline:
        for err in result.parse_errors:
            print(f"parse error: {err}", file=sys.stderr)
        keep = {e.fingerprint: e.justification for e in baseline.entries}
        fresh = build_baseline(result.violations, justifications=keep)
        fresh.save(args.baseline)
        print(
            f"wrote {len(fresh.entries)} entries to {args.baseline} "
            f"({sum(1 for e in fresh.unjustified())} need a justification)"
        )
        return 0

    diff = diff_against_baseline(result.violations, baseline)
    unjustified = baseline.unjustified() if args.check_baseline else []
    failed = bool(
        diff.new or diff.stale or unjustified or result.parse_errors
    )

    if args.format == "json":
        _report_json(result, diff, unjustified, failed)
    elif args.format == "github":
        _report_github(result, diff, unjustified)
    else:
        _report_text(result, diff, unjustified, failed)
    return 1 if failed else 0


def _report_text(result, diff, unjustified, failed: bool) -> None:
    for err in result.parse_errors:
        print(f"parse error: {err}", file=sys.stderr)
    if diff.new:
        print(f"{len(diff.new)} violation(s):")
        for violation, _ in diff.new:
            print(f"  {violation.render()}")
            if violation.source_line:
                print(f"      {violation.source_line}")
    if diff.stale:
        print(f"{len(diff.stale)} stale baseline entr(y/ies) — remove them:")
        for entry in diff.stale:
            print(f"  {entry.rule} {entry.path}:{entry.line} [{entry.fingerprint}]")
    if unjustified:
        print(f"{len(unjustified)} baseline entr(y/ies) lack a justification:")
        for entry in unjustified:
            print(f"  {entry.rule} {entry.path}:{entry.line} [{entry.fingerprint}]")
    if not failed:
        print(
            f"clean: {result.files_checked} files, "
            f"{len(rule_catalog())} rules, {len(diff.matched)} baselined finding(s)"
        )


def _report_json(result, diff, unjustified, failed: bool) -> None:
    document = {
        "ok": not failed,
        "files_checked": result.files_checked,
        "rules": [name for name, _ in rule_catalog()],
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "message": v.message,
                "source_line": v.source_line,
                "fingerprint": fingerprint,
            }
            for v, fingerprint in diff.new
        ],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "line": e.line,
             "fingerprint": e.fingerprint}
            for e in diff.stale
        ],
        "unjustified_baseline": [
            {"rule": e.rule, "path": e.path, "line": e.line,
             "fingerprint": e.fingerprint}
            for e in unjustified
        ],
        "baselined": len(diff.matched),
        "parse_errors": result.parse_errors,
    }
    json.dump(document, sys.stdout, indent=2)
    print()


def _github_path(result: AnalysisResult, violation: Violation) -> str:
    """Repo-relative real path for workflow annotations.

    Falls back to the logical path when the file lives outside the
    repository checkout (e.g. test fixtures under ``/tmp``).
    """
    real = result.real_paths.get(violation.path)
    if real is not None:
        try:
            return real.resolve().relative_to(_REPO_ROOT).as_posix()
        except ValueError:
            pass
    return violation.path


def _report_github(result: AnalysisResult, diff, unjustified) -> None:
    for violation, _ in diff.new:
        path = _github_path(result, violation)
        print(
            f"::error file={path},line={violation.line},"
            f"title={violation.rule}::{violation.message}"
        )
    for entry in diff.stale:
        print(
            f"::error title=stale-baseline::{entry.rule} at "
            f"{entry.path}:{entry.line} no longer fires — remove "
            f"[{entry.fingerprint}] from the baseline"
        )
    for entry in unjustified:
        print(
            f"::error title=unjustified-baseline::{entry.rule} at "
            f"{entry.path}:{entry.line} [{entry.fingerprint}] lacks a "
            f"justification"
        )
    for err in result.parse_errors:
        print(f"::error title=parse-error::{err}")


if __name__ == "__main__":
    raise SystemExit(main())
