"""CLI for the lint engine: ``python -m repro.analysis``.

Exit codes: 0 clean, 1 findings (new violations, stale or unjustified
baseline entries, parse errors), 2 usage error.  All terminal output in
the analysis package lives here — the engine and rules return data.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, build_baseline, diff_against_baseline
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import rule_catalog

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]  # src/repro
_REPO_ROOT = Path(__file__).resolve().parents[3]
_DEFAULT_BASELINE = _REPO_ROOT / "analysis-baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant lint engine (see docs/analysis-rules.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: {_PACKAGE_ROOT})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_DEFAULT_BASELINE,
        help="baseline file of justified legacy findings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="CI mode: additionally fail on baseline entries lacking a justification",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in rule_catalog():
            print(f"{name:12s} {description}")
        return 0

    paths = args.paths or [_PACKAGE_ROOT]
    result = analyze_paths(paths)
    for err in result.parse_errors:
        print(f"parse error: {err}", file=sys.stderr)

    baseline = Baseline.load(args.baseline)

    if args.write_baseline:
        keep = {e.fingerprint: e.justification for e in baseline.entries}
        fresh = build_baseline(result.violations, justifications=keep)
        fresh.save(args.baseline)
        print(
            f"wrote {len(fresh.entries)} entries to {args.baseline} "
            f"({sum(1 for e in fresh.unjustified())} need a justification)"
        )
        return 0

    diff = diff_against_baseline(result.violations, baseline)
    failed = False

    if diff.new:
        failed = True
        print(f"{len(diff.new)} violation(s):")
        for violation, _ in diff.new:
            print(f"  {violation.render()}")
            if violation.source_line:
                print(f"      {violation.source_line}")

    if diff.stale:
        failed = True
        print(f"{len(diff.stale)} stale baseline entr(y/ies) — remove them:")
        for entry in diff.stale:
            print(f"  {entry.rule} {entry.path}:{entry.line} [{entry.fingerprint}]")

    if args.check_baseline:
        unjustified = baseline.unjustified()
        if unjustified:
            failed = True
            print(f"{len(unjustified)} baseline entr(y/ies) lack a justification:")
            for entry in unjustified:
                print(f"  {entry.rule} {entry.path}:{entry.line} [{entry.fingerprint}]")

    if result.parse_errors:
        failed = True

    if not failed:
        suppressed = len(diff.matched)
        print(
            f"clean: {result.files_checked} files, "
            f"{len(rule_catalog())} rules, {suppressed} baselined finding(s)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
