"""The lint engine: file discovery, rule dispatch, suppression filtering.

Keeps zero policy of its own — every check lives in
:mod:`repro.analysis.rules`; every justified legacy finding lives in the
committed baseline (:mod:`repro.analysis.baseline`).  The engine walks
the files, builds one :class:`~repro.analysis.core.FileContext` each
(each file is read and parsed exactly once per run — the per-file rules,
the whole-program rules, and the suppression table all share the same
AST), runs every registered rule, filters suppressed findings, and
returns the rest sorted by location.

Whole-program rules (``requires_project = True``) additionally receive a
single shared :class:`~repro.analysis.graph.ProjectContext` built from
those same parsed trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import FileContext, Rule, Violation

#: Directories never worth linting.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            found.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.add(candidate.resolve())
    return sorted(found)


def logical_path(path: Path) -> str:
    """Stable repo-relative identifier for baselines and reports.

    Anchored at the rightmost ``repro`` path component so the same file
    fingerprints identically from any checkout location (and so test
    fixtures placed under ``tmp/.../repro/...`` exercise scoped rules
    like GRAD-SAFE).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


@dataclass
class AnalysisResult:
    violations: list[Violation]
    files_checked: int
    parse_errors: list[str]
    #: How many source files were actually fed to ``ast.parse`` — the
    #: parse-once guarantee test asserts this equals ``files_checked``
    #: even with every per-file AND whole-program rule enabled.
    files_parsed: int = 0
    #: logical path -> real filesystem path (for ``--format github``).
    real_paths: dict[str, Path] = field(default_factory=dict)


def analyze_paths(
    paths: list[Path], rules: list[Rule] | None = None
) -> AnalysisResult:
    """Run ``rules`` (default: the full registry) over ``paths``."""
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()

    contexts: dict[str, FileContext] = {}
    real_paths: dict[str, Path] = {}
    violations: list[Violation] = []
    parse_errors: list[str] = []

    files = iter_python_files(paths)
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext(path, logical_path(path), source)
        except (OSError, SyntaxError, ValueError) as exc:
            parse_errors.append(f"{path}: {exc}")
            continue
        contexts[ctx.logical_path] = ctx
        real_paths[ctx.logical_path] = path
        violations.extend(ctx.suppression_problems)
        for rule in rules:
            violations.extend(rule.check_file(ctx))

    if any(rule.requires_project for rule in rules):
        from repro.analysis.graph import ProjectContext

        project = ProjectContext(contexts)
        for rule in rules:
            if rule.requires_project:
                violations.extend(rule.check_project(project))

    for rule in rules:
        violations.extend(rule.finalize())

    kept = [
        v
        for v in violations
        if not (
            v.path in contexts and contexts[v.path].is_suppressed(v.rule, v.line)
        )
    ]
    kept.sort(key=lambda v: (v.path, v.line, v.rule))
    return AnalysisResult(
        violations=kept,
        files_checked=len(files),
        parse_errors=parse_errors,
        files_parsed=len(contexts),
        real_paths=real_paths,
    )
