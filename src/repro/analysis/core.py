"""Shared datatypes for the lint engine: violations, rules, file context.

Both the engine and the rule modules import from here, so this module
must stay dependency-free (stdlib only) and must not import either of
them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

# ``# lint: disable=LOCK-GUARD,NO-PRINT (reason why)`` on a statement,
# def, or class line suppresses those rules for that line / that scope.
_DISABLE_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>file-disable|disable)=(?P<rules>[A-Z0-9,\- ]+)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)
# ``# justified: reason`` on an ``except`` line satisfies EXC-SWALLOW.
_JUSTIFIED_RE = re.compile(r"justified:\s*(?P<reason>\S.*)")

#: Rule name reserved for engine-level problems with suppression
#: comments themselves (e.g. a disable without a reason).
SUPPRESSION_RULE = "LINT-SUPPRESS"


@dataclass(frozen=True)
class Violation:
    """One finding: a named rule fired at a specific line of a file."""

    rule: str
    path: str  # logical path, e.g. "repro/serving/service.py"
    line: int
    message: str
    source_line: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``lint: disable`` comment covering a line range."""

    rules: tuple[str, ...]
    start: int
    end: int
    reason: str


class Rule:
    """Base class for lint rules.

    ``check_file`` runs once per file; ``finalize`` runs after every
    file has been seen and is where cross-file rules (METRICS-REG)
    report.  Whole-program rules set ``requires_project`` and implement
    ``check_project`` instead — the engine builds one shared
    :class:`~repro.analysis.graph.ProjectContext` from the already
    parsed files and hands the same instance to each of them.  Rule
    instances are created fresh for every engine run, so they may
    accumulate state across ``check_file`` calls.
    """

    name: str = ""
    description: str = ""
    #: Set True for whole-program rules; the engine then calls
    #: ``check_project`` once with the shared project graph.
    requires_project: bool = False

    def check_file(self, ctx: "FileContext") -> list[Violation]:
        return []

    def check_project(self, project) -> list[Violation]:
        return []

    def finalize(self) -> list[Violation]:
        return []


class FileContext:
    """Parsed view of one source file handed to every rule.

    Builds the AST, a child→parent map, the per-line comment table
    (via :mod:`tokenize`, so strings containing ``#`` are not
    misread), and the suppression ranges.
    """

    def __init__(self, path: Path, logical_path: str, source: str):
        self.path = path
        self.logical_path = logical_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.comments = self._collect_comments(source)
        self.suppressions: list[Suppression] = []
        self.suppression_problems: list[Violation] = []
        self._collect_suppressions()

    # ------------------------------------------------------------ comments

    @staticmethod
    def _collect_comments(source: str) -> dict[int, str]:
        comments: dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        except tokenize.TokenError:
            pass  # unterminated source: lint what the AST could parse
        return comments

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")

    def justification_on(self, line: int) -> str | None:
        match = _JUSTIFIED_RE.search(self.comment_on(line))
        return match.group("reason").strip() if match else None

    # -------------------------------------------------------- suppressions

    def _scope_end(self, line: int) -> int:
        """End line of the def/class starting at ``line`` (else ``line``)."""
        for node in ast.walk(self.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and node.lineno == line
            ):
                return node.end_lineno or line
        return line

    def _collect_suppressions(self) -> None:
        for line, comment in sorted(self.comments.items()):
            match = _DISABLE_RE.search(comment)
            if match is None:
                continue
            rules = tuple(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            reason = (match.group("reason") or "").strip()
            if not reason:
                self.suppression_problems.append(
                    Violation(
                        rule=SUPPRESSION_RULE,
                        path=self.logical_path,
                        line=line,
                        message=(
                            "suppression without a justification — write "
                            "`# lint: disable=RULE (reason)`"
                        ),
                        source_line=self.source_line(line),
                    )
                )
                continue
            if match.group("kind") == "file-disable":
                start, end = 1, max(1, len(self.lines))
            else:
                start, end = line, self._scope_end(line)
            self.suppressions.append(
                Suppression(rules=rules, start=start, end=end, reason=reason)
            )

    def is_suppressed(self, rule: str, line: int) -> bool:
        return any(
            rule in s.rules and s.start <= line <= s.end for s in self.suppressions
        )

    # ------------------------------------------------------------- helpers

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def ancestors(self, node: ast.AST):
        """Yield ancestors from the immediate parent up to the module."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None
