"""WALLCLOCK: `time.time()` is banned; deadlines use the monotonic clock.

Wall-clock time jumps (NTP steps, suspend/resume), and a deadline
computed from it can fire years early or never.  Every duration or
deadline in this codebase is `time.monotonic()` / `time.perf_counter()`
arithmetic.  The only legitimate `time.time()` sites are epoch
*display* values (e.g. a `started_at` timestamp shown to humans) —
those are pinned in the committed baseline with a justification rather
than allowlisted in code, so any new call site fails the build.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, Violation


class WallclockRule(Rule):
    name = "WALLCLOCK"
    description = (
        "no `time.time()` — deadlines and durations must use the "
        "monotonic clock; epoch-display sites live in the baseline"
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                violations.append(
                    Violation(
                        rule=self.name,
                        path=ctx.logical_path,
                        line=node.lineno,
                        message=(
                            "`time.time()` call — use `time.monotonic()` for "
                            "deadlines/durations (epoch display needs a "
                            "baseline entry)"
                        ),
                        source_line=ctx.source_line(node.lineno),
                    )
                )
        return violations
