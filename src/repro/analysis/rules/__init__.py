"""Rule registry: one module per named invariant.

``all_rules()`` returns fresh instances for one engine run (rules hold
cross-file state, e.g. METRICS-REG's name table).  Adding a rule means
adding a module here and listing its class in ``_RULE_CLASSES``.
"""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.deadline_prop import DeadlinePropRule
from repro.analysis.rules.exc_swallow import ExcSwallowRule
from repro.analysis.rules.grad_safe import GradSafeRule
from repro.analysis.rules.layering import LayeringRule
from repro.analysis.rules.lock_guard import LockGuardRule
from repro.analysis.rules.metrics_reg import MetricsRegRule
from repro.analysis.rules.no_print import NoPrintRule
from repro.analysis.rules.taint_sql import TaintSqlRule
from repro.analysis.rules.wallclock import WallclockRule

_RULE_CLASSES: list[type[Rule]] = [
    LockGuardRule,
    WallclockRule,
    ExcSwallowRule,
    NoPrintRule,
    GradSafeRule,
    MetricsRegRule,
    TaintSqlRule,
    LayeringRule,
    DeadlinePropRule,
]


def all_rules() -> list[Rule]:
    return [cls() for cls in _RULE_CLASSES]


def rule_catalog() -> list[tuple[str, str]]:
    return [(cls.name, cls.description) for cls in _RULE_CLASSES]
