"""DEADLINE-PROP: a deadline accepted must be a deadline forwarded.

The serving path carries a remaining-budget deadline end to end (HTTP
``timeout_ms`` → scheduler → cluster ``budget_s`` frames → SQL executor
``timeout_s``).  The chain is only as strong as its weakest call: one
function that accepts a deadline but calls a deadline-aware callee
without passing anything derived from it silently converts a bounded
request into an unbounded one.

The rule: for every function ``F`` that accepts a deadline-family
parameter, every call from ``F`` to a project function that *also*
accepts a deadline-family parameter must include at least one argument
derived from ``F``'s deadline (the bare name, or a local computed from
it — renaming and unit conversion like ``timeout_ms / 1000.0`` count).

To keep the check precise rather than noisy, attribute calls
(``obj.method(...)``) are only checked when the method name resolves to
exactly one project function; plain-name calls resolve through imports
and module scope as usual.  ``__init__`` is exempt on both sides —
constructors store deadlines for later, they do not execute work under
them.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, Violation
from repro.analysis.graph import FunctionInfo, ProjectContext

#: Exact parameter names in the deadline family...
_FAMILY_EXACT = {
    "deadline",
    "deadline_s",
    "budget_s",
    "remaining_s",
    "remaining_budget_s",
    "timeout_s",
    "timeout_ms",
}
#: ...and suffixes that mark domain-specific variants
#: (``request_timeout_s``, ``drain_budget_s``, ...).
_FAMILY_SUFFIXES = ("_timeout_s", "_timeout_ms", "_budget_s", "_deadline")


def is_deadline_param(name: str) -> bool:
    return name in _FAMILY_EXACT or name.endswith(_FAMILY_SUFFIXES)


def deadline_params(fn: FunctionInfo) -> list[str]:
    return [p for p in fn.params() if is_deadline_param(p)]


class DeadlinePropRule(Rule):
    name = "DEADLINE-PROP"
    description = (
        "functions accepting a deadline/budget parameter must forward it "
        "to every callee that accepts one"
    )
    requires_project = True

    def check_project(self, project: ProjectContext) -> list[Violation]:
        violations: list[Violation] = []
        for fn in project.functions.values():
            if fn.name == "__init__":
                continue
            own = deadline_params(fn)
            if not own:
                continue
            derived = self._derived_locals(fn, set(own))
            for call in fn.calls:
                callee = self._checked_callee(project, fn, call)
                if callee is None or callee.name == "__init__":
                    continue
                callee_params = deadline_params(callee)
                if not callee_params:
                    continue
                if self._forwards(call, set(own) | derived):
                    continue
                violations.append(Violation(
                    rule=self.name,
                    path=fn.path,
                    line=call.lineno,
                    message=(
                        f"{fn.qualname!r} accepts {own[0]!r} but calls "
                        f"{callee.qualname!r} (which accepts "
                        f"{callee_params[0]!r}) without forwarding it — "
                        f"the deadline is dropped here"
                    ),
                    source_line=fn.ctx.source_line(call.lineno),
                ))
        return violations

    @staticmethod
    def _checked_callee(
        project: ProjectContext, fn: FunctionInfo, call: ast.Call
    ) -> FunctionInfo | None:
        resolved = project.resolve_call(call, fn.module)
        if isinstance(call.func, ast.Attribute) and len(resolved) != 1:
            return None  # ambiguous receiver: skip rather than guess
        return resolved[0] if resolved else None

    @staticmethod
    def _derived_locals(fn: FunctionInfo, seeds: set[str]) -> set[str]:
        """Locals computed (transitively) from a deadline parameter."""
        derived: set[str] = set()
        known = set(seeds)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn.node):
                if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                value = node.value
                if value is None:
                    continue
                if not any(
                    isinstance(n, ast.Name) and n.id in known
                    for n in ast.walk(value)
                ):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id not in known:
                        known.add(target.id)
                        derived.add(target.id)
                        changed = True
        return derived

    @staticmethod
    def _forwards(call: ast.Call, carriers: set[str]) -> bool:
        """Does any argument expression mention a deadline carrier?"""
        for expr in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) and node.id in carriers:
                    return True
                # ``self.timeout_s`` / ``request.deadline_s``: forwarding
                # a stored deadline attribute also counts.
                if isinstance(node, ast.Attribute) and is_deadline_param(
                    node.attr
                ):
                    return True
        return False
