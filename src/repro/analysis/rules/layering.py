"""LAYERING: imports must respect the committed dependency order.

``analysis-layers.toml`` at the repo root declares the package layers,
lowest first.  A module may import its own layer or any lower layer;
importing *up* is a back-edge — the shape of dependency that turned the
metrics registry into a serving-package hostage (see PR 10) — and is a
violation at the import line.  Lazy (function-body) imports count: the
dependency is architectural whether or not it is paid at module import
time.

Two configuration drift checks keep the file honest on full-tree runs
(detected by ``repro/__init__.py`` being among the analyzed files):

* a ``repro.*`` module that matches no layer entry → UNLISTED
  violation (new code must be placed in the order deliberately);
* a layer entry that matches no analyzed module → STALE violation
  (renames must update the config, or the guarantee silently erodes).

Entry matching: exact module name, or dotted-prefix for entries with at
least one dot (``repro.serving`` covers ``repro.serving.routes``); the
longest match wins, so ``repro.evaluation.difficulty`` may sit in a
lower layer than ``repro.evaluation``.  A single-segment entry such as
``repro`` matches only the root package itself, never as a catch-all.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.core import Rule, Violation
from repro.analysis.graph import ProjectContext

CONFIG_NAME = "analysis-layers.toml"


def parse_layers_toml(text: str) -> list[dict]:
    """Parse the layers config: ``[[layers]]`` tables with ``name`` and
    ``modules`` keys.

    Uses :mod:`tomllib` when available (Python >= 3.11); otherwise falls
    back to a purpose-built reader for exactly this file's shape, so the
    analysis job also runs on the CI matrix's 3.10 interpreter.
    """
    try:
        import tomllib
    except ImportError:
        tomllib = None
    if tomllib is not None:
        data = tomllib.loads(text)
        return list(data.get("layers", []))
    return _parse_layers_fallback(text)


def _parse_layers_fallback(text: str) -> list[dict]:
    layers: list[dict] = []
    current: dict | None = None
    pending_list: list[str] | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if pending_list is not None:
            pending_list.extend(re.findall(r'"([^"]*)"', line))
            if "]" in line:
                pending_list = None
            continue
        if not line or line.startswith("#"):
            continue
        if line == "[[layers]]":
            current = {"name": "", "modules": []}
            layers.append(current)
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "name":
            current["name"] = value.strip('"')
        elif key == "modules":
            current["modules"] = re.findall(r'"([^"]*)"', value)
            if "[" in value and "]" not in value:
                pending_list = current["modules"]
    return layers


def find_config(start: Path) -> Path | None:
    """Walk up from ``start`` to the nearest ``analysis-layers.toml``."""
    current = start if start.is_dir() else start.parent
    for directory in [current, *current.parents]:
        candidate = directory / CONFIG_NAME
        if candidate.is_file():
            return candidate
    return None


def _match(module: str, entries: dict[str, int]) -> tuple[str, int] | None:
    """Longest applicable entry for ``module`` → (entry, layer index)."""
    best: tuple[str, int] | None = None
    for entry, layer in entries.items():
        if module == entry or ("." in entry and module.startswith(entry + ".")):
            if best is None or len(entry) > len(best[0]):
                best = (entry, layer)
    return best


class LayeringRule(Rule):
    name = "LAYERING"
    description = (
        "module imports must follow the dependency order declared in "
        "analysis-layers.toml (no back-edges, no unlisted modules)"
    )
    requires_project = True

    def check_project(self, project: ProjectContext) -> list[Violation]:
        if not project.contexts:
            return []
        any_ctx = next(iter(project.contexts.values()))
        config_path = find_config(Path(any_ctx.path))
        if config_path is None:
            return []  # nothing declared, nothing to enforce
        try:
            layers = parse_layers_toml(config_path.read_text(encoding="utf-8"))
        except Exception as exc:  # justified: config syntax errors surface as a LAYERING violation below
            root_ctx = project.contexts.get("repro/__init__.py") or any_ctx
            return [Violation(
                rule=self.name,
                path=root_ctx.logical_path,
                line=1,
                message=f"unparseable {CONFIG_NAME}: {exc}",
                source_line=root_ctx.source_line(1),
            )]

        entries: dict[str, int] = {}
        for index, layer in enumerate(layers):
            for entry in layer.get("modules", []):
                entries[entry] = index
        layer_names = [layer.get("name", str(i)) for i, layer in enumerate(layers)]

        violations: list[Violation] = []
        full_tree = "repro/__init__.py" in project.contexts

        # Unlisted modules.
        module_layers: dict[str, tuple[str, int] | None] = {}
        for module, ctx in project.modules.items():
            if not (module == "repro" or module.startswith("repro.")):
                continue
            matched = _match(module, entries)
            module_layers[module] = matched
            if matched is None and full_tree:
                violations.append(Violation(
                    rule=self.name,
                    path=ctx.logical_path,
                    line=1,
                    message=(
                        f"module {module!r} matches no layer entry in "
                        f"{CONFIG_NAME} — place it in the dependency "
                        f"order explicitly"
                    ),
                    source_line=ctx.source_line(1),
                ))

        # Back-edges.
        for record in project.imports:
            if not (record.target == "repro"
                    or record.target.startswith("repro.")):
                continue
            importer = module_layers.get(record.module)
            imported = _match(record.target, entries)
            if importer is None or imported is None:
                continue  # unlisted is reported separately
            if imported[1] > importer[1]:
                ctx = project.contexts[record.path]
                lazy = " (lazy import — still a dependency)" if record.lazy else ""
                violations.append(Violation(
                    rule=self.name,
                    path=record.path,
                    line=record.line,
                    message=(
                        f"back-edge: {record.module} (layer "
                        f"{layer_names[importer[1]]!r}) imports "
                        f"{record.target} (higher layer "
                        f"{layer_names[imported[1]]!r}){lazy}"
                    ),
                    source_line=ctx.source_line(record.line),
                ))

        # Stale entries.
        if full_tree:
            root_ctx = project.contexts["repro/__init__.py"]
            modules = set(project.modules)
            for entry in entries:
                alive = any(
                    m == entry or ("." in entry and m.startswith(entry + "."))
                    for m in modules
                )
                if not alive:
                    violations.append(Violation(
                        rule=self.name,
                        path=root_ctx.logical_path,
                        line=1,
                        message=(
                            f"stale entry in {CONFIG_NAME}: {entry!r} "
                            f"matches no module in the tree"
                        ),
                        source_line=root_ctx.source_line(1),
                    ))
        return violations
